"""Setup shim.

Metadata lives in pyproject.toml; this file exists so that legacy
(``--no-use-pep517``) editable installs work on environments without the
``wheel`` package (PEP 660 editable wheels need it, ``setup.py develop``
does not).
"""

from setuptools import setup

setup()
