"""Table 1: CPU time of full DFT vs incremental DFT vs AGMS updates.

Reproduces the paper's Table 1 shape: per-tuple full-DFT recomputation is
one to two orders of magnitude more expensive than incremental
maintenance, whose cost is comparable to AGMS sketch updates; all grow
with the window size.
"""

import numpy as np
import pytest

from repro._rng import ensure_rng
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.dft.control import ControlVector
from repro.experiments import table1
from repro.sketches.agms import AgmsSketch, SketchShape

WINDOW_GRID = (8_000, 25_000, 50_000, 100_000)
KAPPA = 256
UPDATES = 64


@pytest.fixture(scope="module")
def signal():
    rng = ensure_rng(2007)
    return rng.integers(1, 2**19, size=max(WINDOW_GRID) + UPDATES).astype(np.float64)


@pytest.mark.parametrize("window", WINDOW_GRID)
def test_full_dft_per_tuple(benchmark, signal, window):
    """The "DFT" column: one full transform per arriving tuple."""
    position = {"index": 0}

    def one_update():
        index = position["index"] % UPDATES
        np.fft.fft(signal[index : index + window])
        position["index"] += 1

    benchmark(one_update)


@pytest.mark.parametrize("window", WINDOW_GRID)
def test_incremental_dft_per_tuple(benchmark, signal, window):
    """The "iDFT" column: O(W/kappa) sliding update per tuple."""
    bins = low_frequency_bins(window, max(1, window // KAPPA))
    sliding = SlidingDFT(
        window,
        tracked_bins=bins,
        control=ControlVector(recompute_interval=10**9, drift_bound=1.0),
    )
    sliding.extend(signal[:window])
    position = {"index": window}

    def one_update():
        sliding.update(float(signal[position["index"] % len(signal)]))
        position["index"] += 1

    benchmark(one_update)


@pytest.mark.parametrize("window", WINDOW_GRID)
def test_agms_per_tuple(benchmark, signal, window):
    """The "AGMS" column: one arrival + one eviction sketch update."""
    shape = SketchShape.from_total(max(5, (window // KAPPA) * 5))
    sketch = AgmsSketch(shape, rng=ensure_rng(7))
    position = {"index": 0}

    def one_update():
        index = position["index"]
        sketch.update(int(signal[(index + window) % len(signal)]), +1)
        sketch.update(int(signal[index % len(signal)]), -1)
        position["index"] += 1

    benchmark(one_update)


def test_table1_report():
    """Print the measured table and assert the paper's ordering."""
    rows = table1.run(windows=(8_000, 25_000), updates=40)
    print()
    print(table1.format_result(rows))
    for row in rows:
        assert row.full_dft_seconds > row.incremental_dft_seconds
    assert rows[-1].full_dft_seconds > rows[0].full_dft_seconds
