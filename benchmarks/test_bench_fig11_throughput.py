"""Figure 11: throughput at the 15% error operating point.

BASE's (N-1)-way broadcast saturates the 90 kbps sender budget and its
throughput collapses as nodes are added; the filtered algorithms sustain
multiples of it, with DFTT (fewest messages at the error target) at or
near the top.
"""

from repro.experiments import fig11


def test_fig11_throughput(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig11.run, args=(bench_scale,), kwargs={"max_probes": 3},
        rounds=1, iterations=1,
    )
    print()
    print(fig11.format_result(rows))

    largest_n = max(r.num_nodes for r in rows)
    at_scale = {r.algorithm: r for r in rows if r.num_nodes == largest_n}

    # BASE collapses under saturation: the summary-guided algorithms beat
    # it outright.  SKCH may calibrate all the way to the full budget
    # (where it degenerates into BASE), so it only has to not be worse.
    for algorithm in ("DFT", "DFTT", "BLOOM"):
        assert at_scale[algorithm].throughput > at_scale["BASE"].throughput
    assert at_scale["SKCH"].throughput > 0.9 * at_scale["BASE"].throughput

    # DFTT is at or near the top of the filtered pack.
    best_filtered = max(
        at_scale[a].throughput for a in ("DFT", "DFTT", "BLOOM", "SKCH")
    )
    assert at_scale["DFTT"].throughput >= 0.6 * best_filtered
