"""Figure 10: error vs compression factor (a) and vs node count (b).

Panel (a): at a fixed flow budget, every algorithm's error grows as the
summaries shrink (kappa grows); DFTT degrades most gracefully while
BLOOM collapses once its filter saturates.  Panel (b): error grows with
the number of nodes at fixed kappa; DFTT's growth is the slowest.
"""

from repro.experiments import fig10


def test_fig10a_error_vs_kappa(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig10.run_panel_a, args=(bench_scale,), kwargs={"num_nodes": 8},
        rounds=1, iterations=1,
    )
    print()
    print(fig10.format_panel_a(rows))

    def series(algorithm):
        points = sorted(
            (r.kappa, r.epsilon) for r in rows if r.algorithm == algorithm
        )
        return [eps for _, eps in points]

    for algorithm in ("DFT", "DFTT", "BLOOM", "SKCH"):
        eps = series(algorithm)
        # The tightest summaries are never an algorithm's best operating
        # point.  (Comparing against the *minimum* rather than the first
        # point: at very small kappa BLOOM's huge snapshots congest the
        # senders and hurt it from the other side -- a real effect, the
        # curve is U-shaped.)
        assert eps[-1] >= min(eps) - 0.02
    # "DFTT scales the best": as the summaries shrink to a handful of
    # entries, DFTT's error degrades (from its own best point) less than
    # BLOOM's, whose filter saturates.
    dftt, bloom = series("DFTT"), series("BLOOM")
    assert dftt[-1] - min(dftt) < bloom[-1] - min(bloom)


def test_fig10b_error_vs_nodes(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig10.run_panel_b, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(fig10.format_panel_b(rows))

    node_grid = sorted({r.num_nodes for r in rows})
    by_algorithm = {
        algorithm: [
            next(r.epsilon for r in rows if r.algorithm == algorithm and r.num_nodes == n)
            for n in node_grid
        ]
        for algorithm in ("DFT", "DFTT", "BLOOM", "SKCH")
    }
    # Error grows (or holds) with N for every algorithm at fixed budget.
    for eps in by_algorithm.values():
        assert eps[-1] >= eps[0] - 0.08
    # DFTT stays at or below the flow-only and sketch baselines at scale.
    assert by_algorithm["DFTT"][-1] <= by_algorithm["DFT"][-1] + 0.02
    assert by_algorithm["DFTT"][-1] <= by_algorithm["SKCH"][-1] + 0.02
