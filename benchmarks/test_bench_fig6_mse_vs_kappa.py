"""Figure 6: mean-square error vs compression factor, 0.25 threshold line.

The sweep that justifies "lossless DFT coefficient compression up to a
factor of 256": E[MSE] grows monotonically with kappa and crosses the
0.25 line right after kappa = 256 on the stock stream.
"""

from repro.experiments import fig6

WINDOW = 8192
KAPPAS = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig6_mse_sweep(benchmark):
    result = benchmark(fig6.run, WINDOW, KAPPAS)
    print()
    print(fig6.format_result(result))

    means = [p.mean_mse for p in result.points]
    assert means == sorted(means)  # error grows with compression
    assert result.chosen_kappa == 256  # the paper's headline factor
    below = [p for p in result.points if p.kappa <= 256]
    above = [p for p in result.points if p.kappa > 256]
    assert all(p.is_lossless for p in below)
    assert all(not p.is_lossless for p in above)
