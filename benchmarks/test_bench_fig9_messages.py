"""Figure 9: messages per result tuple at a fixed 15% error target.

Top panel (uniform data): the filtered algorithms perform alike -- no
correlation structure exists to exploit.  Bottom panel (Zipf with
geographic skew): the summary-guided algorithms (DFTT, BLOOM) transmit
the fewest messages per result tuple; flow-only filtering (DFT) and
aggregate join-size weighting (SKCH) trail; BASE pays the full broadcast
price.
"""

from repro.config import WorkloadKind
from repro.experiments import fig9


def test_fig9_messages_per_result(benchmark, bench_scale):
    cells = benchmark.pedantic(
        fig9.run,
        args=(bench_scale,),
        kwargs={"workloads": (WorkloadKind.UNIFORM, WorkloadKind.ZIPF), "max_probes": 6},
        rounds=1,
        iterations=1,
    )
    print()
    print(fig9.format_result(cells))

    n = max(c.num_nodes for c in cells)
    zipf = {c.algorithm: c for c in cells if c.workload == "ZIPF" and c.num_nodes == n}
    uni = {c.algorithm: c for c in cells if c.workload == "UNI" and c.num_nodes == n}

    # BASE transmits (N-1) per arrival -- by far the most messages.
    assert zipf["BASE"].messages_per_arrival > 1.5 * zipf["DFTT"].messages_per_arrival

    # Under skew the tuple-testing algorithms beat flow-only DFT and SKCH.
    assert zipf["DFTT"].messages_per_result_tuple < zipf["DFT"].messages_per_result_tuple
    assert zipf["DFTT"].messages_per_result_tuple < zipf["SKCH"].messages_per_result_tuple

    # Under uniform data the filtered algorithms bunch together.
    filtered = [uni[a].messages_per_result_tuple for a in ("DFT", "DFTT", "BLOOM", "SKCH")]
    finite = [m for m in filtered if m != float("inf")]
    assert len(finite) >= 3
    assert max(finite) / max(min(finite), 1e-9) < 3.0
