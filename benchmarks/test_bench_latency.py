"""Result-latency comparison (the intro's "timely manner" requirement).

Not a paper figure, but the quantity its motivating applications care
about: how long after a pair physically exists does the system report
it?  Local and shadow-window discoveries are instantaneous; the tail is
set by forwarding delay, so BASE (which forwards everything immediately)
has the freshest tail, while filtered algorithms trade a slightly longer
tail -- and some misses -- for an order less traffic.
"""

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowSettings
from repro.core.system import run_experiment


def _config(algorithm):
    return SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(
            algorithm=algorithm,
            kappa=16,
            flow=FlowSettings(budget_override=2.5),
        ),
        workload=WorkloadConfig(total_tuples=4000, domain=2048, arrival_rate=250.0),
        seed=53,
    )


def test_latency_profile(benchmark):
    def sweep():
        return {
            algorithm.value: run_experiment(_config(algorithm)).latency
            for algorithm in (Algorithm.BASE, Algorithm.DFTT, Algorithm.BLOOM)
        }

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  algo   mean(ms)  p95(ms)  max(ms)  results")
    for name, latency in profiles.items():
        print(
            "  %-5s  %8.2f  %7.2f  %7.1f  %7d"
            % (
                name,
                1e3 * latency["mean"],
                1e3 * latency["p95"],
                1e3 * latency["max"],
                latency["count"],
            )
        )

    for latency in profiles.values():
        # Every profile is physically sane: non-negative, sub-second tail
        # at this light load (one link hop is 20-100 ms).
        assert latency["mean"] >= 0.0
        assert latency["max"] < 60.0
        assert latency["count"] > 0
    # The exact join reports the most pairs.
    assert profiles["BASE"]["count"] >= profiles["DFTT"]["count"]
