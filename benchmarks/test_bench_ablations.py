"""Ablation benchmarks for the reproduction's design choices.

Three choices DESIGN.md calls out get quantified here:

* **Similarity measure** -- the DFT policy can derive p_ij from the
  verbatim Equation 4 statistic (SPECTRAL), the all-lags peak (MAX_LAG),
  or the reconstructed-histogram overlap (DISTRIBUTION, the default).
  On i.i.d. ZIPF windows the lag-based statistics carry little routing
  information (their expectation is alignment-dependent), which is
  exactly why the default is the distribution form.
* **Sketch structure** -- plain AGMS touches every counter per update;
  Fast-AGMS touches one per row.  Same estimation target, very different
  update cost.
* **Summary refresh cadence** -- more frequent refreshes mean fresher
  remote state but more summary bytes.
"""

import numpy as np
import pytest

from repro._rng import ensure_rng
from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.correlation import SimilarityMeasure
from repro.core.flow import FlowSettings
from repro.core.system import run_experiment
from repro.sketches.agms import AgmsSketch, SketchShape
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape


def _dft_config(measure, refresh=32, seed=17):
    return SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(
            algorithm=Algorithm.DFT,
            kappa=16,
            similarity=measure,
            summary_refresh_interval=refresh,
            flow=FlowSettings(budget_override=2.0),
        ),
        workload=WorkloadConfig(total_tuples=4000, domain=2048, arrival_rate=250.0),
        seed=seed,
    )


def test_ablation_similarity_measure(benchmark):
    """DISTRIBUTION similarity routes better than the lag-based forms."""

    def sweep():
        return {
            measure: run_experiment(_dft_config(measure)).epsilon
            for measure in SimilarityMeasure
        }

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for measure, epsilon in errors.items():
        print("  %-13s epsilon=%.3f" % (measure.value, epsilon))
    assert errors[SimilarityMeasure.DISTRIBUTION] <= min(
        errors[SimilarityMeasure.SPECTRAL], errors[SimilarityMeasure.MAX_LAG]
    ) + 0.02


def test_ablation_sketch_update_cost(benchmark):
    """Fast-AGMS updates are much cheaper at equal wire size."""
    total = 2000
    rng = ensure_rng(3)
    plain = AgmsSketch(SketchShape.from_total(total), rng=rng)
    fast = FastAgmsSketch(FastSketchShape.from_total(total), rng=rng)
    keys = ensure_rng(4).integers(1, 10_000, size=4096)
    position = {"index": 0}

    def one_plain_update():
        plain.update(int(keys[position["index"] % keys.size]))
        position["index"] += 1

    import time

    start = time.perf_counter()
    for _ in range(512):
        one_plain_update()
    plain_seconds = time.perf_counter() - start

    def one_fast_update():
        fast.update(int(keys[position["index"] % keys.size]))
        position["index"] += 1

    fast_seconds = benchmark(one_fast_update)
    # benchmark() returns the callable's result; use its stats instead.
    fast_mean = benchmark.stats.stats.mean
    plain_mean = plain_seconds / 512
    print("\n  plain AGMS  %.1f us/update" % (1e6 * plain_mean))
    print("  fast  AGMS  %.1f us/update" % (1e6 * fast_mean))
    assert fast_mean < plain_mean


def test_ablation_refresh_cadence(benchmark):
    """Fresher summaries cost overhead; staleness costs accuracy."""

    def sweep():
        rows = []
        for refresh in (8, 32, 128):
            result = run_experiment(_dft_config(SimilarityMeasure.DISTRIBUTION, refresh))
            rows.append((refresh, result.epsilon, result.summary_overhead_fraction))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for refresh, epsilon, overhead in rows:
        print("  refresh=%-4d epsilon=%.3f overhead=%.3f" % (refresh, epsilon, overhead))
    overheads = [overhead for _, _, overhead in rows]
    assert overheads == sorted(overheads, reverse=True)  # fresher = costlier