"""Microbenchmarks for the vectorized hot-path kernels.

Every benchmark times a fast kernel against the pre-optimization
reference the ``REPRO_NAIVE_KERNELS`` switch preserves (per-update
``np.exp`` sliding DFT, uncached scalar sketch updates) over the same
work, then asserts the contracted speedup floors:

* ``sliding_dft_extend``  -- >= 5x over the scalar update loop;
* ``agms_windowed_update`` -- >= 3x over per-tuple update/evict pairs;

and writes every measurement to ``benchmarks/BENCH_kernels.json`` (a
generated, gitignored report).  The final test gates against the
committed ``benchmarks/BENCH_kernels_baseline.json``:
a kernel whose measured speedup fell to less than half its committed
baseline fails the run (the CI bench smoke job's regression tripwire).

Scale with ``REPRO_BENCH_SCALE``: ``bench`` (default) finishes in
seconds; ``default``/``full`` use larger windows and streams.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro._rng import ensure_rng
from repro.dft.control import ControlVector
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.profiling import Stopwatch
from repro.sketches.agms import AgmsSketch, SketchShape
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape
from repro.sketches.hashing import FourWiseHashFamily

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_kernels.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernels_baseline.json"

SCALES = {
    # window, tracked bins, stream length, sketch updates, sketch counters
    "bench": dict(window=4096, bins=64, stream=12_000, updates=6_000, counters=80),
    "default": dict(window=16_384, bins=128, stream=50_000, updates=20_000, counters=160),
    "full": dict(window=65_536, bins=256, stream=200_000, updates=60_000, counters=320),
}

RESULTS = {}
"""Accumulated measurements, written once by the final test."""


def _scale():
    return SCALES.get(os.environ.get("REPRO_BENCH_SCALE", "bench"), SCALES["bench"])


def _best_of(fn, repeats=3):
    """Minimum wall time over ``repeats`` runs of ``fn``.

    Summary structures are built *outside* the timed region: a twiddle
    table or hash bank is constructed once per query lifetime and
    amortized over the whole stream, while these loops measure the
    steady-state per-tuple maintenance cost Table 1 is about.
    """
    best = float("inf")
    for _ in range(repeats):
        with Stopwatch() as watch:
            fn()
        best = min(best, watch.wall_seconds)
    return max(best, 1e-9)


def _record(name, naive_seconds, fast_seconds, items):
    RESULTS[name] = {
        "naive_seconds": naive_seconds,
        "fast_seconds": fast_seconds,
        "speedup": naive_seconds / fast_seconds,
        "items": items,
        "fast_items_per_second": items / fast_seconds,
    }
    return RESULTS[name]["speedup"]


def _no_recompute_control():
    # Drift control off the table so the benchmark isolates the update
    # kernel itself (recompute cost is identical on both paths).
    return ControlVector(recompute_interval=10**9, drift_bound=1.0)


def test_sliding_dft_extend_speedup():
    """Batched extend vs the pre-optimization scalar update loop (>= 5x)."""
    scale = _scale()
    rng = ensure_rng(2007)
    stream = rng.normal(scale=100.0, size=scale["stream"])
    bins = low_frequency_bins(scale["window"], scale["bins"])

    naive_dft = SlidingDFT(
        scale["window"], tracked_bins=bins,
        control=_no_recompute_control(), mode="naive",
    )
    fast_dft = SlidingDFT(
        scale["window"], tracked_bins=bins, control=_no_recompute_control()
    )
    assert fast_dft.mode in ("table", "rotation")

    def run_naive():
        naive_dft.extend(stream)  # naive mode: the historical per-update loop

    def run_fast():
        fast_dft.extend(stream)

    speedup = _record(
        "sliding_dft_extend", _best_of(run_naive), _best_of(run_fast), stream.size
    )
    assert speedup >= 5.0, "extend speedup %.1fx below the 5x floor" % speedup


def test_sliding_dft_scalar_update_speedup():
    """Satellite: cached per-slot phase rows beat per-update np.exp."""
    scale = _scale()
    rng = ensure_rng(11)
    stream = rng.normal(scale=100.0, size=min(scale["stream"], 20_000))
    bins = low_frequency_bins(scale["window"], scale["bins"])

    def run(mode):
        dft = SlidingDFT(
            scale["window"], tracked_bins=bins,
            control=_no_recompute_control(), mode=mode,
        )

        def body():
            for value in stream:
                dft.update(value)
        return body

    speedup = _record(
        "sliding_dft_update",
        _best_of(run("naive")),
        _best_of(run("table")),
        stream.size,
    )
    assert speedup >= 1.2, "per-update speedup %.2fx regressed" % speedup


def _windowed_keys(count, rng):
    """A skewed key stream: duplicates dominate, like a Zipf window."""
    return rng.zipf(1.3, size=count) % 1024


def test_agms_windowed_update_speedup():
    """Batched windowed update/evict vs scalar pairs (>= 3x)."""
    scale = _scale()
    rng = ensure_rng(3)
    arrivals = _windowed_keys(scale["updates"], rng)
    evictions = _windowed_keys(scale["updates"], rng)
    shape = SketchShape.from_total(scale["counters"])

    naive_sketch = AgmsSketch(
        shape, hashes=FourWiseHashFamily(shape.total, rng=ensure_rng(7), cache_size=0)
    )
    fast_sketch = AgmsSketch(
        shape, hashes=FourWiseHashFamily(shape.total, rng=ensure_rng(7))
    )

    def run_naive():
        for arrival, eviction in zip(arrivals, evictions):
            naive_sketch.update(int(arrival), +1)
            naive_sketch.update(int(eviction), -1)

    keys = np.concatenate([arrivals, evictions])
    deltas = np.concatenate(
        [np.ones(arrivals.size), -np.ones(evictions.size)]
    )

    def run_fast():
        fast_sketch.update_batch(keys, deltas)

    speedup = _record(
        "agms_windowed_update",
        _best_of(run_naive),
        _best_of(run_fast),
        keys.size,
    )
    assert speedup >= 3.0, "AGMS batch speedup %.1fx below the 3x floor" % speedup


def test_fast_agms_windowed_update_speedup():
    """Fast-AGMS batched update/evict vs scalar pairs (>= 3x)."""
    scale = _scale()
    rng = ensure_rng(5)
    arrivals = _windowed_keys(scale["updates"], rng)
    evictions = _windowed_keys(scale["updates"], rng)
    shape = FastSketchShape.from_total(scale["counters"], rows=5)

    generator = ensure_rng(9)
    naive_hashes = (
        FourWiseHashFamily(shape.rows, rng=generator, cache_size=0),
        FourWiseHashFamily(shape.rows, rng=generator, cache_size=0),
    )
    naive_sketch = FastAgmsSketch(shape, hashes=naive_hashes)
    fast_sketch = FastAgmsSketch(shape, rng=ensure_rng(9))

    def run_naive():
        for arrival, eviction in zip(arrivals, evictions):
            naive_sketch.update(int(arrival), +1)
            naive_sketch.update(int(eviction), -1)

    keys = np.concatenate([arrivals, evictions])
    deltas = np.concatenate([np.ones(arrivals.size), -np.ones(evictions.size)])

    def run_fast():
        fast_sketch.update_batch(keys, deltas)

    speedup = _record(
        "fast_agms_windowed_update",
        _best_of(run_naive),
        _best_of(run_fast),
        keys.size,
    )
    assert speedup >= 3.0, "Fast-AGMS batch speedup %.1fx below 3x" % speedup


def test_sign_cache_speedup():
    """Satellite: the LRU sign cache beats re-hashing a skewed stream."""
    scale = _scale()
    rng = ensure_rng(13)
    keys = _windowed_keys(scale["updates"], rng)

    def run(cache_size):
        family = FourWiseHashFamily(
            scale["counters"], rng=ensure_rng(17), cache_size=cache_size
        )

        def body():
            for key in keys:
                family.signs(int(key))
        return body

    speedup = _record(
        "sign_cache_lookup", _best_of(run(0)), _best_of(run(4096)), keys.size
    )
    assert speedup >= 1.5, "sign cache speedup %.2fx regressed" % speedup


def test_zz_write_report_and_gate_regressions():
    """Write BENCH_kernels.json; fail on >2x regression vs the baseline.

    (Named ``zz`` so pytest's file order runs it after every measurement.)
    """
    assert RESULTS, "no benchmark results collected"
    report = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "bench"),
        "kernels": RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    baseline = json.loads(BASELINE_PATH.read_text())["kernels"]
    regressions = []
    for name, floor in baseline.items():
        measured = RESULTS.get(name, {}).get("speedup")
        if measured is None:
            continue
        if measured < floor["speedup"] / 2.0:
            regressions.append(
                "%s: %.2fx, baseline %.2fx" % (name, measured, floor["speedup"])
            )
    assert not regressions, "kernel speedups regressed >2x: %s" % "; ".join(
        regressions
    )
