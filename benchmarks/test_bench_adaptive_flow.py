"""Ablation: resource-aware adaptive budgets under overload.

The abstract promises "automatic throughput handling based on resource
availability".  This bench offers a DFTT system ~10x its sustainable
rate and compares static budgets against adaptive ones: the adaptive
system sheds optional transmissions while its queues are deep, so it
drains sooner and transmits less, at a modest error cost; at light load
the two are indistinguishable.
"""

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowSettings
from repro.core.system import run_experiment


def _config(adaptive, rate):
    return SystemConfig(
        num_nodes=6,
        window_size=192,
        policy=PolicyConfig(
            algorithm=Algorithm.DFTT,
            kappa=12.0,
            flow=FlowSettings(adaptive=adaptive, congestion_low=2, congestion_high=16),
        ),
        workload=WorkloadConfig(total_tuples=4000, domain=2048, arrival_rate=rate),
        seed=67,
    )


def test_adaptive_budget_under_overload(benchmark):
    def sweep():
        rows = {}
        for label, adaptive, rate in (
            ("static/overload", False, 2500.0),
            ("adaptive/overload", True, 2500.0),
            ("static/light", False, 200.0),
            ("adaptive/light", True, 200.0),
        ):
            rows[label] = run_experiment(_config(adaptive, rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  scenario           eps    msgs/arr  drain(s)  results/s")
    for label, result in rows.items():
        print(
            "  %-17s  %5.3f  %8.2f  %8.1f  %9.1f"
            % (
                label,
                result.epsilon,
                result.messages_per_arrival,
                result.duration_seconds,
                result.throughput,
            )
        )

    static_overload = rows["static/overload"]
    adaptive_overload = rows["adaptive/overload"]
    # Under overload the adaptive system sheds messages and drains sooner.
    assert adaptive_overload.messages_per_arrival < static_overload.messages_per_arrival
    assert adaptive_overload.duration_seconds < static_overload.duration_seconds
    # At light load adaptivity is a no-op.
    assert rows["adaptive/light"].messages_per_arrival == pytest.approx(
        rows["static/light"].messages_per_arrival, rel=0.2
    )