"""Figure 3: analytical error/message bounds under uniform data.

Closed-form evaluation; the benchmark times the bound computation and the
test body asserts the figure's qualitative content: errors grow toward 1
with N, the O(log N) budget dominates O(1) on error, and its message cost
is a multi-fold saving over the baseline's N - 1.
"""

from repro.core.bounds import Budget, uniform_error_bound
from repro.experiments import fig3

MAX_NODES = 50


def test_fig3_bounds(benchmark):
    rows = benchmark(fig3.run, MAX_NODES)
    print()
    print(fig3.format_result(rows[:5] + rows[-5:]))

    errors_t1 = [row.error_t1 for row in rows]
    errors_tlog = [row.error_tlog for row in rows]
    assert errors_t1 == sorted(errors_t1)
    assert errors_t1[-1] > 0.9  # runs off toward 1 (Figure 3a)
    for t1, tlog in zip(errors_t1, errors_tlog):
        assert tlog <= t1 + 1e-12

    final = rows[-1]
    assert final.messages_t1 == 1.0
    assert final.messages_baseline / final.messages_tlog > 3.0  # Figure 3b


def test_bounds_match_closed_forms():
    assert uniform_error_bound(20, Budget.CONSTANT) == 0.9
    row = fig3.run(20)[-1]
    assert row.error_t1 == 0.9
