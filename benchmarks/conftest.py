"""Benchmark configuration.

``REPRO_BENCH_SCALE`` selects the experiment scale for the simulation
benchmarks: ``bench`` (default, a few minutes for the whole suite),
``default`` (tens of minutes, smoother curves), or ``full`` (the closest
laptop approximation of the paper's sizes).
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale():
    return os.environ.get("REPRO_BENCH_SCALE", "bench")
