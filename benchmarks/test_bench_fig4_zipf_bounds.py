"""Figure 4: analytical error bounds under Zipf(0.4) data.

The figure's point (and this bench's assertion): under skew the O(log N)
error bound flattens out as nodes are added instead of running to 1 as
the uniform worst case does.
"""

from repro.experiments import fig4


def test_fig4_bounds(benchmark):
    rows = benchmark(fig4.run, 20, 0.4)
    print()
    print(fig4.format_result(rows))

    olog = [row.error_olog for row in rows]
    uniform = [row.uniform_error_olog for row in rows]
    # The Zipf bound plateaus: its total growth over N=2..20 is small...
    assert max(olog) - min(olog) < 0.35
    # ...while the uniform bound keeps deteriorating past it.
    assert uniform[-1] - uniform[0] > 0.3
    assert olog[-1] < uniform[-1]
    # O(1) captures less than O(log N) at every N.
    for row in rows:
        assert row.error_olog <= row.error_o1 + 1e-12
