"""Scale bridge: why BLOOM looks stronger at laptop scale than in the paper.

The paper equalizes summary *sizes* across algorithms.  A Bloom filter's
usefulness depends on items **per counter** (W / counters), a DFT
summary's on coefficients **per window fraction** (W / kappa relative to
W) -- so shrinking W at fixed relative compression hands Bloom
proportionally more counters per item than the paper's testbed gave it
(0.8 items/counter at W = 256 vs 6.4 at the paper's W = 2^19).

This bench fixes the summary budget at 8 entries (320 Bloom counters / 8
DFT coefficients) and grows the window.  As items-per-counter rises
toward the paper's regime, BLOOM's error climbs while DFTT's stays flat,
and the curves cross -- evidence that the paper's DFTT-over-BLOOM
ordering is the large-window behaviour of this very system.
"""

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowSettings
from repro.core.system import run_experiment

SWEEP = ((256, 6_000), (512, 12_000), (1024, 24_000))
ENTRIES = 8
COUNTERS = ENTRIES * 40


def _run(algorithm, window, tuples):
    config = SystemConfig(
        num_nodes=6,
        window_size=window,
        policy=PolicyConfig(
            algorithm=algorithm,
            kappa=window / ENTRIES,
            flow=FlowSettings(budget_override=2.0),
        ),
        workload=WorkloadConfig(
            total_tuples=tuples, domain=4096, arrival_rate=400.0
        ),
        seed=9,
    )
    return run_experiment(config)


def test_bloom_saturates_as_windows_grow(benchmark):
    def sweep():
        rows = []
        for window, tuples in SWEEP:
            dftt = _run(Algorithm.DFTT, window, tuples)
            bloom = _run(Algorithm.BLOOM, window, tuples)
            rows.append((window, window / COUNTERS, dftt.epsilon, bloom.epsilon))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("  W     items/counter  eps(DFTT)  eps(BLOOM)")
    for window, ratio, dftt_eps, bloom_eps in rows:
        print("  %-5d %13.1f  %9.3f  %10.3f" % (window, ratio, dftt_eps, bloom_eps))

    dftt_errors = [r[2] for r in rows]
    bloom_errors = [r[3] for r in rows]
    # BLOOM degrades materially more than DFTT across the sweep...
    assert bloom_errors[-1] - bloom_errors[0] > (dftt_errors[-1] - dftt_errors[0]) + 0.01
    # ...and by the largest window the gap has closed or reversed.
    assert bloom_errors[-1] >= dftt_errors[-1] - 0.01
