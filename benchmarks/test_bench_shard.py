"""Benchmark for the sharded single-simulation engine.

One measurement: a 20-node full-window DFTT run, serial vs ``shards=4``,
with byte-identical results required before the clock is read.  On a
multi-core box the sharded run wins once per-round node work dominates
the barrier cost; on a single-core CI box four spawn workers (each
paying a fresh interpreter + numpy import and replaying replicated
construction) can only lose.  The committed floor therefore sits far
below 1x -- the gate catches the engine *collapsing* (rounds
serializing, per-round respawns, runaway merge cost), not core
starvation.  ``BENCH_shard.json`` records the measured speedup either
way; read it on real hardware to see when sharding pays off.
"""

import json
from pathlib import Path

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import run_experiment
from repro.profiling import Stopwatch

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_shard_baseline.json"

NODES = 20
SHARDS = 4

RESULTS = {}
"""Accumulated measurements, written once by the final test."""


def _config():
    """A 20-node full-window run: large enough that per-round node work
    is the bulk of the wall clock, small enough for the bench job."""
    return SystemConfig(
        num_nodes=NODES,
        window_size=128,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=4.0),
        workload=WorkloadConfig(
            total_tuples=4000, domain=1024, arrival_rate=400.0
        ),
        seed=3,
    )


def _timed(fn):
    with Stopwatch() as watch:
        value = fn()
    return value, max(watch.wall_seconds, 1e-9)


def test_sharded_twenty_node_run_speedup():
    """serial vs shards=4 on the same 20-node config; identity first."""
    config = _config()
    serial, serial_seconds = _timed(lambda: run_experiment(config))
    sharded, sharded_seconds = _timed(
        lambda: run_experiment(config, shards=SHARDS)
    )
    assert sharded.__dict__ == serial.__dict__, (
        "sharded run diverged from serial; the speedup is meaningless"
    )
    RESULTS["sharded_run"] = {
        "nodes": NODES,
        "shards": SHARDS,
        "base_seconds": serial_seconds,
        "fast_seconds": sharded_seconds,
        "speedup": serial_seconds / sharded_seconds,
    }
    assert RESULTS["sharded_run"]["speedup"] >= 0.1, (
        "sharded run took >10x serial time (%.2fx): the engine is "
        "collapsing, not just core-starved"
        % RESULTS["sharded_run"]["speedup"]
    )


def test_zz_write_report_and_gate_regressions():
    """Write BENCH_shard.json; fail on >2x regression vs the baseline.

    (Named ``zz`` so pytest's file order runs it after the measurement.)
    """
    assert RESULTS, "no benchmark results collected"
    report = {"shard": RESULTS}
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    baseline = json.loads(BASELINE_PATH.read_text())["shard"]
    regressions = []
    for name, floor in baseline.items():
        measured = RESULTS.get(name, {}).get("speedup")
        if measured is None:
            continue
        if measured < floor["speedup"] / 2.0:
            regressions.append(
                "%s: %.2fx, baseline %.2fx" % (name, measured, floor["speedup"])
            )
    assert not regressions, "sharded speedup regressed >2x: %s" % "; ".join(
        regressions
    )
