"""Benchmarks for the parallel runner and the run-result cache.

Two measurements, both against the serial no-cache path over the same
grid of simulation cells:

* ``parallel_speedup`` -- ``jobs=4`` vs serial.  The floor is set far
  below 1x on purpose: CI boxes may expose a single core, where four
  spawn workers (each paying a fresh interpreter + numpy import) can
  only lose.  The gate exists to catch the pool *collapsing* (workers
  serializing behind a lock, per-cell respawns), not to demand cores.
* ``cache_speedup`` -- a warm second sweep vs the cold first one.  A
  warm sweep does zero simulations, so this floor is meaningfully above
  1x everywhere.

Measurements land in ``benchmarks/BENCH_parallel.json`` (generated,
gitignored); the final test gates against the committed
``BENCH_parallel_baseline.json`` at half the baseline value, the same
tripwire discipline as ``test_bench_kernels.py``.
"""

import json
import os
from pathlib import Path

from repro.config import Algorithm
from repro.experiments.harness import get_scale, system_config
from repro.parallel import RunCache, run_configs
from repro.profiling import Stopwatch

REPORT_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_parallel_baseline.json"

RESULTS = {}
"""Accumulated measurements, written once by the final test."""


def _grid():
    """Eight smoke-scale cells: enough work that pool overhead is not
    the whole measurement, small enough for the bench smoke job."""
    preset = get_scale("smoke")
    return [
        system_config(preset, algorithm, num_nodes, seed_offset=index)
        for index, num_nodes in enumerate((2, 3, 4, 5))
        for algorithm in (Algorithm.DFTT, Algorithm.ROUND_ROBIN)
    ]


def _timed(fn):
    with Stopwatch() as watch:
        value = fn()
    return value, max(watch.wall_seconds, 1e-9)


def _record(name, base_seconds, fast_seconds, cells):
    RESULTS[name] = {
        "base_seconds": base_seconds,
        "fast_seconds": fast_seconds,
        "speedup": base_seconds / fast_seconds,
        "cells": cells,
    }
    return RESULTS[name]["speedup"]


def test_parallel_sweep_speedup():
    """jobs=4 vs serial over the same grid; identical results required."""
    configs = _grid()
    serial, serial_seconds = _timed(lambda: run_configs(configs, jobs=1))
    parallel, parallel_seconds = _timed(lambda: run_configs(configs, jobs=4))
    assert serial == parallel, "parallel sweep diverged from serial"
    speedup = _record(
        "parallel_sweep", serial_seconds, parallel_seconds, len(configs)
    )
    assert speedup >= 0.1, (
        "parallel sweep at 4 workers took >10x serial time (%.2fx): "
        "the pool is collapsing, not just core-starved" % speedup
    )


def test_cache_warm_sweep_speedup(tmp_path):
    """A warm sweep (zero simulations) vs the cold sweep that filled it."""
    configs = _grid()
    cold_cache = RunCache(str(tmp_path))
    cold, cold_seconds = _timed(lambda: run_configs(configs, cache=cold_cache))
    warm_cache = RunCache(str(tmp_path))
    warm, warm_seconds = _timed(lambda: run_configs(configs, cache=warm_cache))
    assert warm_cache.stats()["misses"] == 0, "warm sweep missed the cache"
    assert cold == warm, "cache-served sweep diverged from the cold one"
    speedup = _record("cache_warm_sweep", cold_seconds, warm_seconds, len(configs))
    assert speedup >= 2.5, (
        "warm cache sweep only %.1fx faster than computing" % speedup
    )


def test_zz_write_report_and_gate_regressions():
    """Write BENCH_parallel.json; fail on >2x regression vs the baseline.

    (Named ``zz`` so pytest's file order runs it after every measurement.)
    """
    assert RESULTS, "no benchmark results collected"
    report = {
        "scale": "smoke",
        "parallel": RESULTS,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    baseline = json.loads(BASELINE_PATH.read_text())["parallel"]
    regressions = []
    for name, floor in baseline.items():
        measured = RESULTS.get(name, {}).get("speedup")
        if measured is None:
            continue
        if measured < floor["speedup"] / 2.0:
            regressions.append(
                "%s: %.2fx, baseline %.2fx" % (name, measured, floor["speedup"])
            )
    assert not regressions, "parallel speedups regressed >2x: %s" % "; ".join(
        regressions
    )
