"""Figure 8: DFT coefficient updates as a fraction of net data.

The paper reports that coefficient updates stay a small percentage
(1.38-2.84%) of the net data and do not threaten scalability.  At our
scaled window sizes the window turns over ~12% between refreshes (vs
~0.04% at the paper's W = 2^19), so delta suppression cannot engage and
the absolute percentage is higher; the invariant that survives scaling --
and that the paper's scalability argument actually needs -- is that the
overhead remains a small bounded fraction of traffic rather than growing
without bound as nodes are added.  EXPERIMENTS.md discusses the slope
difference.
"""

from repro.experiments import fig8


def test_fig8_summary_overhead(benchmark, bench_scale):
    rows = benchmark.pedantic(
        fig8.run, args=(bench_scale,), rounds=1, iterations=1
    )
    print()
    print(fig8.format_result(rows))

    assert len(rows) >= 2
    for row in rows:
        assert 0.0 < row.overhead_percent < 40.0
        assert row.summary_bytes > 0
        assert row.summary_bytes < row.net_data_bytes  # summaries never dominate
    # Sub-linear growth: doubling N must not double the overhead share.
    assert rows[-1].overhead_percent < 2.0 * rows[0].overhead_percent
