"""Sensitivity sweep: the correlation-filtering advantage needs skew.

"Our experimental results reveal that our method scales ... in domains
that exhibit a geographic skew in the joining attributes" -- so the DFTT
advantage over budget-matched round-robin should be ~zero without skew
and substantial with it.  This bench quantifies that dependence.
"""

from repro.experiments import sensitivity


def test_advantage_grows_with_geographic_skew(benchmark):
    rows = benchmark.pedantic(sensitivity.sweep_skew, rounds=1, iterations=1)
    print()
    print(sensitivity.format_rows(rows))

    by_skew = {row.value: row for row in rows}
    # Without geographic structure there is nothing to exploit.
    assert abs(by_skew[0.0].advantage) < 0.08
    # With strong skew the informed policy clearly beats round-robin.
    # (The gap is bounded by how many pairs are *remote* at all: skew also
    # concentrates matches at their home node, where every policy finds
    # them locally, so the exploitable headroom shrinks as skew -> 1.)
    assert by_skew[0.95].advantage > 0.04
    # The trend is clear end to end: the advantage at least triples.
    assert by_skew[0.95].advantage > 2.5 * max(by_skew[0.0].advantage, 0.0) + 0.01


def test_advantage_depends_on_skew_more_than_alpha(benchmark):
    alpha_rows = benchmark.pedantic(sensitivity.sweep_alpha, rounds=1, iterations=1)
    print()
    print(sensitivity.format_rows(alpha_rows))
    skew_rows = sensitivity.sweep_skew(skews=(0.0, 0.95))

    alpha_spread = max(r.advantage for r in alpha_rows) - min(
        r.advantage for r in alpha_rows
    )
    skew_spread = skew_rows[-1].advantage - skew_rows[0].advantage
    assert skew_spread > alpha_spread
