"""Figure 5: per-value squared reconstruction errors of the stock stream.

The paper's panels at W/1024, W/256 and W/64 coefficients: squared errors
fall as the budget grows, and at kappa = 256 the bulk of values land
under the 0.25 round-off threshold (near-lossless compression).
"""

from repro.experiments import fig5

WINDOW = 8192


def test_fig5_reconstruction_errors(benchmark):
    series = benchmark(fig5.run, WINDOW)
    print()
    print(fig5.format_result(series))

    by_kappa = {s.kappa: s for s in series}
    assert set(by_kappa) == {1024, 256, 64}
    # More coefficients -> smaller errors (left-to-right in the figure).
    assert (
        by_kappa[64].mean_squared_error
        < by_kappa[256].mean_squared_error
        < by_kappa[1024].mean_squared_error
    )
    # kappa = 256 is near-lossless: most squared errors below 0.25.
    assert by_kappa[256].lossless_fraction > 0.75
    assert by_kappa[256].mean_squared_error < 0.25
    # kappa = 1024 is past the knee.
    assert by_kappa[1024].mean_squared_error > 0.25
