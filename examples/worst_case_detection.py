"""Detecting the uniform worst case (Section 5.2.2).

Uniformly distributed joining attributes are the worst case for any
distributed join: every peer is equally (un)likely to hold a match, so
correlation-driven routing has nothing to exploit.  The paper's nodes
detect this by watching the variance of their per-peer similarity
coefficients and fall back to round-robin distribution.

This example runs the DFT policy on a uniform and on a skewed workload
and reports the detector's verdicts and the resulting accuracy.

Run:  python examples/worst_case_detection.py
"""

from repro import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem


def build_config(kind: WorkloadKind) -> SystemConfig:
    return SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(algorithm=Algorithm.DFT, kappa=16),
        workload=WorkloadConfig(
            kind=kind,
            total_tuples=6_000,
            domain=4_096,
            arrival_rate=250.0,
            # Uniform data additionally gets uniform placement: no
            # geography at all, the true worst case.
            skew=0.0 if kind is WorkloadKind.UNIFORM else 0.85,
        ),
        seed=5,
    )


def main() -> None:
    for kind in (WorkloadKind.UNIFORM, WorkloadKind.ZIPF):
        system = DistributedJoinSystem(build_config(kind))
        result = system.run()
        detections = sum(
            d.get("uniform_detections", 0) for d in result.node_diagnostics.values()
        )
        fallbacks = sum(
            d.get("fallback_decisions", 0) for d in result.node_diagnostics.values()
        )
        print("workload %-4s:" % kind.value)
        print("  worst-case detections: %d" % detections)
        print("  round-robin fallback decisions: %d" % fallbacks)
        print("  epsilon: %.3f   msgs/arrival: %.2f" % (
            result.epsilon, result.messages_per_arrival))
        print()
    print(
        "Under uniform data the similarity variance collapses and the nodes"
        "\nspend most decisions in the round-robin fallback; under skewed"
        "\ndata the correlation signal stays informative and the detector"
        "\nfires only sporadically."
    )


if __name__ == "__main__":
    main()
