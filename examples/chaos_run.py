"""Surviving a partition, a crash, and a loss burst in one run.

A four-node deployment is hit by three overlapping faults: nodes 0+1
are partitioned away for three seconds, node 2 crashes and restarts,
and the whole mesh then suffers a 40 % loss burst.  With the reliable
control plane enabled (ARQ + heartbeat failure detection +
resync-on-recovery) the run reports *what happened* -- detections,
recovery latencies, resyncs -- and re-baselines every returning peer,
so the error degradation stays bounded instead of compounding as peers
keep filtering on poisoned summaries.

Run:  python examples/chaos_run.py
"""

from repro import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem
from repro.net.faults import FaultPlan
from repro.net.link import LinkSpec
from repro.net.reliable import ReliabilitySettings

PLAN = "partition@t=2,d=3,nodes=0+1; crash@t=8,d=2,node=2; loss@t=12,d=3,p=0.4"


def build_config(faults: FaultPlan, reliable: bool) -> SystemConfig:
    return SystemConfig(
        num_nodes=4,
        window_size=128,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=8),
        workload=WorkloadConfig(total_tuples=2_500, domain=1_024, arrival_rate=150.0),
        link=LinkSpec(latency_min_s=0.02, latency_max_s=0.1),
        reliability=ReliabilitySettings(enabled=reliable),
        faults=faults,
        seed=7,
    )


def describe(label: str, result) -> None:
    print("%s:" % label)
    print("  epsilon            %.4f" % result.epsilon)
    print("  messages lost      %d" % result.messages_lost)
    if result.faults:
        print(
            "  blocked / dropped  %d in transit, %d local arrivals"
            % (
                result.faults.get("messages_blocked", 0),
                result.faults.get("local_arrivals_dropped", 0),
            )
        )
    if result.reliability:
        rel = result.reliability
        print(
            "  recovery           %d retransmits, %d failures detected,"
            " %d recoveries, %d resyncs"
            % (
                rel.get("retransmits", 0),
                rel.get("failures_detected", 0),
                rel.get("recoveries", 0),
                rel.get("resyncs", 0),
            )
        )
        if "recovery_latency_mean_s" in rel:
            print(
                "  detection latency  %.2fs mean, %.2fs max"
                % (rel["recovery_latency_mean_s"], rel["recovery_latency_max_s"])
            )
    print()


def main() -> None:
    print("Chaos plan: %s\n" % PLAN)
    plan = FaultPlan.parse(PLAN, num_nodes=4)

    baseline = DistributedJoinSystem(build_config(FaultPlan(), reliable=False)).run()
    describe("fault-free baseline", baseline)

    best_effort = DistributedJoinSystem(build_config(plan, reliable=False)).run()
    describe("faults, best-effort wire", best_effort)

    recovered = DistributedJoinSystem(build_config(plan, reliable=True)).run()
    describe("faults, reliable control plane", recovered)

    print(
        "Degradation vs baseline: %.4f best-effort, %.4f with recovery"
        % (
            best_effort.epsilon - baseline.epsilon,
            recovered.epsilon - baseline.epsilon,
        )
    )


if __name__ == "__main__":
    main()
