"""Tracking suspicious flows across network domains (Section 1's motif).

Packet streams from multiple vantage points must be cross-referenced to
follow flows that traverse several administrative domains: stream R is
"packets entering" and stream S "packets leaving", joined on the flow
identifier.  Eight monitoring nodes each observe a geographically biased
slice of the traffic (heavy-hitter flows with long bursts).

The example contrasts all four approximate algorithms at the same flow
budget and shows the per-node contribution skew the correlation filtering
exploits.

Run:  python examples/network_monitoring.py
"""

from repro import (
    Algorithm,
    FlowSettings,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem


def build_config(algorithm: Algorithm) -> SystemConfig:
    return SystemConfig(
        num_nodes=8,
        window_size=384,
        policy=PolicyConfig(
            algorithm=algorithm,
            kappa=24,
            flow=FlowSettings(budget_override=2.5),
        ),
        workload=WorkloadConfig(
            kind=WorkloadKind.NETWORK,
            total_tuples=8_000,
            domain=4_096,
            arrival_rate=250.0,
            skew=0.9,
        ),
        seed=2025,
    )


def main() -> None:
    print("Cross-domain flow join on synthetic packet traces (NWRK)\n")
    print("algorithm  epsilon  msgs/result  msgs/arrival")
    contribution = None
    for algorithm in (Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM, Algorithm.SKCH):
        system = DistributedJoinSystem(build_config(algorithm))
        result = system.run()
        print(
            "%-9s  %7.3f  %11.3f  %12.2f"
            % (
                algorithm.value,
                result.epsilon,
                result.messages_per_result_tuple,
                result.messages_per_arrival,
            )
        )
        if algorithm is Algorithm.DFTT:
            contribution = system.oracle.per_node_contribution

    print("\nTrue result contribution per monitoring node (DFTT run):")
    total = sum(contribution.values()) or 1
    for node in sorted(contribution):
        share = contribution[node] / total
        print("  node %d: %6.1f%%  %s" % (node, 100 * share, "#" * int(50 * share)))
    print(
        "\nThe skew above is what lets DFTT route each flow's packets to"
        "\nthe few nodes that actually see the other direction of the flow."
    )


if __name__ == "__main__":
    main()
