"""Choosing the DFT compression factor for a stream (Section 5.3).

Before a node starts shipping coefficients it must decide how many to
ship: too few and remote reconstruction breaks; too many and the summary
wastes bandwidth.  The paper's rule is the largest kappa whose expected
mean-square reconstruction error stays below 0.25 -- the radius at which
integer round-off recovers the original attributes exactly.

This example runs the rule on a tick-level stock stream (Figures 5/6) and
then demonstrates the actual reconstruction at the chosen factor.

Run:  python examples/compression_tuning.py
"""

import numpy as np

from repro.core.compression import (
    LOSSLESS_MSE_THRESHOLD,
    choose_compression_factor,
    mse_statistics,
)
from repro.dft.reconstruction import (
    coefficient_budget,
    compress_spectrum,
    reconstruct_values,
)
from repro.streams.financial import smooth_price_signal

WINDOW = 8_192
KAPPAS = (16, 64, 128, 256, 512, 1024)


def main() -> None:
    signal = smooth_price_signal(WINDOW, rng=np.random.default_rng(11))
    print("tick-level stock window: W=%d, price range [%d, %d]\n" % (
        WINDOW, int(signal.min()), int(signal.max())))

    print("kappa  coefficients  E[MSE]    lossless?")
    for point in mse_statistics(signal, KAPPAS):
        print(
            "%5d  %12d  %8.4f  %s"
            % (point.kappa, point.budget, point.mean_mse, "yes" if point.is_lossless else "no")
        )

    kappa = choose_compression_factor(signal, KAPPAS)
    print(
        "\nlargest kappa with E[MSE] < %.2f: %d"
        % (LOSSLESS_MSE_THRESHOLD, kappa)
    )

    budget = coefficient_budget(WINDOW, kappa)
    kept = compress_spectrum(np.fft.fft(signal), budget)
    recovered = reconstruct_values(kept, WINDOW)
    exact = np.mean(recovered == signal.astype(np.int64))
    print(
        "shipping %d of %d coefficients reproduces %.1f%% of the window's"
        "\nattribute values exactly after round-off -- what the DFTT"
        "\nalgorithm tests remote tuples against." % (budget, WINDOW, 100 * exact)
    )


if __name__ == "__main__":
    main()
