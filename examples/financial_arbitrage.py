"""Matching bid/ask streams across exchanges (Section 1's finance motif).

Arbitrage monitoring joins real-time offers from multiple exchanges: an
R-tuple is a bid at some price, an S-tuple an ask, and a join match is a
crossing opportunity.  Prices random-walk, so each exchange's recent
window occupies a narrow, slowly-moving price band -- the smooth-signal
regime where DFT summaries excel.

The example calibrates DFTT to the paper's 15% error operating point and
reports the cost there, then shows the error/cost trade-off curve.

Run:  python examples/financial_arbitrage.py
"""

from repro import (
    Algorithm,
    FlowSettings,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
    run_experiment,
)
from repro.experiments.calibrate import calibrate_budget


def build_config(budget: float) -> SystemConfig:
    return SystemConfig(
        num_nodes=6,
        window_size=384,
        policy=PolicyConfig(
            algorithm=Algorithm.DFTT,
            kappa=24,
            flow=FlowSettings(budget_override=budget),
        ),
        workload=WorkloadConfig(
            kind=WorkloadKind.FINANCIAL,
            total_tuples=7_000,
            domain=8_192,
            arrival_rate=250.0,
        ),
        seed=42,
    )


def main() -> None:
    print("Bid/ask matching across 6 simulated exchanges (FIN workload)\n")

    print("trade-off curve (flow budget T -> epsilon, msgs/arrival):")
    for budget in (0.5, 1.0, 2.0, 3.0, 4.0):
        result = run_experiment(build_config(budget))
        print(
            "  T=%.1f  epsilon=%.3f  msgs/arrival=%.2f  matches=%d"
            % (budget, result.epsilon, result.messages_per_arrival, result.reported_pairs)
        )

    print("\ncalibrating to the paper's epsilon = 15% operating point...")
    calibration = calibrate_budget(build_config, target_epsilon=0.15, max_probes=6)
    result = calibration.result
    print(
        "  calibrated budget T=%.2f after %d probes"
        % (calibration.budget, calibration.probes)
    )
    print(
        "  epsilon=%.3f  msgs/result=%.3f  throughput=%.0f matches/s"
        % (result.epsilon, result.messages_per_result_tuple, result.throughput)
    )


if __name__ == "__main__":
    main()
