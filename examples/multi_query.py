"""Several concurrent join queries on one shared deployment (Section 3).

A real stream-processing platform rarely serves a single query: here one
six-node system runs 1, 2, and 4 independent window joins at the same
total offered load, so queries contend for node service time and the
90 kbps sender budget.  The DFT summaries are per query (each query's
streams have their own statistics) but piggy-back on whatever tuple
traffic flows between a node pair, regardless of which query produced it.

Run:  python examples/multi_query.py
"""

from repro import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    run_experiment,
)


def build_config(num_queries: int) -> SystemConfig:
    return SystemConfig(
        num_nodes=6,
        window_size=192,
        num_queries=num_queries,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=12),
        workload=WorkloadConfig(
            total_tuples=6_000,
            domain=4_096,
            arrival_rate=300.0,
        ),
        seed=73,
    )


def main() -> None:
    print("queries  total eps  per-query eps            msgs/arrival  results/s")
    for num_queries in (1, 2, 4):
        result = run_experiment(build_config(num_queries))
        per_query = ", ".join(
            "%.2f" % entry["epsilon"] for entry in result.per_query
        )
        print(
            "%7d  %9.3f  %-23s  %12.2f  %9.1f"
            % (
                num_queries,
                result.epsilon,
                per_query,
                result.messages_per_arrival,
                result.throughput,
            )
        )
    print(
        "\nSplitting the same offered load over more queries shrinks each"
        "\nquery's windows' hit rate (fewer tuples per window per query)"
        "\nbut the platform keeps every query inside its error envelope."
    )


if __name__ == "__main__":
    main()
