"""Quickstart: an approximate distributed window join in ~20 lines.

Six nodes each hold a segment of two streams R and S.  The DFTT policy
exchanges compressed DFT coefficients, reconstructs approximations of the
remote windows, and forwards each arriving tuple only to the peers
estimated to hold matches.  Compare its cost and accuracy against the
exact broadcast baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    run_experiment,
)


def build_config(algorithm: Algorithm) -> SystemConfig:
    return SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(algorithm=algorithm, kappa=16),
        workload=WorkloadConfig(
            total_tuples=6_000,
            domain=4_096,
            arrival_rate=200.0,
        ),
        seed=7,
    )


def main() -> None:
    print("algorithm  epsilon  msgs/result  msgs/arrival  throughput/s")
    for algorithm in (Algorithm.BASE, Algorithm.DFTT):
        result = run_experiment(build_config(algorithm))
        print(
            "%-9s  %7.3f  %11.2f  %12.2f  %12.1f"
            % (
                algorithm.value,
                result.epsilon,
                result.messages_per_result_tuple,
                result.messages_per_arrival,
                result.throughput,
            )
        )
    print(
        "\nDFTT reports most of the exact result while transmitting a"
        "\nfraction of BASE's messages -- the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
