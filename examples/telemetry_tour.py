"""A full tour of the telemetry subsystem on one ZIPF/DFTT run.

One instrumented run produces all four export formats:

* ``events.jsonl``    -- the structured event log (manifest first line);
* ``trace.json``      -- a Chrome-trace / Perfetto-loadable timeline of
  per-node service spans and network instants;
* ``metrics.prom``    -- a Prometheus text dump of every counter, gauge,
  and histogram;
* ``timeseries.csv``  -- the sampled registry time series, flat rows;

plus ``manifest.json``, the standalone provenance record.  The script
also pokes at the in-memory views the exports are generated from: the
metric registry, the event ring, and the outcome-aware message trace.

Determinism: run this twice and diff the output directory -- every file
is byte-identical, because exports contain only simulated time and
seeded state.

Run:  python examples/telemetry_tour.py [output-dir]
"""

import sys
from pathlib import Path

from repro import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    TelemetrySettings,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem
from repro.telemetry import export_all, validate_chrome_trace


def build_config() -> SystemConfig:
    return SystemConfig(
        num_nodes=4,
        window_size=128,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=8),
        workload=WorkloadConfig(
            kind=WorkloadKind.ZIPF,
            total_tuples=3_000,
            domain=1_024,
            arrival_rate=200.0,
        ),
        telemetry=TelemetrySettings(enabled=True, sample_interval_s=1.0),
        seed=7,
    )


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("telemetry-tour-out")
    system = DistributedJoinSystem(build_config())
    result = system.run()
    hub = system.telemetry

    print("run: epsilon %.4f, %d reported pairs, %.1f simulated seconds" % (
        result.epsilon, result.reported_pairs, result.duration_seconds))
    print()

    # -- the in-memory views the exports are generated from ------------
    print("hub: %d events emitted (%s)" % (
        hub.events_emitted,
        ", ".join("%s=%d" % kv for kv in sorted(hub.counts_by_category().items())),
    ))
    print("registry: %d instruments, %d sampling ticks" % (
        len(hub.registry), hub.registry.samples_taken))
    tuples_sent = hub.registry.get("repro_net_messages_total", kind="tuple")
    if tuples_sent is not None:
        print("tuple messages on the wire: %d" % int(tuples_sent.value))
    trace = hub.message_trace
    print("message trace: %d records (%s)" % (
        len(trace),
        ", ".join("%s=%d" % kv for kv in sorted(trace.counts_by_outcome().items())),
    ))
    print()

    # -- all four export formats + the manifest ------------------------
    paths = export_all(hub, out_dir, manifest=result.manifest)
    for kind in sorted(paths):
        path = paths[kind]
        print("wrote %-12s %s (%d bytes)" % (kind, path, path.stat().st_size))

    # The Chrome trace passes the same schema gate CI runs.
    import json

    counts = validate_chrome_trace(json.loads(paths["chrome_trace"].read_text()))
    print()
    print("chrome trace validates: %s" % (
        ", ".join("%s=%d" % kv for kv in sorted(counts.items()))))
    print("load it at chrome://tracing or https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
