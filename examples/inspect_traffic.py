"""Looking inside a run: traffic matrices, tracing, learned geography.

The analysis helpers answer the questions an operator asks after a run:
who talks to whom, how even is the load, and what did each node actually
learn about its peers?  Message tracing shows the wire-level view.

Run:  python examples/inspect_traffic.py
"""

import numpy as np

from repro import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.analysis import (
    load_balance_report,
    message_matrix,
    similarity_matrix,
    top_talkers,
)
from repro.core.system import DistributedJoinSystem
from repro.net.trace import MessageTrace
from repro.streams.tuples import StreamId


def main() -> None:
    config = SystemConfig(
        num_nodes=5,
        window_size=256,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=16),
        workload=WorkloadConfig(total_tuples=5_000, domain=2_048, arrival_rate=250.0),
        seed=99,
    )
    system = DistributedJoinSystem(config)
    system.network.trace = MessageTrace(capacity=50_000)
    result = system.run()

    print("run: epsilon=%.3f, %d result pairs\n" % (result.epsilon, result.reported_pairs))

    print("message matrix (row = sender):")
    matrix = message_matrix(system.network)
    for row in matrix:
        print("   " + "  ".join("%5d" % cell for cell in row))

    print("\ntop talkers (source -> destination, messages, bytes):")
    for source, destination, messages, message_bytes in top_talkers(system.network, 3):
        print("   %d -> %d: %5d msgs  %7d bytes" % (source, destination, messages, message_bytes))

    print("\nlearned similarity matrix (node i's belief about peer j, R stream):")
    beliefs = similarity_matrix(system, StreamId.R)
    for row in beliefs:
        print("   " + "  ".join("%4.2f" % cell for cell in row))

    report = load_balance_report(result, metric="busy_seconds")
    print(
        "\nload balance (busy seconds): mean=%.2f max=%.2f Jain=%.3f"
        % (report.mean, report.maximum, report.jain_index)
    )

    trace = system.network.trace
    print("\nwire trace: %d messages recorded, by kind: %s" % (
        trace.total_recorded, dict(trace.counts_by_kind())))
    print("last three transmissions:")
    for record in trace.tail(3):
        print(
            "   t=%.3fs  %d -> %d  %-7s %3d bytes"
            % (record.time, record.source, record.destination, record.kind, record.size_bytes)
        )


if __name__ == "__main__":
    main()
