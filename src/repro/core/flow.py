"""Per-peer flow control (Section 5.2.2).

Node i forwards an arriving tuple to peer j with probability
``p_ij = w_i * rho_ij`` (Equation 4), where the weighting factor w_i is
chosen so the expected number of transmissions per tuple,
``T_i = sum_j p_ij``, meets a budget inside [1, log N] (Equation 9).

Because each p_ij saturates at 1, solving ``sum_j min(1, w * rho_ij) = T``
for w is a water-filling problem; the sum is continuous, piecewise linear
and non-decreasing in w, so bisection converges fast and deterministically.

The controller also implements the worst-case detector: under uniform data
every peer looks equally (dis)similar, the variance of the rho_ij
collapses, and no correlation-driven choice beats any other -- the node
then falls back to round-robin (Section 5.2.2's "heuristics based
method").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError


def waterfill_cutoff(scale: float) -> float:
    """Smallest similarity the water-filling solver treats as positive.

    Two regimes make a value numerically zero: vanishingly small relative
    to the best peer (saturating it would dominate the bisection range),
    and below the smallest *normal* float -- ``scale * 1e-12`` underflows
    to 0.0 against denormals, and the weight needed to saturate such a
    value (1/value) overflows, driving the solver to infinity.
    """
    return max(scale * 1e-12, 2.2250738585072014e-308)


@dataclass(frozen=True)
class FlowSettings:
    """Budget and detection knobs for one node's flow controller."""

    budget_fraction: float = 1.0
    """Interpolates the budget T_i between the O(1) bound (0.0) and the
    O(log N) bound (1.0): T = 1 + fraction * (log2(N) - 1)."""

    budget_override: float = 0.0
    """If positive, use this T_i directly (calibration searches set it)."""

    uniform_variance_threshold: float = 0.02
    """Var[rho_ij] below this flags the uniform worst case.  Calibrated
    against the Section 6 workloads: uniform data yields per-peer
    similarity variances below ~1e-2, geographically skewed data well
    above 5e-2."""

    minimum_similarity: float = 0.0
    """Floor applied to similarities before weighting (exploration mass)."""

    adaptive: bool = False
    """Resource-aware budgets (the abstract's "automatic throughput
    handling based on resource availability"): when the node's service
    queue backs up, the budget shrinks from its configured value toward
    the O(1) floor; when the queue drains it expands back.  The bounds
    [1, log N] of Equation 9 always hold."""

    congestion_low: float = 4.0
    """Queue depth at which the budget starts shrinking."""

    congestion_high: float = 32.0
    """Queue depth at (and beyond) which the budget sits at the O(1) floor."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ConfigurationError("budget_fraction must lie in [0, 1]")
        if self.budget_override < 0:
            raise ConfigurationError("budget_override must be non-negative")
        if self.uniform_variance_threshold < 0:
            raise ConfigurationError("variance threshold must be non-negative")
        if not 0.0 <= self.minimum_similarity <= 1.0:
            raise ConfigurationError("minimum_similarity must lie in [0, 1]")
        if self.congestion_low < 0 or self.congestion_high <= self.congestion_low:
            raise ConfigurationError(
                "congestion thresholds need 0 <= low < high"
            )

    def budget(self, num_nodes: int, congestion_scale: float = 1.0) -> float:
        """The transmission budget T_i for a system of ``num_nodes``.

        ``congestion_scale`` in [0, 1] interpolates the spend *above the
        O(1) floor*: 1 is the configured budget, 0 collapses to one
        transmission per tuple (resource-aware throttling).
        """
        if num_nodes < 2:
            raise ConfigurationError("flow control needs at least 2 nodes")
        if self.budget_override > 0:
            target = min(self.budget_override, float(num_nodes - 1))
        else:
            log_bound = max(1.0, math.log2(num_nodes))
            target = min(
                1.0 + self.budget_fraction * (log_bound - 1.0),
                float(num_nodes - 1),
            )
        scale = min(1.0, max(0.0, congestion_scale))
        if target <= 1.0:
            return target
        return 1.0 + scale * (target - 1.0)

    def congestion_scale(self, queue_depth: float) -> float:
        """Map a node's service-queue depth to the budget scale in [0, 1]."""
        if not self.adaptive:
            return 1.0
        if queue_depth <= self.congestion_low:
            return 1.0
        if queue_depth >= self.congestion_high:
            return 0.0
        return (self.congestion_high - queue_depth) / (
            self.congestion_high - self.congestion_low
        )


class FlowController:
    """Turns per-peer similarities into per-peer forwarding probabilities."""

    def __init__(self, num_nodes: int, settings: FlowSettings = FlowSettings()) -> None:
        if num_nodes < 2:
            raise ConfigurationError("flow control needs at least 2 nodes")
        self.num_nodes = num_nodes
        self.settings = settings
        self.last_weight = 0.0
        self.uniform_detections = 0
        self.congestion_scale = 1.0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub` (wired by the
        owning policy's ``attach_telemetry``)."""
        self.telemetry_node = None
        self._uniform_counter = None

    @property
    def budget(self) -> float:
        return self.settings.budget(self.num_nodes, self.congestion_scale)

    def observe_queue_depth(self, queue_depth: float) -> None:
        """Update the resource-aware budget scale from the service queue."""
        self.congestion_scale = self.settings.congestion_scale(queue_depth)

    def probabilities(self, similarities: Mapping[int, float]) -> Dict[int, float]:
        """Water-fill the budget over peers proportionally to similarity.

        Degenerate similarities (all ~zero) spread the budget uniformly --
        the tuple must still reach *somewhere* for any result to exist.
        """
        if not similarities:
            return {}
        floored = {
            peer: max(float(value), self.settings.minimum_similarity)
            for peer, value in similarities.items()
        }
        target = min(self.budget, float(len(floored)))
        scale = max(floored.values())
        if scale <= 0.0:
            uniform = target / len(floored)
            self.last_weight = 0.0
            return {peer: min(1.0, uniform) for peer in floored}
        # Similarities vanishingly small relative to the best peer are
        # numerically zero for water-filling (saturating them would need a
        # weight beyond float range).
        cutoff = waterfill_cutoff(scale)
        floored = {
            peer: (value if value >= cutoff else 0.0)
            for peer, value in floored.items()
        }
        if all(value == 0.0 for value in floored.values()):
            # Every peer was below the cutoff (all-denormal input): the
            # degenerate uniform spread, same as scale <= 0.
            uniform = target / len(floored)
            self.last_weight = 0.0
            return {peer: min(1.0, uniform) for peer in floored}
        weight = self._solve_weight(floored, target)
        self.last_weight = weight
        if math.isinf(weight):
            # Fewer positive-similarity peers than the budget: saturate them
            # all (inf * 0.0 would otherwise poison the zero-similarity
            # peers with NaN).
            return {peer: (1.0 if value > 0 else 0.0) for peer, value in floored.items()}
        return {peer: min(1.0, weight * value) for peer, value in floored.items()}

    @staticmethod
    def _solve_weight(similarities: Mapping[int, float], target: float) -> float:
        """Bisection on sum_j min(1, w * rho_j) = target."""
        values = [v for v in similarities.values() if v > 0]
        achieved = float(len(values))  # w -> infinity limit
        if achieved <= target:
            return math.inf
        low, high = 0.0, 1.0
        while sum(min(1.0, high * v) for v in values) < target:
            high *= 2.0
            if math.isinf(high):  # defensive: cannot happen past the
                return high  # achieved-limit check above
        for _ in range(64):
            mid = (low + high) / 2.0
            if sum(min(1.0, mid * v) for v in values) < target:
                low = mid
            else:
                high = mid
        return high

    def checkpoint_state(self) -> Dict[str, float]:
        """Snapshot the mutable controller state for repro.recovery."""
        return {
            "last_weight": self.last_weight,
            "uniform_detections": self.uniform_detections,
            "congestion_scale": self.congestion_scale,
        }

    def restore_state(self, state: Mapping[str, float]) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self.last_weight = float(state["last_weight"])
        self.uniform_detections = int(state["uniform_detections"])
        self.congestion_scale = float(state["congestion_scale"])

    def expected_transmissions(self, probabilities: Mapping[int, float]) -> float:
        """T_i implied by a probability assignment."""
        return float(sum(probabilities.values()))

    def is_uniform_worst_case(self, similarities: Mapping[int, float]) -> bool:
        """Detect Section 5.2.2's worst case: all peers equally similar.

        A very small variance in the per-peer similarities means the
        correlation signal carries no routing information; the caller
        should switch to a round-robin style fallback.
        """
        values = list(similarities.values())
        if len(values) < 2:
            return False
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        uniform = variance < self.settings.uniform_variance_threshold
        if uniform:
            self.uniform_detections += 1
            if self.telemetry is not None:
                # Detections fire per forwarding decision; a counter keeps
                # the cost at one increment instead of one event per tuple.
                if self._uniform_counter is None:
                    self._uniform_counter = self.telemetry.registry.counter(
                        "repro_flow_uniform_detections_total",
                        node=self.telemetry_node,
                    )
                self._uniform_counter.inc()
        return uniform
