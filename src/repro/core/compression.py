"""Compression-factor selection (Section 5.3, Equations 10-12).

The DFTT algorithm must pick a compression factor kappa: transmit
W/kappa coefficients and still reconstruct remote attribute values to
within +-0.5 so that integer round-off is lossless.  The paper's criterion
is ``E[MSE] < 0.25`` (Figure 6 draws the line; kappa = 256 is the knee for
the stock stream).

Two evaluation paths are provided and property-tested against each other:

* the *empirical* path reconstructs the signal and averages the squared
  errors (Equation 11 with the empirical distribution P);
* the *spectral* path uses Parseval -- the reconstruction residual is
  exactly the dropped coefficients, so
  ``MSE = sum_{dropped k} |X(k)|^2 / W^2``
  without ever inverting the transform (Equation 12 collapsed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.dft.reconstruction import (
    TruncationMode,
    coefficient_budget,
    compress_spectrum,
    reconstruction_squared_errors,
)
from repro.errors import SummaryError

LOSSLESS_MSE_THRESHOLD = 0.25
"""E[MSE] below this recovers integers exactly after round-off."""

DEFAULT_KAPPA_GRID = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
"""The compression factors swept by Figures 6 and 10(a)."""


def mse_for_budget(
    signal,
    budget: int,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> float:
    """Empirical mean squared reconstruction error for a coefficient budget."""
    return float(np.mean(reconstruction_squared_errors(signal, budget, mode)))


def spectral_mse_for_budget(
    signal,
    budget: int,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> float:
    """Parseval evaluation of the same MSE, straight from the spectrum.

    The residual signal ``x - x_hat`` has exactly the dropped coefficients
    as its spectrum (kept bins and their mirrors cancel), so its energy is
    ``sum_dropped |X(k)|^2 / W`` and the mean squared error divides by W
    once more.
    """
    values = np.asarray(signal, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise SummaryError("signal must be a non-empty 1-D array")
    spectrum = np.fft.fft(values)
    kept = compress_spectrum(spectrum, budget, mode)
    kept_bins = set(kept)
    for k in list(kept_bins):
        kept_bins.add((values.size - k) % values.size)
    mask = np.ones(values.size, dtype=bool)
    mask[list(kept_bins)] = False
    dropped_energy = float(np.sum(np.abs(spectrum[mask]) ** 2))
    return dropped_energy / values.size**2


@dataclass(frozen=True)
class CompressionSweepPoint:
    """One row of Figure 6: MSE statistics at a compression factor."""

    kappa: int
    budget: int
    mean_mse: float
    std_mse: float
    lossless_fraction: float

    @property
    def is_lossless(self) -> bool:
        """Whether this factor meets the paper's E[MSE] < 0.25 criterion."""
        return self.mean_mse < LOSSLESS_MSE_THRESHOLD


def mse_statistics(
    signal,
    kappas: Sequence[int] = DEFAULT_KAPPA_GRID,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> Tuple[CompressionSweepPoint, ...]:
    """Mean/std of per-position squared error across compression factors."""
    values = np.asarray(signal, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise SummaryError("signal must be a non-empty 1-D array")
    points = []
    for kappa in kappas:
        if kappa < 1:
            raise SummaryError("compression factors must be >= 1")
        budget = coefficient_budget(values.size, kappa)
        errors = reconstruction_squared_errors(values, budget, mode)
        points.append(
            CompressionSweepPoint(
                kappa=int(kappa),
                budget=budget,
                mean_mse=float(errors.mean()),
                std_mse=float(errors.std()),
                lossless_fraction=float(np.mean(errors < LOSSLESS_MSE_THRESHOLD)),
            )
        )
    return tuple(points)


def choose_compression_factor(
    signal,
    kappas: Sequence[int] = DEFAULT_KAPPA_GRID,
    threshold: float = LOSSLESS_MSE_THRESHOLD,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> int:
    """Largest compression factor whose mean MSE stays under ``threshold``.

    This is the tuning rule of Section 5.3: maximize compression subject to
    the lossless round-off criterion.  If even the smallest factor violates
    the threshold, that smallest factor is returned (best effort), matching
    the paper's "best-effort epsilon reduction" stance.
    """
    points = mse_statistics(signal, sorted(set(int(k) for k in kappas)), mode)
    feasible = [p.kappa for p in points if p.mean_mse < threshold]
    if feasible:
        return max(feasible)
    return min(p.kappa for p in points)
