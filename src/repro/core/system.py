"""The distributed join system: configuration in, :class:`RunResult` out.

:class:`DistributedJoinSystem` assembles the full stack -- simulated WAN,
nodes, policies with shared hash state, workload generator, geographic
partitioner, ground-truth oracle -- schedules every tuple arrival, runs
the event loop to completion (all queues drained), and aggregates the
metrics of Section 6.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.metrics.error import epsilon_error

from repro._rng import ensure_rng, spawn
from repro.config import SystemConfig, WorkloadConfig, WorkloadKind
from repro.core.node import JoinProcessingNode
from repro.core.policies import PolicyContext, make_policy, make_shared_state
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.join.ground_truth import GroundTruthOracle
from repro.metrics.accounting import ResultCollector, replay_accounting
from repro.net.faults import FaultInjector
from repro.net.reliable import ReliableTransport
from repro.net.simulator import EventScheduler
from repro.net.topology import Network
from repro.recovery.checkpoint import CheckpointStore
from repro.streams.financial import FinancialStreamConfig, financial_stream
from repro.streams.generators import uniform_stream, zipf_stream
from repro.streams.network import NetworkTraceConfig, network_trace_stream
from repro.streams.partitioner import GeographicPartitioner, PartitionerConfig
from repro.streams.tuples import StreamId, StreamTuple, reset_tuple_ids
from repro.telemetry import TelemetryHub, build_manifest


def build_key_stream(workload: WorkloadConfig, rng: np.random.Generator) -> Iterator[int]:
    """The joining-attribute generator for each Section 6 workload."""
    if workload.kind is WorkloadKind.UNIFORM:
        return uniform_stream(domain=workload.domain, rng=rng)
    if workload.kind is WorkloadKind.ZIPF:
        return zipf_stream(
            domain=workload.domain,
            alpha=workload.alpha,
            rng=rng,
            permute=workload.permute_zipf_ranks,
        )
    if workload.kind is WorkloadKind.FINANCIAL:
        config = FinancialStreamConfig(
            initial_price=max(1, workload.domain // 2),
            min_price=1,
            max_price=workload.domain,
            tick_std=max(2.0, workload.domain / 4096.0),
        )
        return financial_stream(config, rng=rng)
    if workload.kind is WorkloadKind.NETWORK:
        config = NetworkTraceConfig(
            domain=workload.domain,
            heavy_flows=min(256, max(8, workload.domain // 64)),
        )
        return network_trace_stream(config, rng=rng)
    if workload.kind is WorkloadKind.REPLAY:
        from repro.streams.replay import load_trace, replay_stream

        keys = load_trace(workload.trace_path)
        if int(keys.max()) > workload.domain:
            raise ConfigurationError(
                "trace keys reach %d, outside the configured domain %d"
                % (int(keys.max()), workload.domain)
            )
        return replay_stream(workload.trace_path)
    raise ConfigurationError("unknown workload kind %r" % workload.kind)


class DistributedJoinSystem:
    """End-to-end assembly and execution of one experiment run."""

    def __init__(self, config: SystemConfig, profiler=None, shards=None) -> None:
        config.validate()
        reset_tuple_ids()
        self.config = config
        self.profiler = profiler
        """Optional :class:`~repro.profiling.KernelProfiler`; threaded
        into every node's service loop and snapshot into the result."""
        from repro.engine import make_engine

        self.engine = make_engine(shards, config)
        """The :class:`~repro.engine.ExecutionEngine` driving :meth:`run`:
        the serial reference scheduler by default, the sharded
        multi-process engine when ``shards`` resolves to >= 2."""
        self._node_records = None
        """Per-node collection records (see
        :meth:`~repro.core.node.JoinProcessingNode.runtime_record`).
        ``None`` until collection; the sharded engine pre-fills it from
        worker fragments, the serial path builds it from live nodes."""
        self._home_filter: Optional[Callable[[int], bool]] = None
        """Sharded-worker node ownership test for the telemetry sampler;
        ``None`` (serial) samples everything."""
        root_rng = ensure_rng(config.seed)
        (
            self._workload_rng,
            self._partitioner_rng,
            self._network_rng,
            self._shared_rng,
            policy_parent_rng,
            self._schedule_rng,
        ) = spawn(root_rng, 6)
        # Extra generators are spawned only when their feature is on:
        # SeedSequence children are positional, so the six above stay
        # identical either way and a disabled feature causes zero drift.
        transport_rngs = (
            spawn(root_rng, config.num_nodes) if config.reliability.enabled else []
        )
        self.scheduler = EventScheduler()
        self.telemetry: Optional[TelemetryHub] = None
        self.dashboard = None
        if config.telemetry.enabled:
            self.telemetry = TelemetryHub(
                config.telemetry, clock=lambda: self.scheduler.now
            )
            self.scheduler.telemetry = self.telemetry
            self.telemetry.order_source = lambda: self.scheduler.current_key
            self.telemetry.add_sampler(self._sample_telemetry)
            if config.telemetry.dashboard:
                from repro.telemetry import AsciiDashboard

                self.dashboard = AsciiDashboard(self)
                self.telemetry.add_sampler(self.dashboard.on_sample)
        self.fault_injector: Optional[FaultInjector] = None
        if not config.faults.empty:
            self.fault_injector = FaultInjector(config.faults, config.num_nodes)
            self.fault_injector.install(self.scheduler)
        self.checkpoint_store: Optional[CheckpointStore] = None
        if config.recovery.enabled:
            self.checkpoint_store = CheckpointStore()
        self.network = Network(
            self.scheduler,
            spec=config.link,
            rng=self._network_rng,
            fault_injector=self.fault_injector,
        )
        # Keyed per-link RNG streams + entity-ranked arrival keys: a
        # link's randomness and event ordering become pure functions of
        # its endpoints, independent of first-use order (and therefore of
        # execution engine).
        self.network.prepare(config.num_nodes)
        if config.overload.enabled and config.overload.link_backlog_bound_s > 0.0:
            # Wired before any link exists, so every lazily-created link
            # picks the bound up; overload-off runs never touch it and
            # links keep the unbounded legacy backlog.
            self.network.link_backlog_bound_s = config.overload.link_backlog_bound_s
        if self.telemetry is not None:
            self.network.telemetry = self.telemetry
            # The registry-backed trace view: hub owns the ring, the
            # network feeds it (TrafficStats stays the always-on tally).
            self.network.trace = self.telemetry.message_trace
        self.oracles: List[GroundTruthOracle] = [
            GroundTruthOracle() for _ in range(config.num_queries)
        ]
        self.collectors: List[ResultCollector] = [
            ResultCollector() for _ in range(config.num_queries)
        ]
        self.partitioner = GeographicPartitioner(
            PartitionerConfig(
                num_nodes=config.num_nodes,
                domain=config.workload.domain,
                skew=config.workload.skew,
                spread=config.workload.spread,
            ),
            rng=self._partitioner_rng,
        )
        shared_rngs = spawn(self._shared_rng, config.num_queries)
        shared_states = [
            make_shared_state(config.policy, config.window_size, rng=shared_rngs[q])
            for q in range(config.num_queries)
        ]
        policy_rngs = spawn(policy_parent_rng, config.num_nodes * config.num_queries)
        self.nodes: List[JoinProcessingNode] = []
        all_ids = tuple(range(config.num_nodes))
        for node_id in all_ids:
            node: Optional[JoinProcessingNode] = None
            for query_id in range(config.num_queries):
                context = PolicyContext(
                    node_id=node_id,
                    peer_ids=tuple(p for p in all_ids if p != node_id),
                    window_size=config.window_size,
                    domain=config.workload.domain,
                    config=config.policy,
                    rng=policy_rngs[node_id * config.num_queries + query_id],
                )
                policy = make_policy(context, shared_states[query_id])
                if self.telemetry is not None:
                    policy.attach_telemetry(self.telemetry)
                if node is None:
                    transport = None
                    if config.reliability.enabled:
                        transport = ReliableTransport(
                            node_id=node_id,
                            scheduler=self.scheduler,
                            send_fn=self.network.send,
                            settings=config.reliability,
                            rng=transport_rngs[node_id],
                        )
                    node = JoinProcessingNode(
                        node_id=node_id,
                        config=config,
                        scheduler=self.scheduler,
                        network=self.network,
                        policy=policy,
                        oracle=self.oracles[query_id],
                        collector=self.collectors[query_id],
                        transport=transport,
                        fault_injector=self.fault_injector,
                        profiler=profiler,
                        telemetry=self.telemetry,
                        recovery=config.recovery,
                        checkpoint_store=self.checkpoint_store,
                    )
                else:
                    node.add_query(
                        query_id,
                        policy,
                        self.oracles[query_id],
                        self.collectors[query_id],
                    )
            self.network.register(node_id, node)
            self.nodes.append(node)
        self._tuples_scheduled = 0
        self._arrival_span = 0.0
        if self.checkpoint_store is not None:
            # A t=0 baseline checkpoint per node: a crash before the first
            # periodic tick must restore *something*, and an empty-state
            # snapshot is the honest something.
            for node in self.nodes:
                node.take_checkpoint()
            self._schedule_recovery_hooks()

    # Single-query conveniences (the common case and the test surface).

    @property
    def oracle(self) -> GroundTruthOracle:
        return self.oracles[0]

    @property
    def collector(self) -> ResultCollector:
        return self.collectors[0]

    # ------------------------------------------------------------------
    # workload scheduling
    # ------------------------------------------------------------------

    def disseminate_query(self) -> None:
        """Broadcast the join query to every node (Section 3).

        The paper's queries reach all nodes holding relevant stream
        segments before processing starts; one CONTROL message per peer
        models that handshake (and is what seeds the shared summary hash
        state conceptually -- the actual shared objects are built in the
        constructor).
        """
        from repro.net.message import Message, MessageKind

        origin = self.nodes[0]
        for destination in range(1, self.config.num_nodes):
            message = Message(
                kind=MessageKind.CONTROL,
                source=0,
                destination=destination,
                payload=(0, None, []),
            )
            if origin.transport is not None:
                origin.transport.send(message)
            else:
                self.network.send(message)

    def schedule_workload(self) -> None:
        """Create every arrival event up front (Poisson arrivals, fair
        R/S interleave, geographically-skewed node placement).

        With multiple queries, each query gets an independent key stream
        and its even share of the tuple count and arrival rate.
        """
        self.disseminate_query()
        workload = self.config.workload
        num_queries = self.config.num_queries
        workload_rngs = spawn(self._workload_rng, num_queries)
        schedule_rngs = spawn(self._schedule_rng, num_queries)
        base = workload.total_tuples // num_queries
        remainder = workload.total_tuples % num_queries
        per_query_rate = workload.arrival_rate / num_queries
        arrival_index = 0
        last_time = 0.0
        for query_id in range(num_queries):
            count = base + (1 if query_id < remainder else 0)
            if count == 0:
                continue
            keys = build_key_stream(workload, workload_rngs[query_id])
            gaps = schedule_rngs[query_id].exponential(
                1.0 / per_query_rate, size=count
            )
            times = np.cumsum(gaps)
            key_batch = list(itertools.islice(keys, count))
            nodes = self.partitioner.assign(key_batch)
            streams = schedule_rngs[query_id].random(count) < 0.5
            # Consecutive arrivals that collide on both timestamp and
            # origin node coalesce into one batch delivery, so the node
            # runs its vectorized kernels over the block.  Continuous
            # Poisson gaps essentially never collide (every such run is a
            # singleton and takes the exact scalar path), but quantized
            # replay traces and burst generators do.
            index = 0
            while index < count:
                when = float(times[index])
                origin = int(nodes[index])
                end = index + 1
                while (
                    end < count
                    and float(times[end]) == when
                    and int(nodes[end]) == origin
                ):
                    end += 1
                batch = []
                for position in range(index, end):
                    batch.append(
                        StreamTuple(
                            stream=StreamId.R if streams[position] else StreamId.S,
                            key=int(key_batch[position]),
                            origin_node=origin,
                            arrival_index=arrival_index,
                            query_id=query_id,
                        )
                    )
                    arrival_index += 1
                node = self.nodes[origin]
                if len(batch) == 1:
                    self.scheduler.schedule_at(
                        when,
                        lambda n=node, t=batch[0]: n.on_local_arrival(t),
                        home=origin,
                    )
                else:
                    self.scheduler.schedule_at(
                        when,
                        lambda n=node, b=tuple(batch): n.on_local_arrivals(b),
                        home=origin,
                    )
                index = end
            last_time = max(last_time, float(times[-1]))
        self._tuples_scheduled = workload.total_tuples
        self._arrival_span = last_time
        self._schedule_heartbeats()
        self._schedule_checkpoints()
        self._schedule_telemetry_sampling()

    def _schedule_recovery_hooks(self) -> None:
        """Schedule crash/restart edges for every restartable fault event.

        These run *after* the injector's own activate/deactivate edges at
        the same timestamps (the injector installed first, and ties break
        by insertion order), so at restart time ``node_down`` is already
        false when :meth:`~repro.core.node.JoinProcessingNode.on_restart`
        fires.
        """
        if self.fault_injector is None:
            return
        for event in self.config.faults.events:
            if not event.restartable:
                continue
            for target in sorted(set(event.nodes)):
                node = self.nodes[target]
                self.scheduler.schedule_at(
                    event.start_s, lambda n=node: n.on_crash(), home=target
                )
                self.scheduler.schedule_at(
                    event.end_s, lambda n=node: n.on_restart(), home=target
                )

    def _schedule_checkpoints(self) -> None:
        """Pre-schedule every checkpoint tick over the run's span.

        Same finite-event-set pattern as the heartbeats: a fixed tick
        series keeps the scheduler's run-to-drain termination intact.
        Nodes skip ticks while down or mid-recovery.
        """
        if self.checkpoint_store is None:
            return
        interval = self.config.recovery.checkpoint_interval_s
        count = int(self._arrival_span / interval) + 1
        for index in range(1, count + 1):
            when = index * interval
            for node in self.nodes:
                self.scheduler.schedule_at(
                    when, lambda n=node: n.take_checkpoint(), home=node.node_id
                )

    def _schedule_heartbeats(self) -> None:
        """Pre-schedule every heartbeat tick over the run's span.

        The ticks run from one interval past zero to one suspect-timeout
        past the last arrival (so peers that crashed near the end still
        get detected), and are *not* self-rescheduling -- a fixed, finite
        event set keeps the scheduler's run-to-drain termination intact.
        """
        settings = self.config.reliability
        if not settings.enabled:
            return
        horizon = self._arrival_span + settings.suspect_timeout_s
        tick = settings.heartbeat_interval_s
        count = int(horizon / tick) + 1
        for index in range(1, count + 1):
            when = index * tick
            for node in self.nodes:
                self.scheduler.schedule_at(
                    when, lambda n=node: n.send_heartbeats(), home=node.node_id
                )

    def _schedule_telemetry_sampling(self) -> None:
        """Pre-schedule every registry sampling tick over the run's span.

        Like the heartbeats, the tick set is fixed and finite (not
        self-rescheduling), so the scheduler's run-to-drain termination
        is preserved.  The horizon extends ``sample_margin_s`` past the
        last arrival to keep the drain tail visible.
        """
        if self.telemetry is None:
            return
        settings = self.config.telemetry
        horizon = self._arrival_span + settings.sample_margin_s
        interval = settings.sample_interval_s
        if settings.adaptive_sampling and settings.series_capacity > 2:
            # Scheduled ticks plus the end-of-run tick; only stretch when
            # the span genuinely overflows the rings, so short runs keep
            # their exact tick set.  The -2 headroom absorbs both the
            # final tick and int() truncation at the boundary.
            projected = int(horizon / interval) + 2
            if projected > settings.series_capacity:
                stretch = math.ceil(
                    horizon / (interval * (settings.series_capacity - 2))
                )
                interval = settings.sample_interval_s * max(1, stretch)
        count = int(horizon / interval) + 1
        for index in range(1, count + 1):
            self.scheduler.schedule_at(
                index * interval, self.telemetry.sample_tick, material=False
            )

    def _sample_telemetry(self, now: float, registry) -> None:
        """Read live system state into registry instruments (one tick).

        Pure reads: sampling must not consume RNG draws or mutate any
        component, so an instrumented run stays result-identical to a
        dark one.
        """
        registry.gauge("repro_sched_events_processed").set(
            self.scheduler.events_processed
        )
        registry.gauge("repro_sched_pending_events").set(
            self.scheduler.pending_accountable() + self.network.unshipped_count()
        )
        # Under sharding each worker samples only its home nodes and the
        # links they transmit on; every (instrument, label) key then lives
        # on exactly one shard and the merged series reproduce the serial
        # ones exactly (replicated construction-time link state would
        # otherwise be counted once per shard).
        for node in self.nodes:
            node_id = node.node_id
            if self._home_filter is not None and not self._home_filter(node_id):
                continue
            registry.gauge("repro_node_queue_depth", node=node_id).set(
                node.queue_depth
            )
            registry.gauge("repro_node_tuples_processed", node=node_id).set(
                node.tuples_processed
            )
            registry.gauge("repro_node_remote_tuples", node=node_id).set(
                node.remote_tuples_processed
            )
            registry.gauge("repro_node_busy_seconds", node=node_id).set(
                node.busy_seconds
            )
            if node.degradation_ladder is not None:
                # Overload-only series: registered lazily so a dark run's
                # registry (and its export) is byte-identical to pre-overload.
                registry.gauge("repro_node_shed_tuples", node=node_id).set(
                    node.shed_tuples
                )
        # TrafficStats stays the always-on accumulator; each tick
        # snapshots its cumulative counters into registry series.
        for name, labels, value in self.network.stats.iter_counters():
            registry.counter(name, **labels).value = value
        for (source, destination), link in self.network.iter_links():
            if self._home_filter is not None and not self._home_filter(source):
                continue
            registry.gauge(
                "repro_link_backlog_seconds", src=source, dst=destination
            ).set(link.queue_depth_seconds())

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute via the configured engine, then aggregate metrics."""
        if self.profiler is not None:
            with self.profiler.section("system.run"):
                self.engine.execute(self)
        else:
            self.engine.execute(self)
        return self._collect()

    def _runtime_records(self) -> List[Dict[str, object]]:
        """The per-node collection records, built once.

        The sharded engine pre-fills :attr:`_node_records` from worker
        fragments (ordered by node id, so float reductions sum in serial
        order); the serial path snapshots the live nodes on first use.
        """
        if self._node_records is None:
            self._node_records = [node.runtime_record() for node in self.nodes]
        return self._node_records

    def _replay_accounting(self) -> None:
        """Apply the nodes' deferred accounting ops to oracles/collectors.

        Nodes log (rather than apply) every oracle/collector mutation so
        the accuracy numbers are a pure function of per-node histories --
        see :func:`repro.metrics.accounting.replay_accounting`.  Replay is
        idempotent per run because each record's log is consumed once."""
        ops = []
        for record in self._runtime_records():
            ops.extend(record["accounting_ops"])
            record["accounting_ops"] = []
        replay_accounting(ops, self.oracles, self.collectors)

    def _collect(self) -> RunResult:
        if self.telemetry is not None:
            # One final tick so the series capture the drained end state.
            # (After a sharded run the workers already ticked at the
            # global end time, so this deduplicates to a no-op.)
            self.telemetry.sample_tick()
        records = self._runtime_records()
        self._replay_accounting()
        stats = self.network.stats
        merged_series: Dict[int, int] = {}
        for collector in self.collectors:
            for second, count in collector.throughput.series():
                merged_series[second] = merged_series.get(second, 0) + count
        series = sorted(merged_series.items())
        counts = sorted((count for _, count in series), reverse=True)
        keep = max(1, len(counts) // 2)
        sustained = sum(counts[:keep]) / keep if counts else 0.0
        per_query = [
            {
                "query_id": float(query_id),
                "truth_pairs": float(oracle.total_result_pairs),
                "reported_pairs": float(collector.reported_pairs),
                "epsilon": epsilon_error(
                    oracle.total_result_pairs, collector.reported_pairs
                ),
            }
            for query_id, (oracle, collector) in enumerate(
                zip(self.oracles, self.collectors)
            )
        ]
        from repro.metrics.latency import LatencyTracker

        merged_latency = LatencyTracker()
        for collector in self.collectors:
            merged_latency.merge(collector.latency)
        reliability: Dict[str, float] = {}
        if self.config.reliability.enabled:
            for record in records:
                for key, value in record["transport"].items():
                    reliability[key] = reliability.get(key, 0.0) + value
                for key, value in record["health"].items():
                    if key.endswith("_max_s"):
                        reliability[key] = max(reliability.get(key, 0.0), value)
                    elif key.endswith("_mean_s"):
                        # Averaged over nodes that measured any recoveries.
                        reliability.setdefault("_mean_samples", 0.0)
                        reliability["_mean_samples"] += 1.0
                        reliability[key] = reliability.get(key, 0.0) + value
                    else:
                        reliability[key] = reliability.get(key, 0.0) + value
                reliability["forced_broadcast_sends"] = (
                    reliability.get("forced_broadcast_sends", 0.0)
                    + record["forced_broadcast_sends"]
                )
                reliability["suppressed_sends"] = (
                    reliability.get("suppressed_sends", 0.0)
                    + record["suppressed_sends"]
                )
                reliability["resyncs"] = (
                    reliability.get("resyncs", 0.0) + record["resyncs"]
                )
            samples = reliability.pop("_mean_samples", 0.0)
            if samples and "recovery_latency_mean_s" in reliability:
                reliability["recovery_latency_mean_s"] /= samples
        faults: Dict[str, float] = {}
        if self.fault_injector is not None:
            faults = self.fault_injector.summary()
            faults["local_arrivals_dropped"] = float(
                sum(record["local_arrivals_dropped"] for record in records)
            )
        recovery: Dict[str, float] = {}
        if self.checkpoint_store is not None:
            # Store totals equal the per-node counter sums (every save
            # goes through node.take_checkpoint), and the records survive
            # a sharded run where the parent store never saved anything.
            recovery = {
                "checkpoints_taken": float(
                    sum(record["checkpoints_taken"] for record in records)
                ),
                "checkpoint_bytes": float(
                    sum(record["checkpoint_bytes"] for record in records)
                ),
            }
            for key in (
                "restarts",
                "tuples_logged",
                "tuples_replayed",
                "replay_dropped",
                "state_transfer_bytes",
                "state_transfer_delta_bytes",
                "state_transfer_full_bytes",
                "state_transfer_bytes_saved",
                "state_transfer_fallbacks",
            ):
                recovery[key] = float(sum(record[key] for record in records))
            rejoin_latencies: List[float] = []
            clean = degraded = 0
            for record in records:
                if record["rejoin_latencies"] is None:
                    continue
                rejoin_latencies.extend(record["rejoin_latencies"])
                for trigger in record["recovery_triggers"]:
                    if trigger == "synced":
                        clean += 1
                    elif trigger == "timeout":
                        degraded += 1
            recovery["rejoins_clean"] = float(clean)
            recovery["rejoins_degraded"] = float(degraded)
            if rejoin_latencies:
                recovery["rejoin_latency_mean_s"] = sum(rejoin_latencies) / len(
                    rejoin_latencies
                )
                recovery["rejoin_latency_max_s"] = max(rejoin_latencies)
            recovery["dead_letters"] = reliability.get("delivery_failures", 0.0)
        overload: Dict[str, float] = {}
        if self.config.overload.enabled:
            overload = {
                "shed_tuples": float(
                    sum(record["shed_tuples"] for record in records)
                ),
                "shed_messages": float(
                    sum(record["shed_messages"] for record in records)
                ),
                "suppressed_flushes": float(
                    sum(record["suppressed_flushes"] for record in records)
                ),
                "link_messages_shed": float(self.network.total_messages_shed()),
                "mode_transitions": float(
                    sum(record["overload_transitions"] or 0 for record in records)
                ),
                "throttled_seconds": 0.0,
                "shedding_seconds": 0.0,
            }
            for record in records:
                residency = record["overload_residency"]
                if residency:
                    overload["throttled_seconds"] += residency["throttled"]
                    overload["shedding_seconds"] += residency["shedding"]
        return RunResult(
            config=self.config.as_dict(),
            truth_pairs=sum(o.total_result_pairs for o in self.oracles),
            reported_pairs=sum(c.reported_pairs for c in self.collectors),
            duplicate_reports=sum(c.duplicates for c in self.collectors),
            spurious_reports=sum(c.spurious for c in self.collectors),
            tuples_arrived=sum(o.tuples_observed for o in self.oracles),
            duration_seconds=self.scheduler.material_now,
            arrival_span_seconds=self._arrival_span,
            traffic=stats.as_dict(),
            messages_by_kind=dict(stats.messages_by_kind),
            node_diagnostics={
                record["node_id"]: record["diagnostics"] for record in records
            },
            throughput_series=series,
            sustained_throughput=sustained,
            per_query=per_query,
            latency=merged_latency.snapshot(),
            reliability=reliability,
            faults=faults,
            recovery=recovery,
            overload=overload,
            profile=self.profiler.snapshot() if self.profiler is not None else {},
            manifest=build_manifest(self.config),
            telemetry=self.telemetry.summary() if self.telemetry is not None else {},
        )


def run_experiment(config: SystemConfig, profiler=None, shards=None) -> RunResult:
    """One-call convenience: build, run, and return the result."""
    return DistributedJoinSystem(config, profiler=profiler, shards=shards).run()
