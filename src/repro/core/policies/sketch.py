"""The SKCH baseline (Section 6, after Alon et al. [1]).

Each site sketches its window's attribute-frequency vector with an AGMS
sketch and snapshots the counters to every peer.  The estimated join size
between the local window of a tuple's stream and each peer's
opposite-stream window weights that peer's flow factor: "a tuple is more
likely to be transmitted to those nodes which produce the most join
results".

Sketches estimate *aggregate* join sizes only -- unlike Bloom filters or
DFT reconstruction they cannot test an individual tuple's membership,
which is exactly why the paper finds SKCH transmits more messages than
BLOOM and DFTT under skew.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import spawn
from repro.config import PolicyConfig
from repro.core.flow import FlowController
from repro.core.policies.base import ForwardingPolicy, PolicyContext
from repro.core.summaries import (
    RemoteSummaryTable,
    SnapshotSummaryManager,
    SummaryUpdate,
)
from repro.errors import ConfigurationError
from repro.sketches.agms import AgmsSketch, SketchShape
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape
from repro.streams.tuples import StreamId, StreamTuple

COUNTERS_PER_SUMMARY_ENTRY = 5
"""4-byte counters packed into one 20-byte summary entry."""

ALGORITHM = "skch"


def make_sketch_shared_state(
    config: PolicyConfig, window_size: int, rng: np.random.Generator
) -> Dict[str, object]:
    """Template sketches (one hash bank per stream) shared by all nodes.

    Total counters are sized to the common summary budget --
    ``W/kappa`` entries of 5 counters each -- with the paper's 5:1
    s0:s1 ratio (plain AGMS) or ``sketch_ratio`` rows (Fast-AGMS, when
    ``config.sketch_variant == "fast"``).
    """
    entries = config.summary_budget(window_size)
    total = max(config.sketch_ratio, entries * COUNTERS_PER_SUMMARY_ENTRY)
    # One hash bank for *everything*: R and S sketches must be mutually
    # comparable (the join-size inner product only makes sense when both
    # sides hash the key domain identically).
    if config.sketch_variant == "fast":
        fast_shape = FastSketchShape.from_total(total, rows=config.sketch_ratio)
        template = FastAgmsSketch(fast_shape, rng=spawn(rng, 1)[0])
        counters = fast_shape.total
    else:
        shape = SketchShape.from_total(total, ratio=config.sketch_ratio)
        template = AgmsSketch(shape, rng=spawn(rng, 1)[0])
        counters = shape.total
    templates = {StreamId.R: template, StreamId.S: template}
    return {
        "sketch_templates": templates,
        "sketch_entries": max(1, math.ceil(counters / COUNTERS_PER_SUMMARY_ENTRY)),
    }


class SketchPolicy(ForwardingPolicy):
    """AGMS join-size-weighted probabilistic forwarding."""

    name = "SKCH"

    def __init__(self, context: PolicyContext, shared: Dict[str, object]) -> None:
        super().__init__(context)
        templates = shared.get("sketch_templates")
        if templates is None:
            raise ConfigurationError(
                "SketchPolicy requires shared state from make_sketch_shared_state"
            )
        entries = int(shared["sketch_entries"])
        self.sketches: Dict[StreamId, AgmsSketch] = {
            stream: template.spawn_compatible()
            for stream, template in templates.items()
        }
        self.managers: Dict[StreamId, SnapshotSummaryManager] = {
            stream: SnapshotSummaryManager(
                algorithm=ALGORITHM,
                stream=stream,
                window_size=context.window_size,
                entries=entries,
                refresh_interval=context.config.summary_refresh_interval,
                outbox=self.outbox,
                snapshot_fn=lambda s=stream: self.sketches[s].snapshot_counters(),
            )
            for stream in (StreamId.R, StreamId.S)
        }
        self.remote = RemoteSummaryTable()
        self._remote_sketches: Dict[Tuple[int, StreamId], AgmsSketch] = {}
        self.flow = FlowController(context.num_nodes, context.config.flow)
        self._cached_probabilities: Dict[StreamId, Dict[int, float]] = {}
        self._arrivals_since_refresh = 0

    # ------------------------------------------------------------------
    # summary maintenance
    # ------------------------------------------------------------------

    def on_local_insert(
        self, item: StreamTuple, evicted: Sequence[StreamTuple]
    ) -> None:
        super().on_local_insert(item, evicted)
        sketch = self.sketches[item.stream]
        sketch.update(item.key, +1)
        for old in evicted:
            sketch.update(old.key, -1)
        self.managers[item.stream].tick()
        self._arrivals_since_refresh += 1
        if self._arrivals_since_refresh >= self.context.config.summary_refresh_interval:
            self._cached_probabilities.clear()
            self._arrivals_since_refresh = 0

    def on_local_insert_batch(
        self,
        items: Sequence[StreamTuple],
        evictions: Sequence[Sequence[StreamTuple]],
    ) -> None:
        """Vectorized insert: per-stream signed update blocks.

        Arrivals (+1) and their evictions (-1) are grouped per stream and
        applied through :meth:`~repro.sketches.agms.AgmsSketch.update_batch`,
        which nets duplicate keys before touching counters.  Counter state
        is bit-identical to the scalar loop (exact integer arithmetic);
        snapshot broadcasts keep their per-arrival cadence.
        """
        self.tuples_seen += len(items)
        per_stream: Dict[StreamId, Tuple[List[int], List[int]]] = {}
        for item, evicted in zip(items, evictions):
            keys, deltas = per_stream.setdefault(item.stream, ([], []))
            keys.append(item.key)
            deltas.append(+1)
            for old in evicted:
                keys.append(old.key)
                deltas.append(-1)
        for stream, (keys, deltas) in per_stream.items():
            self.sketches[stream].update_batch(keys, deltas)
        for item in items:
            self.managers[item.stream].tick()
        interval = self.context.config.summary_refresh_interval
        self._arrivals_since_refresh += len(items)
        if self._arrivals_since_refresh >= interval:
            self._cached_probabilities.clear()
            self._arrivals_since_refresh %= interval

    def on_evictions(self, stream: StreamId, evicted: Sequence[StreamTuple]) -> None:
        sketch = self.sketches[stream]
        if len(evicted) > 1:
            sketch.update_batch([old.key for old in evicted], [-1] * len(evicted))
            return
        for old in evicted:
            sketch.update(old.key, -1)

    def observe_congestion(self, queue_depth: int) -> None:
        previous = self.congestion_scale
        super().observe_congestion(queue_depth)
        if abs(self.congestion_scale - previous) > 0.1:
            self._cached_probabilities.clear()

    def on_remote_summary(self, source: int, update: SummaryUpdate) -> None:
        if update.algorithm != ALGORITHM:
            return
        if self.remote.apply(source, update):
            key = (source, update.stream)
            if key not in self._remote_sketches:
                self._remote_sketches[key] = self.sketches[update.stream].spawn_compatible()
            self._remote_sketches[key].load_counters(update.payload)
            self.remote.clear_dirty(source, update.stream)
            self._cached_probabilities.clear()

    def remote_sketch(self, peer: int, stream: StreamId) -> Optional[AgmsSketch]:
        return self._remote_sketches.get((peer, stream))

    def resync_peer(self, peer: int) -> None:
        """Queue fresh counter snapshots for a recovering peer."""
        for stream in (StreamId.R, StreamId.S):
            self.outbox.queue_for(peer, self.managers[stream].snapshot_update())

    # ------------------------------------------------------------------
    # join-size-weighted flow factors
    # ------------------------------------------------------------------

    def peer_similarities(self, stream: StreamId) -> Dict[int, float]:
        """Normalized estimated join sizes against each peer.

        The AGMS inner product estimates |local_window >< remote_window|;
        normalizing by the geometric mean of the two self-join sizes maps
        it into a [0, 1] correlation-like score comparable across peers.
        """
        local = self.sketches[stream]
        local_f2 = max(local.self_join_size_estimate(), 1e-9)
        similarities: Dict[int, float] = {}
        for peer in self.peer_ids:
            remote = self.remote_sketch(peer, stream.other)
            if remote is None:
                similarities[peer] = 0.5
                continue
            remote_f2 = max(remote.self_join_size_estimate(), 1e-9)
            estimate = local.join_size_estimate(remote)
            score = estimate / math.sqrt(local_f2 * remote_f2)
            similarities[peer] = float(np.clip(score, 0.0, 1.0))
        return similarities

    def peer_probabilities(self, stream: StreamId) -> Dict[int, float]:
        cached = self._cached_probabilities.get(stream)
        if cached is not None:
            return cached
        probabilities = self.flow.probabilities(self.peer_similarities(stream))
        self._cached_probabilities[stream] = probabilities
        return probabilities

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        return self._bernoulli_destinations(self.peer_probabilities(item.stream))

    def diagnostics(self) -> Dict[str, float]:
        counters = super().diagnostics()
        counters["sketch_broadcasts"] = float(
            sum(m.broadcasts for m in self.managers.values())
        )
        return counters

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, object]:
        state = super().checkpoint_state()
        state["sketches"] = {
            stream.value: self.sketches[stream].checkpoint_state()
            for stream in (StreamId.R, StreamId.S)
        }
        state["managers"] = {
            stream.value: self.managers[stream].checkpoint_state()
            for stream in (StreamId.R, StreamId.S)
        }
        state["flow"] = self.flow.checkpoint_state()
        state["arrivals_since_refresh"] = self._arrivals_since_refresh
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        for stream in (StreamId.R, StreamId.S):
            self.sketches[stream].restore_state(state["sketches"][stream.value])
            self.managers[stream].restore_state(state["managers"][stream.value])
        self.flow.restore_state(state["flow"])
        self._arrivals_since_refresh = int(state["arrivals_since_refresh"])
        # Peer sketches and derived probabilities are soft state.
        self.remote.clear()
        self._remote_sketches.clear()
        self._cached_probabilities.clear()
