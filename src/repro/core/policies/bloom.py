"""The BLOOM baseline (Section 6, after Broder & Mitzenmacher [5]).

Each site maintains a *counting* Bloom filter per stream over its window's
joining attributes (counting, so sliding-window evictions can decrement)
and periodically snapshots it to every peer.  An arriving tuple is tested
against each peer's opposite-stream filter: positive sites are forwarded
to directly (ranked by the min-counter multiplicity estimate, capped at
the flow budget), and the long-run hit rate per peer doubles as a
similarity signal for the probabilistic remainder of the budget --
"the flow factors are determined from the number of positive filter hits
that tuples generate".

All nodes must probe with identical hash functions, which
:func:`make_bloom_shared_state` provides (built once at query
dissemination time, like the paper's coordinated query setup).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import spawn
from repro.bloom.counting import CountingBloomFilter
from repro.config import PolicyConfig
from repro.core.flow import FlowController
from repro.core.policies.base import ForwardingPolicy, PolicyContext
from repro.core.summaries import (
    RemoteSummaryTable,
    SnapshotSummaryManager,
    SummaryUpdate,
)
from repro.errors import ConfigurationError
from repro.streams.tuples import StreamId, StreamTuple

COUNTERS_PER_SUMMARY_ENTRY = 40
"""4-bit counters packed into one 20-byte summary entry."""

ALGORITHM = "bloom"


def make_bloom_shared_state(
    config: PolicyConfig, window_size: int, rng: np.random.Generator
) -> Dict[str, object]:
    """Template filters (one per stream) every node spawns compatibly from.

    The filter is sized so its wire representation equals the DFT summary
    budget: ``W/kappa`` entries of 40 counters each.
    """
    entries = config.summary_budget(window_size)
    num_counters = entries * COUNTERS_PER_SUMMARY_ENTRY
    child_rngs = spawn(rng, 2)
    templates = {
        StreamId.R: CountingBloomFilter(
            num_counters, config.bloom_hashes, rng=child_rngs[0]
        ),
        StreamId.S: CountingBloomFilter(
            num_counters, config.bloom_hashes, rng=child_rngs[1]
        ),
    }
    return {"bloom_templates": templates, "bloom_entries": entries}


class BloomPolicy(ForwardingPolicy):
    """Counting-Bloom-filter membership forwarding."""

    name = "BLOOM"

    def __init__(self, context: PolicyContext, shared: Dict[str, object]) -> None:
        super().__init__(context)
        templates = shared.get("bloom_templates")
        if templates is None:
            raise ConfigurationError(
                "BloomPolicy requires shared state from make_bloom_shared_state"
            )
        entries = int(shared["bloom_entries"])
        self.filters: Dict[StreamId, CountingBloomFilter] = {
            stream: template.spawn_compatible()
            for stream, template in templates.items()
        }
        self.managers: Dict[StreamId, SnapshotSummaryManager] = {
            stream: SnapshotSummaryManager(
                algorithm=ALGORITHM,
                stream=stream,
                window_size=context.window_size,
                entries=entries,
                refresh_interval=context.config.summary_refresh_interval,
                outbox=self.outbox,
                snapshot_fn=self.filters[stream].snapshot,
            )
            for stream in (StreamId.R, StreamId.S)
        }
        self.remote = RemoteSummaryTable()
        self._remote_filters: Dict[Tuple[int, StreamId], CountingBloomFilter] = {}
        self.flow = FlowController(context.num_nodes, context.config.flow)
        # Exponentially-weighted per-peer hit rates, per local stream.
        self._hit_rates: Dict[StreamId, Dict[int, float]] = {
            StreamId.R: {peer: 0.5 for peer in context.peer_ids},
            StreamId.S: {peer: 0.5 for peer in context.peer_ids},
        }
        self._hit_rate_decay = 0.98

    # ------------------------------------------------------------------
    # summary maintenance
    # ------------------------------------------------------------------

    def on_local_insert(
        self, item: StreamTuple, evicted: Sequence[StreamTuple]
    ) -> None:
        super().on_local_insert(item, evicted)
        bloom = self.filters[item.stream]
        bloom.add(item.key)
        for old in evicted:
            bloom.remove(old.key)
        self.managers[item.stream].tick()

    def on_evictions(self, stream: StreamId, evicted: Sequence[StreamTuple]) -> None:
        bloom = self.filters[stream]
        for old in evicted:
            bloom.remove(old.key)

    def on_remote_summary(self, source: int, update: SummaryUpdate) -> None:
        if update.algorithm != ALGORITHM:
            return
        if self.remote.apply(source, update):
            key = (source, update.stream)
            if key not in self._remote_filters:
                self._remote_filters[key] = self.filters[update.stream].spawn_compatible()
            self._remote_filters[key].load_snapshot(update.payload)
            self.remote.clear_dirty(source, update.stream)

    def remote_filter(
        self, peer: int, stream: StreamId
    ) -> Optional[CountingBloomFilter]:
        return self._remote_filters.get((peer, stream))

    def resync_peer(self, peer: int) -> None:
        """Queue fresh filter snapshots for a recovering peer (snapshots
        already replace remote state wholesale, so recovery is just an
        out-of-cadence refresh aimed at one peer)."""
        for stream in (StreamId.R, StreamId.S):
            self.outbox.queue_for(peer, self.managers[stream].snapshot_update())

    # ------------------------------------------------------------------
    # forwarding decision
    # ------------------------------------------------------------------

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        opposite = item.stream.other
        hits: Dict[int, int] = {}
        unknown: List[int] = []
        for peer in self.peer_ids:
            remote = self.remote_filter(peer, opposite)
            if remote is None:
                unknown.append(peer)
                continue
            hit = item.key in remote
            rates = self._hit_rates[item.stream]
            rates[peer] = self._hit_rate_decay * rates[peer] + (
                1.0 - self._hit_rate_decay
            ) * (1.0 if hit else 0.0)
            if hit:
                hits[peer] = remote.count_estimate(item.key)

        budget = self.flow.budget
        rng = self.context.rng
        if hits:
            ranked = sorted(hits, key=lambda p: (-hits[p], p))
            capacity = max(1, int(round(budget)))
            destinations = ranked[:capacity]
            remaining = [p for p in self.peer_ids if p not in destinations]
            if remaining and rng.random() < self.context.config.explore_probability:
                destinations.append(remaining[int(rng.integers(0, len(remaining)))])
            return destinations

        if unknown:
            self.fallback_decisions += 1
            probabilities = self.flow.probabilities(
                {peer: 0.5 for peer in self.peer_ids}
            )
            return self._bernoulli_destinations(probabilities)

        # All filters answered "absent".  Counting Bloom filters have no
        # false negatives, so unlike DFTT's soft miss this is a hard one --
        # but the snapshot may be stale, so keep a thin exploration flow
        # driven by the learned hit rates.
        probabilities = self.flow.probabilities(self._hit_rates[item.stream])
        reduced = {
            peer: probability * self.context.config.explore_probability
            for peer, probability in probabilities.items()
        }
        return self._bernoulli_destinations(reduced)

    def diagnostics(self) -> Dict[str, float]:
        counters = super().diagnostics()
        counters["bloom_broadcasts"] = float(
            sum(m.broadcasts for m in self.managers.values())
        )
        counters["bloom_fill_r"] = self.filters[StreamId.R].fill_ratio()
        counters["bloom_fill_s"] = self.filters[StreamId.S].fill_ratio()
        return counters

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, object]:
        state = super().checkpoint_state()
        state["filters"] = {
            stream.value: self.filters[stream].checkpoint_state()
            for stream in (StreamId.R, StreamId.S)
        }
        state["managers"] = {
            stream.value: self.managers[stream].checkpoint_state()
            for stream in (StreamId.R, StreamId.S)
        }
        state["flow"] = self.flow.checkpoint_state()
        state["hit_rates"] = {
            stream.value: {
                str(peer): self._hit_rates[stream][peer]
                for peer in self.peer_ids
            }
            for stream in (StreamId.R, StreamId.S)
        }
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        for stream in (StreamId.R, StreamId.S):
            self.filters[stream].restore_state(state["filters"][stream.value])
            self.managers[stream].restore_state(state["managers"][stream.value])
            self._hit_rates[stream] = {
                peer: float(state["hit_rates"][stream.value][str(peer)])
                for peer in self.peer_ids
            }
        self.flow.restore_state(state["flow"])
        # Peer filters died with the process; resync snapshots refill them.
        self.remote.clear()
        self._remote_filters.clear()
