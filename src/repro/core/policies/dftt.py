"""The DFTT policy (Section 5.3): DFT flow filtering + tuple reconstruction.

DFTT keeps everything the DFT policy does and adds Figure 7's lines 6-8:
from each peer's received coefficients it reconstructs an *approximation
of the remote window's attribute values* (inverse DFT, Equation 10).
``JoinEstimate`` then answers, per arriving tuple, how many matches each
peer's opposite-stream window is estimated to hold, and the tuple is
forwarded to the peers with the largest positive estimates --
deterministically, up to the flow budget.

Reconstruction error handling.  On smooth signals (the paper's stock
stream) the round-off is lossless and estimates are exact memberships.
On rougher signals the per-value error grows, so a fixed +-0.5 match rule
would estimate zero everywhere.  DFTT therefore *self-calibrates*: each
node reconstructs its own window from its own truncated coefficients --
exactly what a remote peer would see -- measures the empirical absolute
reconstruction error, and uses a high percentile of it as the match
tolerance for remote estimates.  A tuple matches a reconstructed value
when they differ by at most that tolerance (never less than the paper's
0.5 round-off radius).  The tolerance collapses to 0.5 on stock-like data
(recovering exact membership testing) and widens gracefully on noisy
data, where it still discriminates peers by attribute *range* -- the
geographic-skew structure the paper exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.policies.base import PolicyContext
from repro.core.policies.dft import DftPolicy
from repro.core.summaries import SummaryUpdate
from repro.dft.reconstruction import reconstruct_values
from repro.streams.tuples import StreamId, StreamTuple

TOLERANCE_PERCENTILE = 90.0
"""Percentile of the self-measured reconstruction error used as the match
tolerance (conservative: most true matches fall within it)."""

MIN_TOLERANCE = 0.5
"""The paper's integer round-off radius; never match tighter than this."""

RELATIVE_ESTIMATE_THRESHOLD = 0.3
"""Peers whose estimate falls below this fraction of the best peer's are
treated as reconstruction background noise and pruned.  The budget is a
ceiling, not a quota: when one peer clearly holds the matches, DFTT sends
one message."""


class DfttPolicy(DftPolicy):
    """DFT policy augmented with remote-window reconstruction."""

    name = "DFTT"

    def __init__(self, context: PolicyContext) -> None:
        super().__init__(context)
        self._reconstructions: Dict[Tuple[int, StreamId], np.ndarray] = {}
        self._tolerances: Dict[StreamId, float] = {}
        self.reconstruction_refreshes = 0
        self.estimate_hits = 0
        self.estimate_misses = 0

    # ------------------------------------------------------------------
    # self-calibrated match tolerance
    # ------------------------------------------------------------------

    def match_tolerance(self, stream: StreamId) -> float:
        """Tolerance for matching keys against reconstructed ``stream`` values.

        Measured on the node's own window: reconstruct it from the same
        truncated coefficients a peer would receive and take a high
        percentile of the absolute error.  Cached until summaries refresh.
        """
        cached = self._tolerances.get(stream)
        if cached is not None:
            return cached
        manager = self.managers[stream]
        actual = manager.dft.buffer_values()
        if actual.size == 0:
            return MIN_TOLERANCE
        estimate = reconstruct_values(
            manager.local_coefficients(),
            self.context.window_size,
            round_to_int=False,
        )[: actual.size]
        errors = np.abs(actual - estimate)
        tolerance = max(MIN_TOLERANCE, float(np.percentile(errors, TOLERANCE_PERCENTILE)))
        self._tolerances[stream] = tolerance
        return tolerance

    def _invalidate_probabilities(self) -> None:
        super()._invalidate_probabilities()
        self._tolerances.clear()

    # ------------------------------------------------------------------
    # reconstruction table (Figure 7's inverse-DFT lookup table)
    # ------------------------------------------------------------------

    def reconstructed_window(
        self, peer: int, stream: StreamId
    ) -> Optional[np.ndarray]:
        """Estimated (sorted) attribute values of ``peer``'s ``stream`` window.

        Rebuilt lazily whenever that peer's coefficients changed since the
        last reconstruction (the dirty bit on the remote table).
        """
        coefficient_map = self.remote.get(peer, stream)
        if coefficient_map is None:
            return None
        key = (peer, stream)
        if key not in self._reconstructions or self.remote.is_dirty(peer, stream):
            values = reconstruct_values(
                coefficient_map, self.context.window_size, round_to_int=False
            )
            self._reconstructions[key] = np.sort(values)
            self.remote.clear_dirty(peer, stream)
            self.reconstruction_refreshes += 1
        return self._reconstructions[key]

    def join_estimate(self, item: StreamTuple, peer: int) -> Optional[int]:
        """Estimated matches of ``item`` in ``peer``'s opposite window.

        ``None`` means the peer's summary has not arrived yet (unknown,
        which is different from an estimated zero).
        """
        opposite = item.stream.other
        window = self.reconstructed_window(peer, opposite)
        if window is None:
            return None
        tolerance = self.match_tolerance(opposite)
        low = np.searchsorted(window, item.key - tolerance, side="left")
        high = np.searchsorted(window, item.key + tolerance, side="right")
        return int(high - low)

    # ------------------------------------------------------------------
    # forwarding decision (Figure 7, lines 6-10)
    # ------------------------------------------------------------------

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        probabilities = self.peer_probabilities(item.stream)
        if self.worst_case_mode:
            self.fallback_decisions += 1
            budget = self.context.config.flow.budget(
                self.context.num_nodes, self.congestion_scale
            )
            return self._round_robin.take_from_cycle(budget)

        estimates: Dict[int, int] = {}
        unknown: List[int] = []
        for peer in self.peer_ids:
            estimate = self.join_estimate(item, peer)
            if estimate is None:
                unknown.append(peer)
            elif estimate > 0:
                estimates[peer] = estimate

        budget = self.flow.budget
        rng = self.context.rng
        if estimates:
            self.estimate_hits += 1
            ranked = sorted(estimates, key=lambda p: (-estimates[p], p))
            capacity = max(1, int(round(budget)))
            # Spend only as much of the budget as the estimated matches
            # require: peers whose estimate is small relative to the best
            # peer's are reconstruction noise, not result mass.  This is
            # DFTT's headline saving -- knowing *where* the joins are lets
            # it underspend T_i.
            cutoff = RELATIVE_ESTIMATE_THRESHOLD * estimates[ranked[0]]
            destinations: List[int] = [
                peer for peer in ranked[:capacity] if estimates[peer] >= cutoff
            ]
            remaining = [
                peer
                for peer in self.peer_ids
                if peer not in destinations
            ]
            if remaining and rng.random() < self.context.config.explore_probability:
                destinations.append(
                    remaining[int(rng.integers(0, len(remaining)))]
                )
            return destinations

        self.estimate_misses += 1
        if unknown:
            # No evidence yet about some peers: behave like plain DFT so
            # the system bootstraps before summaries have circulated.
            return self._bernoulli_destinations(probabilities)
        # Every peer is estimated to hold zero matches.  The reconstruction
        # is approximate, so spend a *reduced* probabilistic budget rather
        # than going silent -- this is DFTT's message saving in action.
        reduced = {
            peer: probability * self.context.config.explore_probability
            for peer, probability in probabilities.items()
        }
        return self._bernoulli_destinations(reduced)

    def diagnostics(self) -> Dict[str, float]:
        counters = super().diagnostics()
        counters["reconstruction_refreshes"] = float(self.reconstruction_refreshes)
        counters["estimate_hits"] = float(self.estimate_hits)
        counters["estimate_misses"] = float(self.estimate_misses)
        return counters

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, object]:
        state = super().checkpoint_state()
        state["reconstruction_refreshes"] = self.reconstruction_refreshes
        state["estimate_hits"] = self.estimate_hits
        state["estimate_misses"] = self.estimate_misses
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        self.reconstruction_refreshes = int(state["reconstruction_refreshes"])
        self.estimate_hits = int(state["estimate_hits"])
        self.estimate_misses = int(state["estimate_misses"])
        # Reconstructions and tolerances derive from the remote table the
        # superclass just cleared; they rebuild lazily after the resync.
        self._reconstructions.clear()
        self._tolerances.clear()
