"""Forwarding policies: who gets which tuple.

Each policy answers one question per locally-arriving tuple -- *which of
the N-1 peers should receive a copy?* -- and maintains whatever summary
state (DFT coefficients, Bloom filters, sketches) that answer needs.

Use :func:`make_policy` (or :func:`make_shared_state` +
:func:`make_policy` for multi-node systems, so nodes share hash
functions) to construct them from a :class:`repro.config.PolicyConfig`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._rng import ensure_rng
from repro.config import Algorithm, PolicyConfig
from repro.core.policies.base import (
    BroadcastPolicy,
    ForwardingPolicy,
    PolicyContext,
)
from repro.core.policies.bloom import BloomPolicy, make_bloom_shared_state
from repro.core.policies.dft import DftPolicy
from repro.core.policies.dftt import DfttPolicy
from repro.core.policies.round_robin import RoundRobinPolicy
from repro.core.policies.sketch import SketchPolicy, make_sketch_shared_state
from repro.errors import ConfigurationError

__all__ = [
    "ForwardingPolicy",
    "PolicyContext",
    "BroadcastPolicy",
    "RoundRobinPolicy",
    "DftPolicy",
    "DfttPolicy",
    "BloomPolicy",
    "SketchPolicy",
    "make_policy",
    "make_shared_state",
]


def make_shared_state(
    config: PolicyConfig, window_size: int, rng=None
) -> Dict[str, object]:
    """State every node must agree on before the query starts.

    Summary comparison across nodes requires identical hash functions
    (Bloom probes, sketch sign hashes); in the paper this happens when the
    join query is disseminated.  DFT policies need no shared state -- the
    transform is canonical.
    """
    generator = ensure_rng(rng)
    if config.algorithm is Algorithm.BLOOM:
        return make_bloom_shared_state(config, window_size, generator)
    if config.algorithm is Algorithm.SKCH:
        return make_sketch_shared_state(config, window_size, generator)
    return {}


def make_policy(
    context: PolicyContext, shared: Optional[Dict[str, object]] = None
) -> ForwardingPolicy:
    """Instantiate the policy selected by ``context.config.algorithm``."""
    shared = shared or {}
    algorithm = context.config.algorithm
    if algorithm is Algorithm.BASE:
        return BroadcastPolicy(context)
    if algorithm is Algorithm.ROUND_ROBIN:
        return RoundRobinPolicy(context)
    if algorithm is Algorithm.DFT:
        return DftPolicy(context)
    if algorithm is Algorithm.DFTT:
        return DfttPolicy(context)
    if algorithm is Algorithm.BLOOM:
        return BloomPolicy(context, shared)
    if algorithm is Algorithm.SKCH:
        return SketchPolicy(context, shared)
    raise ConfigurationError("unknown algorithm %r" % algorithm)
