"""Round-robin forwarding.

The paper's fallback for the uniform worst case (Section 5.2.2): when the
correlation signal carries no information, spread tuples evenly.  Each
tuple goes to the next ``floor(T)`` peers in cyclic order, plus one more
with probability ``frac(T)``, so the *expected* message complexity equals
the budget T exactly.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.policies.base import ForwardingPolicy, PolicyContext
from repro.streams.tuples import StreamTuple


class RoundRobinPolicy(ForwardingPolicy):
    """Budgeted cyclic tuple distribution."""

    name = "RR"

    def __init__(self, context: PolicyContext) -> None:
        super().__init__(context)
        self._cursor = 0

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        budget = self.context.config.flow.budget(
            self.context.num_nodes, self.congestion_scale
        )
        return self.take_from_cycle(budget)

    def checkpoint_state(self) -> dict:
        state = super().checkpoint_state()
        state["cursor"] = self._cursor
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._cursor = int(state["cursor"])

    def take_from_cycle(self, budget: float) -> List[int]:
        """Next ``budget`` peers in cyclic order (shared with fallbacks)."""
        peers = self.peer_ids
        if not peers:
            return []
        whole = min(int(math.floor(budget)), len(peers))
        fraction = budget - math.floor(budget)
        count = whole
        if count < len(peers) and fraction > 0:
            if self.context.rng.random() < fraction:
                count += 1
        destinations = []
        for offset in range(count):
            destinations.append(peers[(self._cursor + offset) % len(peers)])
        self._cursor = (self._cursor + count) % len(peers)
        return destinations
