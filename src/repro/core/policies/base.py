"""Policy interface and the BASE (broadcast) comparator.

A policy lives inside one node.  The node runtime calls, in order, for
each locally-arriving tuple:

1. :meth:`ForwardingPolicy.on_local_insert` -- the tuple entered the local
   window (with the eviction it caused); summaries update here.
2. :meth:`ForwardingPolicy.choose_destinations` -- which peers get a copy.

Incoming summary updates (piggy-backed or standalone) are delivered via
:meth:`ForwardingPolicy.on_remote_summary`.  Pending outgoing summaries
live in the policy's :class:`~repro.core.summaries.SummaryOutbox`; the
node drains it when transmitting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._rng import ensure_rng
from repro.config import PolicyConfig
from repro.core.summaries import SummaryOutbox, SummaryUpdate
from repro.errors import ConfigurationError
from repro.streams.tuples import StreamId, StreamTuple


@dataclass
class PolicyContext:
    """Everything a policy may know about its place in the system."""

    node_id: int
    peer_ids: Tuple[int, ...]
    window_size: int
    domain: int
    config: PolicyConfig
    rng: np.random.Generator = field(default_factory=lambda: ensure_rng(0))

    def __post_init__(self) -> None:
        if self.node_id in self.peer_ids:
            raise ConfigurationError("a node is not its own peer")
        if len(set(self.peer_ids)) != len(self.peer_ids):
            raise ConfigurationError("duplicate peer ids")
        self.config.validate()

    @property
    def num_nodes(self) -> int:
        return len(self.peer_ids) + 1


class ForwardingPolicy(abc.ABC):
    """Per-node forwarding strategy."""

    name: str = "abstract"

    def __init__(self, context: PolicyContext) -> None:
        self.context = context
        self.outbox = SummaryOutbox(context.peer_ids)
        self.tuples_seen = 0
        self.fallback_decisions = 0
        self.congestion_scale = 1.0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub` (see
        :meth:`attach_telemetry`)."""

    def attach_telemetry(self, hub) -> None:
        """Wire a telemetry hub through the policy and its components.

        Summary managers and the flow controller (when the policy has
        them -- DFTT/BLOOM/SKETCH do, BASE and round-robin do not) get
        the hub and the owning node id, so their emissions carry the
        right node label without each component knowing its host.
        """
        node = self.context.node_id
        self.telemetry = hub
        for manager in getattr(self, "managers", {}).values():
            manager.telemetry = hub
            manager.telemetry_node = node
        controller = getattr(self, "flow", None)
        if controller is not None:
            controller.telemetry = hub
            controller.telemetry_node = node

    @property
    def node_id(self) -> int:
        return self.context.node_id

    @property
    def peer_ids(self) -> Tuple[int, ...]:
        return self.context.peer_ids

    def on_local_insert(
        self, item: StreamTuple, evicted: Sequence[StreamTuple]
    ) -> None:
        """A tuple entered the local window (default: nothing to maintain)."""
        self.tuples_seen += 1

    def on_local_insert_batch(
        self,
        items: Sequence[StreamTuple],
        evictions: Sequence[Sequence[StreamTuple]],
    ) -> None:
        """A coalesced block of same-timestamp tuples entered the window.

        ``evictions[i]`` holds the tuples evicted by ``items[i]``.  The
        default simply replays the scalar hook; summary-bearing policies
        override this to run their kernels vectorized (batched sketch
        updates, block DFT maintenance).  Must be equivalent to the
        scalar loop in everything except intra-batch cache-invalidation
        timing, which is unobservable until the next decision point.
        """
        for item, evicted in zip(items, evictions):
            self.on_local_insert(item, evicted)

    def observe_congestion(self, queue_depth: int) -> None:
        """The node reports its service-queue depth before each decision.

        With adaptive flow settings this throttles the budget toward the
        O(1) floor under backlog ("automatic throughput handling based on
        resource availability").  Policies without a flow controller
        (BASE) ignore it; round-robin applies the scale directly.
        """
        self.congestion_scale = self.context.config.flow.congestion_scale(queue_depth)
        controller = getattr(self, "flow", None)
        if controller is not None:
            controller.observe_queue_depth(queue_depth)

    def reset_congestion(self) -> None:
        """Forget every queue-depth observation (crash soft-state wipe).

        A restarting process boots with an empty service queue; carrying
        the pre-crash congestion scale forward would throttle its first
        post-restore decisions against a backlog that no longer exists.
        """
        self.congestion_scale = 1.0
        controller = getattr(self, "flow", None)
        if controller is not None:
            controller.congestion_scale = 1.0

    def set_refresh_stretch(self, stretch: int) -> None:
        """Stretch (or restore) the summary refresh cadence.

        Called by the overload ladder on mode transitions: while a node
        is THROTTLED or SHEDDING its summaries recompute and broadcast
        ``stretch`` times less often.  Policies without summary managers
        (BASE, round-robin) have nothing to stretch.
        """
        for manager in getattr(self, "managers", {}).values():
            manager.cadence_stretch = stretch

    def on_evictions(self, stream: StreamId, evicted: Sequence[StreamTuple]) -> None:
        """Tuples expired between arrivals (time windows only).

        Count-window evictions arrive through :meth:`on_local_insert`;
        policies whose summaries support deletion (Bloom, sketches)
        override this to stay consistent.  The DFT summaries cover the
        most recent ``window_size`` tuples by construction and need no
        action here.
        """

    @abc.abstractmethod
    def choose_destinations(self, item: StreamTuple) -> List[int]:
        """Peers that should receive a copy of ``item``."""

    def on_remote_summary(self, source: int, update: SummaryUpdate) -> None:
        """A peer's summary update arrived (default: ignored)."""

    def resync_peer(self, peer: int) -> None:
        """Queue a full-state summary for a peer recovering from a fault.

        Policies that disseminate summaries override this; BASE and
        round-robin keep no remote state, so recovery needs nothing.
        """

    def diagnostics(self) -> Dict[str, float]:
        """Policy-specific counters for result reporting."""
        return {
            "tuples_seen": float(self.tuples_seen),
            "fallback_decisions": float(self.fallback_decisions),
        }

    def checkpoint_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of the policy's durable state.

        Subclasses extend the returned dictionary with their summaries
        and learned state.  Soft state (remote summary tables, caches,
        pending outbox updates) is deliberately excluded: it is rebuilt
        by the recovery resync and the normal broadcast cadence, so
        ``restore_state`` drops it.  The invariant the property tests pin
        is ``checkpoint(restore(checkpoint(p))) == checkpoint(p)``.
        """
        return {
            "name": self.name,
            "tuples_seen": self.tuples_seen,
            "fallback_decisions": self.fallback_decisions,
            "congestion_scale": self.congestion_scale,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`checkpoint_state`; clears soft state."""
        if state.get("name") != self.name:
            raise ConfigurationError(
                "checkpoint is for policy %r, not %r" % (state.get("name"), self.name)
            )
        self.tuples_seen = int(state["tuples_seen"])
        self.fallback_decisions = int(state["fallback_decisions"])
        self.congestion_scale = float(state["congestion_scale"])
        self.outbox.clear()

    def _bernoulli_destinations(
        self, probabilities: Dict[int, float]
    ) -> List[int]:
        """Independent coin per peer -- the paper's probabilistic transmit."""
        rng = self.context.rng
        return [
            peer
            for peer, probability in probabilities.items()
            if probability > 0 and rng.random() < probability
        ]


class BroadcastPolicy(ForwardingPolicy):
    """BASE: every tuple to every peer -- exact results, (N-1) messages."""

    name = "BASE"

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        return list(self.peer_ids)
