"""The DFT policy (Section 5.2): flow filtering from spectral similarity.

Per stream, the node runs an incremental DFT over its window's joining
attributes and broadcasts coefficient deltas.  For a tuple of stream R
arriving at node i, the relevant similarity is between node i's *R* signal
and each peer j's *S* signal (that is where the tuple would join), and
symmetrically for S tuples.  Similarities feed the
:class:`~repro.core.flow.FlowController`, which water-fills the
T_i in [1, log N] budget into per-peer probabilities; the tuple is then
forwarded with an independent coin per peer (Figure 2).

When the controller detects the uniform worst case (negligible variance
across peers), the policy falls back to budgeted round-robin, as
Section 5.2.2 prescribes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.correlation import SimilarityMeasure, similarity
from repro.core.flow import FlowController
from repro.core.policies.base import ForwardingPolicy, PolicyContext
from repro.core.policies.round_robin import RoundRobinPolicy
from repro.core.summaries import (
    DftSummaryManager,
    RemoteSummaryTable,
    SummaryUpdate,
)
from repro.streams.tuples import StreamId, StreamTuple

UNKNOWN_PEER_SIMILARITY = 0.5
"""Prior similarity for peers whose summary has not arrived yet: neither
trusted nor written off, so early tuples still explore the mesh."""


class DftPolicy(ForwardingPolicy):
    """Correlation-filtered forwarding from exchanged DFT coefficients."""

    name = "DFT"

    def __init__(self, context: PolicyContext) -> None:
        super().__init__(context)
        config = context.config
        budget = config.summary_budget(context.window_size)
        self.managers: Dict[StreamId, DftSummaryManager] = {
            stream: DftSummaryManager(
                stream=stream,
                window_size=context.window_size,
                budget=budget,
                refresh_interval=config.summary_refresh_interval,
                delta_tolerance=config.delta_tolerance,
                outbox=self.outbox,
            )
            for stream in (StreamId.R, StreamId.S)
        }
        self.remote = RemoteSummaryTable()
        self.flow = FlowController(context.num_nodes, config.flow)
        self._round_robin = RoundRobinPolicy(context)
        self._cached_probabilities: Dict[StreamId, Dict[int, float]] = {}
        self._cached_similarities: Dict[StreamId, Dict[int, float]] = {}
        self._arrivals_since_probability_refresh = 0
        self.worst_case_mode = False

    # ------------------------------------------------------------------
    # summary maintenance
    # ------------------------------------------------------------------

    def on_local_insert(
        self, item: StreamTuple, evicted: Sequence[StreamTuple]
    ) -> None:
        super().on_local_insert(item, evicted)
        self.managers[item.stream].observe(item.key)
        self._arrivals_since_probability_refresh += 1
        if (
            self._arrivals_since_probability_refresh
            >= self.context.config.summary_refresh_interval
        ):
            self._invalidate_probabilities()

    def on_local_insert_batch(
        self,
        items: Sequence[StreamTuple],
        evictions: Sequence[Sequence[StreamTuple]],
    ) -> None:
        """Vectorized insert: contiguous same-stream runs feed the block
        DFT path (:meth:`DftSummaryManager.observe_batch`)."""
        self.tuples_seen += len(items)
        index = 0
        while index < len(items):
            stream = items[index].stream
            end = index + 1
            while end < len(items) and items[end].stream is stream:
                end += 1
            self.managers[stream].observe_batch(
                [item.key for item in items[index:end]]
            )
            index = end
        interval = self.context.config.summary_refresh_interval
        self._arrivals_since_probability_refresh += len(items)
        if self._arrivals_since_probability_refresh >= interval:
            remainder = self._arrivals_since_probability_refresh % interval
            self._invalidate_probabilities()
            self._arrivals_since_probability_refresh = remainder

    def on_remote_summary(self, source: int, update: SummaryUpdate) -> None:
        if update.algorithm != DftSummaryManager.ALGORITHM:
            return
        if self.remote.apply(source, update):
            self._invalidate_probabilities()

    def _invalidate_probabilities(self) -> None:
        self._cached_probabilities.clear()
        self._cached_similarities.clear()
        self._arrivals_since_probability_refresh = 0

    def resync_peer(self, peer: int) -> None:
        """Queue full coefficient snapshots for a recovering peer.

        The peer missed an unknown number of deltas while unreachable;
        merging further deltas over its stale map would leave phantom
        coefficients, so it gets the complete current state instead.
        """
        for stream in (StreamId.R, StreamId.S):
            update = self.managers[stream].resync_update()
            if update is not None:
                self.outbox.queue_for(peer, update)

    def observe_congestion(self, queue_depth: int) -> None:
        previous = self.congestion_scale
        super().observe_congestion(queue_depth)
        # Cached probabilities embed the budget; refresh them when the
        # resource-aware scale moved materially.
        if abs(self.congestion_scale - previous) > 0.1:
            self._cached_probabilities.clear()

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, object]:
        state = super().checkpoint_state()
        state["managers"] = {
            stream.value: self.managers[stream].checkpoint_state()
            for stream in (StreamId.R, StreamId.S)
        }
        state["flow"] = self.flow.checkpoint_state()
        state["round_robin_cursor"] = self._round_robin._cursor
        state["arrivals_since_probability_refresh"] = (
            self._arrivals_since_probability_refresh
        )
        state["worst_case_mode"] = self.worst_case_mode
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        super().restore_state(state)
        for stream in (StreamId.R, StreamId.S):
            self.managers[stream].restore_state(state["managers"][stream.value])
        self.flow.restore_state(state["flow"])
        self._round_robin._cursor = int(state["round_robin_cursor"])
        self._arrivals_since_probability_refresh = int(
            state["arrivals_since_probability_refresh"]
        )
        self.worst_case_mode = bool(state["worst_case_mode"])
        # Soft state: remote summaries and the decision caches derived
        # from them died with the process; the resync refills them.
        self.remote.clear()
        self._cached_probabilities.clear()
        self._cached_similarities.clear()

    # ------------------------------------------------------------------
    # similarity and probabilities
    # ------------------------------------------------------------------

    def peer_similarities(self, stream: StreamId) -> Dict[int, float]:
        """Similarity of the local ``stream`` signal to each peer's
        opposite-stream signal (recomputed lazily at the refresh cadence)."""
        cached = self._cached_similarities.get(stream)
        if cached is not None:
            return cached
        local_map = self.managers[stream].local_coefficients()
        other = stream.other
        similarities: Dict[int, float] = {}
        for peer in self.peer_ids:
            remote_map = self.remote.get(peer, other)
            if remote_map is None or not local_map:
                similarities[peer] = UNKNOWN_PEER_SIMILARITY
                continue
            similarities[peer] = similarity(
                self.context.config.similarity,
                local_map,
                remote_map,
                self.context.window_size,
                domain=self.context.domain,
            )
        self._cached_similarities[stream] = similarities
        return similarities

    def peer_probabilities(self, stream: StreamId) -> Dict[int, float]:
        """Water-filled forwarding probabilities for ``stream`` tuples."""
        cached = self._cached_probabilities.get(stream)
        if cached is not None:
            return cached
        similarities = self.peer_similarities(stream)
        known = {
            peer
            for peer in self.peer_ids
            if self.remote.get(peer, stream.other) is not None
        }
        # Only judge the worst case on mature evidence: every peer's
        # summary present and a full window's worth of local arrivals
        # (during warm-up every window looks like every other).
        mature = (
            len(known) == len(self.peer_ids)
            and self.tuples_seen >= self.context.window_size
        )
        worst_case = mature and self.flow.is_uniform_worst_case(similarities)
        if worst_case != self.worst_case_mode and self.telemetry is not None:
            self.telemetry.emit(
                "policy.worst_case_mode",
                category="policy",
                node=self.node_id,
                stream=stream.value,
                active=worst_case,
            )
        self.worst_case_mode = worst_case
        probabilities = self.flow.probabilities(similarities)
        self._cached_probabilities[stream] = probabilities
        return probabilities

    # ------------------------------------------------------------------
    # forwarding decision
    # ------------------------------------------------------------------

    def choose_destinations(self, item: StreamTuple) -> List[int]:
        probabilities = self.peer_probabilities(item.stream)
        if self.worst_case_mode:
            self.fallback_decisions += 1
            budget = self.context.config.flow.budget(
                self.context.num_nodes, self.congestion_scale
            )
            return self._round_robin.take_from_cycle(budget)
        return self._bernoulli_destinations(probabilities)

    def diagnostics(self) -> Dict[str, float]:
        counters = super().diagnostics()
        counters["uniform_detections"] = float(self.flow.uniform_detections)
        counters["dft_broadcasts"] = float(
            sum(m.broadcasts for m in self.managers.values())
        )
        return counters
