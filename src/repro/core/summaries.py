"""Summary dissemination bookkeeping (Figure 7, lines 1-5).

Every filtering policy maintains a compact summary of its local windows
(DFT coefficients, a counting Bloom filter, or an AGMS sketch) and must
keep the other N-1 nodes' copies reasonably fresh.  The machinery is the
same for all of them:

* a per-stream *manager* turns local window updates into
  :class:`SummaryUpdate` broadcasts at a refresh cadence;
* a :class:`SummaryOutbox` holds, per peer, the latest not-yet-delivered
  update for each (algorithm, stream) slot -- newer updates supersede
  queued ones, exactly like the prototype's "batch of updates";
* updates are piggy-backed on tuple messages when possible and flushed
  standalone otherwise (the node runtime decides; see
  :meth:`repro.core.node.JoinProcessingNode`);
* a :class:`RemoteSummaryTable` on the receiving side merges updates into
  the freshest known remote state (Figure 7's "lookup table").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.errors import SummaryError
from repro.streams.tuples import StreamId


@dataclass
class SummaryUpdate:
    """One summary broadcast: the unit piggy-backed onto tuple messages."""

    algorithm: str
    stream: StreamId
    version: int
    window_size: int
    entries: int
    payload: Any
    full_state: bool
    """Whether the payload replaces remote state (snapshot) or merges
    into it (coefficient delta)."""


class SummaryOutbox:
    """Latest pending update per (peer, algorithm, stream) slot."""

    def __init__(self, peer_ids: Iterable[int]) -> None:
        self._pending: Dict[int, Dict[Tuple[str, StreamId], SummaryUpdate]] = {
            int(peer): {} for peer in peer_ids
        }
        self.history = None
        """Optional :class:`~repro.recovery.delta.SummaryHistory`: when
        the watermark-delta state transfer is on, the node attaches one
        per outbox so every outgoing snapshot version stays available as
        a delta base for recovering peers."""

    def broadcast(self, update: SummaryUpdate) -> None:
        """Queue ``update`` for every peer, superseding older queued ones."""
        if self.history is not None:
            self.history.record(update)
        slot = (update.algorithm, update.stream)
        for queue in self._pending.values():
            queue[slot] = update

    def queue_for(self, peer: int, update: SummaryUpdate) -> None:
        """Queue ``update`` for a single peer (retransmissions)."""
        if self.history is not None:
            self.history.record(update)
        self._pending[peer][(update.algorithm, update.stream)] = update

    def has_pending(self, peer: int) -> bool:
        return bool(self._pending[peer])

    def pending_entries(self, peer: int) -> int:
        """Wire size (summary entries) of everything queued for ``peer``."""
        return sum(u.entries for u in self._pending[peer].values())

    def take(self, peer: int) -> List[SummaryUpdate]:
        """Pop and return everything queued for ``peer``."""
        updates = list(self._pending[peer].values())
        self._pending[peer].clear()
        return updates

    def peers_with_pending(self) -> List[int]:
        return [peer for peer, queue in self._pending.items() if queue]

    def clear(self) -> None:
        """Drop everything queued (checkpoint restore: pending updates are
        soft state -- the resync protocol refills peers explicitly).  The
        snapshot history goes too: the restored version counter rolled
        back, so kept views could collide with re-used version numbers."""
        for queue in self._pending.values():
            queue.clear()
        if self.history is not None:
            self.history.clear()


class RemoteSummaryTable:
    """Receiver-side freshest-known summaries, keyed by (peer, stream)."""

    def __init__(self) -> None:
        self._state: Dict[Tuple[int, StreamId], Any] = {}
        self._versions: Dict[Tuple[int, StreamId], int] = {}
        self._dirty: Dict[Tuple[int, StreamId], bool] = {}

    def apply(self, source: int, update: SummaryUpdate) -> bool:
        """Merge an incoming update; returns whether state changed.

        Snapshot updates replace state outright; delta updates (DFT
        coefficient maps) merge bin-by-bin.  Updates older than what is
        already known are dropped (piggy-backed and standalone copies of
        the same broadcast may race on different links).
        """
        key = (source, update.stream)
        if self._versions.get(key, -1) >= update.version:
            return False
        if update.full_state or key not in self._state:
            self._state[key] = update.payload
        else:
            current = self._state[key]
            if not isinstance(current, dict) or not isinstance(update.payload, dict):
                raise SummaryError("delta update over non-mergeable state")
            merged = dict(current)
            merged.update(update.payload)
            self._state[key] = merged
        self._versions[key] = update.version
        self._dirty[key] = True
        return True

    def get(self, source: int, stream: StreamId) -> Optional[Any]:
        return self._state.get((source, stream))

    def version(self, source: int, stream: StreamId) -> int:
        return self._versions.get((source, stream), -1)

    def is_dirty(self, source: int, stream: StreamId) -> bool:
        """Whether state changed since the last :meth:`clear_dirty`."""
        return self._dirty.get((source, stream), False)

    def clear_dirty(self, source: int, stream: StreamId) -> None:
        self._dirty[(source, stream)] = False

    def known_peers(self, stream: StreamId) -> List[int]:
        return [peer for (peer, s) in self._state if s is stream]

    def checkpoint_state(self) -> List[List[object]]:
        """JSON-safe snapshot of the freshest remote summaries.

        Unlike the policies' own :meth:`checkpoint_state`, this is *not*
        restored through an inverse method here: the node replays the
        entries through ``policy.on_remote_summary`` so derived caches
        (remote Bloom filters, sketch copies, reconstructions) rebuild
        consistently.  The entries are the watermark the delta state
        transfer negotiates from.
        """
        from repro.recovery.delta import encode_payload

        return [
            [peer, stream.value, self._versions[(peer, stream)],
             encode_payload(self._state[(peer, stream)])]
            for peer, stream in sorted(
                self._state, key=lambda key: (key[0], key[1].value)
            )
        ]

    def clear(self) -> None:
        """Forget every remote summary (checkpoint restore: remote state
        is soft -- the anti-entropy resync and the normal broadcast
        cadence rebuild it from live peers)."""
        self._state.clear()
        self._versions.clear()
        self._dirty.clear()


class DftSummaryManager:
    """Local sliding DFT + coefficient-delta broadcasting for one stream.

    Figure 7, lines 1-2: incrementally update the coefficients, extract
    those that changed (by more than ``delta_tolerance``, relatively)
    since the last broadcast, and hand them to the outbox.
    """

    ALGORITHM = "dft"

    def __init__(
        self,
        stream: StreamId,
        window_size: int,
        budget: int,
        refresh_interval: int,
        delta_tolerance: float,
        outbox: SummaryOutbox,
    ) -> None:
        if refresh_interval < 1:
            raise SummaryError("refresh_interval must be >= 1")
        if delta_tolerance < 0:
            raise SummaryError("delta_tolerance must be non-negative")
        self.stream = stream
        self.window_size = window_size
        self.refresh_interval = refresh_interval
        self.cadence_stretch = 1
        """Refresh-cadence multiplier (>= 1), set by the overload ladder
        while the owning node is degraded; 1 is the normal cadence."""
        self.delta_tolerance = delta_tolerance
        self.outbox = outbox
        bins = low_frequency_bins(window_size, budget)
        self.dft = SlidingDFT(window_size, tracked_bins=bins)
        # Broadcast memory as arrays aligned with the tracked bins: the
        # delta-suppression scan then runs vectorized over the DFT's
        # zero-copy coefficient view instead of materializing a dict per
        # broadcast.
        self._last_broadcast_values = np.zeros(bins.size, dtype=np.complex128)
        self._ever_broadcast = np.zeros(bins.size, dtype=bool)
        self._updates_since_refresh = 0
        self._version = 0
        self.broadcasts = 0
        self.suppressed_refreshes = 0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub` (wired by the
        owning policy's ``attach_telemetry``)."""
        self.telemetry_node = None
        self._last_full_recomputes = 0

    def _emit_refresh_telemetry(self, update: Optional[SummaryUpdate]) -> None:
        hub = self.telemetry
        recomputes = self.dft.full_recomputes
        if recomputes > self._last_full_recomputes:
            hub.emit(
                "summary.recompute",
                category="summary",
                node=self.telemetry_node,
                stream=self.stream.value,
                count=recomputes - self._last_full_recomputes,
            )
            self._last_full_recomputes = recomputes
        if update is None:
            hub.registry.counter(
                "repro_summary_suppressed_total",
                node=self.telemetry_node,
                stream=self.stream.value,
            ).inc()
            return
        hub.emit(
            "summary.broadcast",
            category="summary",
            node=self.telemetry_node,
            stream=self.stream.value,
            entries=update.entries,
            version=update.version,
        )

    def observe(self, key: int) -> None:
        """Feed one locally-arrived attribute value through the summary."""
        self.dft.update(float(key))
        self._updates_since_refresh += 1
        if self._updates_since_refresh >= self.refresh_interval * self.cadence_stretch:
            self._updates_since_refresh = 0
            self.refresh()

    def observe_batch(self, keys: Sequence[float]) -> None:
        """Feed a block of attribute values through the summary.

        Equivalent to calling :meth:`observe` per key -- the block is
        split at refresh-cadence boundaries so every broadcast fires
        after exactly the arrival it would have in the scalar loop,
        while the DFT maintenance between broadcasts runs through the
        vectorized :meth:`~repro.dft.sliding.SlidingDFT.extend` path.
        """
        values = np.asarray(keys, dtype=np.float64).reshape(-1)
        start = 0
        cadence = self.refresh_interval * self.cadence_stretch
        while start < values.size:
            take = min(
                values.size - start,
                cadence - self._updates_since_refresh,
            )
            self.dft.extend(values[start : start + take])
            self._updates_since_refresh += take
            start += take
            if self._updates_since_refresh >= cadence:
                self._updates_since_refresh = 0
                self.refresh()

    def refresh(self) -> Optional[SummaryUpdate]:
        """Broadcast the coefficients that changed materially, if any."""
        bins, current = self.dft.coefficient_view()
        previous = self._last_broadcast_values
        scale = np.maximum(
            np.maximum(np.abs(previous), np.abs(current)), 1.0
        )
        changed_mask = ~self._ever_broadcast | (
            np.abs(current - previous) > self.delta_tolerance * scale
        )
        if not changed_mask.any():
            self.suppressed_refreshes += 1
            if self.telemetry is not None:
                self._emit_refresh_telemetry(None)
            return None
        self._last_broadcast_values[changed_mask] = current[changed_mask]
        self._ever_broadcast[changed_mask] = True
        changed = {
            int(b): complex(c)
            for b, c in zip(bins[changed_mask], current[changed_mask])
        }
        self._version += 1
        update = SummaryUpdate(
            algorithm=self.ALGORITHM,
            stream=self.stream,
            version=self._version,
            window_size=self.window_size,
            entries=len(changed),
            payload=changed,
            full_state=False,
        )
        self.outbox.broadcast(update)
        self.broadcasts += 1
        if self.telemetry is not None:
            self._emit_refresh_telemetry(update)
        return update

    def local_coefficients(self) -> Dict[int, complex]:
        """The node's own current coefficient map (for similarity calc)."""
        return self.dft.coefficient_map()

    def checkpoint_state(self) -> Dict[str, object]:
        """Snapshot the manager's durable state for repro.recovery."""
        from repro.recovery.checkpoint import encode_array

        return {
            "dft": self.dft.checkpoint_state(),
            "last_broadcast": encode_array(self._last_broadcast_values),
            "ever_broadcast": encode_array(self._ever_broadcast),
            "updates_since_refresh": self._updates_since_refresh,
            "version": self._version,
            "broadcasts": self.broadcasts,
            "suppressed_refreshes": self.suppressed_refreshes,
            "last_full_recomputes": self._last_full_recomputes,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        from repro.recovery.checkpoint import decode_array

        self.dft.restore_state(state["dft"])
        self._last_broadcast_values = decode_array(state["last_broadcast"])
        self._ever_broadcast = decode_array(state["ever_broadcast"])
        self._updates_since_refresh = int(state["updates_since_refresh"])
        self._version = int(state["version"])
        self.broadcasts = int(state["broadcasts"])
        self.suppressed_refreshes = int(state["suppressed_refreshes"])
        self._last_full_recomputes = int(state["last_full_recomputes"])

    def resync_update(self) -> Optional[SummaryUpdate]:
        """A full-state snapshot for one recovering peer.

        Deltas assume the receiver saw every earlier broadcast; a peer
        that was down (or partitioned away) did not, so recovery ships
        the complete coefficient map with ``full_state=True`` to replace
        whatever stale merge the peer holds.  ``None`` when the window is
        still empty (nothing to resynchronize)."""
        current = self.dft.coefficient_map()
        if not current:
            return None
        _, coefficients = self.dft.coefficient_view()
        self._last_broadcast_values[:] = coefficients
        self._ever_broadcast[:] = True
        self._version += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "summary.resync",
                category="summary",
                node=self.telemetry_node,
                stream=self.stream.value,
                entries=len(current),
                version=self._version,
            )
        return SummaryUpdate(
            algorithm=self.ALGORITHM,
            stream=self.stream,
            version=self._version,
            window_size=self.window_size,
            entries=len(current),
            payload=current,
            full_state=True,
        )


class SnapshotSummaryManager:
    """Snapshot-style broadcasting shared by the Bloom and sketch baselines.

    Subclasses (or composition users) supply ``snapshot()`` and the wire
    size; this class handles the cadence and versioning.
    """

    def __init__(
        self,
        algorithm: str,
        stream: StreamId,
        window_size: int,
        entries: int,
        refresh_interval: int,
        outbox: SummaryOutbox,
        snapshot_fn,
    ) -> None:
        if refresh_interval < 1:
            raise SummaryError("refresh_interval must be >= 1")
        self.algorithm = algorithm
        self.stream = stream
        self.window_size = window_size
        self.entries = entries
        self.refresh_interval = refresh_interval
        self.cadence_stretch = 1
        """Refresh-cadence multiplier (>= 1), set by the overload ladder
        while the owning node is degraded; 1 is the normal cadence."""
        self.outbox = outbox
        self._snapshot_fn = snapshot_fn
        self._updates_since_refresh = 0
        self._version = 0
        self.broadcasts = 0
        self.telemetry = None
        self.telemetry_node = None

    def tick(self) -> Optional[SummaryUpdate]:
        """Count one local update; broadcast a snapshot at the cadence."""
        self._updates_since_refresh += 1
        if self._updates_since_refresh < self.refresh_interval * self.cadence_stretch:
            return None
        self._updates_since_refresh = 0
        return self.refresh()

    def refresh(self) -> SummaryUpdate:
        update = self.snapshot_update()
        self.outbox.broadcast(update)
        self.broadcasts += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "summary.broadcast",
                category="summary",
                node=self.telemetry_node,
                stream=self.stream.value,
                entries=update.entries,
                version=update.version,
            )
        return update

    def checkpoint_state(self) -> Dict[str, object]:
        """Snapshot the cadence/version counters for repro.recovery.

        The summarized structure itself (filter / sketch) is owned by the
        policy and checkpointed there; this covers only the broadcast
        bookkeeping."""
        return {
            "updates_since_refresh": self._updates_since_refresh,
            "version": self._version,
            "broadcasts": self.broadcasts,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self._updates_since_refresh = int(state["updates_since_refresh"])
        self._version = int(state["version"])
        self.broadcasts = int(state["broadcasts"])

    def snapshot_update(self) -> SummaryUpdate:
        """Build (but do not queue) a fresh full-state snapshot.

        ``refresh`` broadcasts it to everyone; peer recovery instead
        queues it for the one peer that needs resynchronizing."""
        self._version += 1
        return SummaryUpdate(
            algorithm=self.algorithm,
            stream=self.stream,
            version=self._version,
            window_size=self.window_size,
            entries=self.entries,
            payload=self._snapshot_fn(),
            full_state=True,
        )


def _materially_different(previous: complex, current: complex, tolerance: float) -> bool:
    """Relative-change test used for coefficient-delta extraction."""
    scale = max(abs(previous), abs(current), 1.0)
    return abs(current - previous) > tolerance * scale
