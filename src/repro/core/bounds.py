"""Analytical error and message-complexity bounds (Theorems 1-3).

These closed forms generate Figures 3 and 4.  ``log`` means log base 2
throughout: at N = 2 that makes the O(log N) budget coincide with the
O(1) budget (one message), which is the only reading under which the two
theorems agree at the smallest system size.

Theorem 3's "Zipfian" bound treats the per-node result contribution as a
geometric decay: the i-th most correlated peer contributes a fraction
proportional to alpha**i.  The formulas are implemented exactly as printed:

* O(1):      eps = 1 - (alpha + alpha**2) / N
* O(log N):  eps = 1 - (alpha - alpha**(log2(N) + 1)) / (1 - alpha)

(Discussion of the interpretation lives in DESIGN.md; the Figure 4 bench
evaluates these verbatim.)
"""

from __future__ import annotations

import enum
import math

from repro.errors import ConfigurationError


class Budget(enum.Enum):
    """The two message-complexity regimes of Section 5.2.2."""

    CONSTANT = "O(1)"
    LOGARITHMIC = "O(log N)"


def _check_nodes(num_nodes: int) -> None:
    if num_nodes < 2:
        raise ConfigurationError("bounds require at least 2 nodes")


def uniform_error_bound(num_nodes: int, budget: Budget) -> float:
    """Worst-case (uniform data) error bound.

    Theorem 1: with T_i = 1 every tuple reaches its own node plus one
    remote node, each holding 1/N of the equally-spread matches, so
    eps = 1 - 2/N.  Theorem 2: with T_i = log N the tuple reaches
    1 + log N of the N equal shares, so eps = 1 - (1 + log2 N)/N.
    """
    _check_nodes(num_nodes)
    if budget is Budget.CONSTANT:
        return max(0.0, 1.0 - 2.0 / num_nodes)
    covered = 1.0 + math.log2(num_nodes)
    return max(0.0, 1.0 - covered / num_nodes)


def uniform_message_complexity(num_nodes: int, budget: Budget) -> float:
    """Messages per arriving tuple under each budget (Figure 3b).

    The baseline comparator is ``num_nodes - 1`` (exact join).
    """
    _check_nodes(num_nodes)
    if budget is Budget.CONSTANT:
        return 1.0
    return min(math.log2(num_nodes), float(num_nodes - 1))


def baseline_message_complexity(num_nodes: int) -> float:
    """The exact join's N - 1 messages per tuple."""
    _check_nodes(num_nodes)
    return float(num_nodes - 1)


def zipf_error_bound(num_nodes: int, alpha: float, budget: Budget) -> float:
    """Theorem 3's error bounds under Zipf(alpha) data, as printed.

    Values are clamped into [0, 1]; the O(log N) form can otherwise dip
    below zero for alpha >= 0.5 where the geometric series captures more
    than the whole result.
    """
    _check_nodes(num_nodes)
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError("alpha must lie in (0, 1)")
    if budget is Budget.CONSTANT:
        captured = (alpha + alpha**2) / num_nodes
    else:
        exponent = math.log2(num_nodes) + 1.0
        captured = (alpha - alpha**exponent) / (1.0 - alpha)
    return float(min(1.0, max(0.0, 1.0 - captured)))
