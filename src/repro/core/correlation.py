"""Stream similarity from exchanged DFT coefficients (Section 5.2).

Node i must quantify, *without seeing node j's tuples*, how likely its
tuples are to join at node j.  Equations 4-8 derive the cross-correlation
of the two attribute signals from their DFTs; this module implements that
statistic plus two strictly-spectral refinements, all computable from the
same W/kappa exchanged coefficients:

``spectral_correlation_coefficient``
    The verbatim Equation 4 quantity: zero-lag cross-correlation over
    auto-covariance normalization, evaluated through the cross power
    spectrum (Parseval).  Meaningful when the two streams are temporally
    aligned (bursty or trending workloads).

``max_lag_correlation``
    The peak of the full normalized cross-correlation *function* -- the
    inverse transform of the cross power spectrum S_xy (Equation 8 carries
    all lags, not just zero).  Robust to arbitrary alignment offsets
    between the two windows.

``distribution_similarity``
    Cosine similarity of coarse value histograms built from the
    *reconstructed* windows (Section 5.3 reconstruction).  This tracks
    join selectivity directly -- two segments join a lot iff their
    attribute-value distributions overlap -- and is the default measure
    used by the DFT/DFTT policies.  (For streams with no temporal
    alignment, e.g. i.i.d. ZIPF draws, any lag-based statistic has
    expectation zero even when the value distributions coincide; the
    histogram form recovers the similarity the paper's correlation
    coefficient is intended to capture.)

All three return a value in [0, 1] where larger means "more likely to
join", the form the flow controller consumes.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.dft.reconstruction import expand_spectrum, reconstruct_values
from repro.errors import SummaryError


class SimilarityMeasure(enum.Enum):
    """Which statistic the DFT policies derive p_ij from."""

    SPECTRAL = "spectral"
    MAX_LAG = "max_lag"
    DISTRIBUTION = "distribution"


def _shared_bins(
    x_map: Dict[int, complex], y_map: Dict[int, complex]
) -> np.ndarray:
    shared = sorted(set(x_map) & set(y_map))
    if not shared:
        raise SummaryError("coefficient maps share no bins")
    return np.asarray(shared, dtype=np.int64)


def _mirror_weights(bins: np.ndarray, window_size: int) -> np.ndarray:
    """Parseval weight per tracked bin.

    Tracked bins come from the non-redundant half of a real signal's
    spectrum; each bin k with a distinct mirror W-k implicitly contributes
    its conjugate term too, so it counts twice in spectral sums.  DC (k=0)
    and Nyquist (k=W/2, even W) have no distinct mirror.
    """
    weights = np.full(bins.size, 2.0)
    weights[bins == 0] = 1.0
    if window_size % 2 == 0:
        weights[bins == window_size // 2] = 1.0
    return weights


def spectral_correlation_coefficient(
    x_map: Dict[int, complex],
    y_map: Dict[int, complex],
    window_size: int,
    centered: bool = True,
) -> float:
    """Equation 4's rho from two (possibly truncated) coefficient maps.

    rho = sigma_xy / sqrt(sigma_x * sigma_y), with the cross- and
    auto-terms evaluated as Parseval sums over the shared bins.  With
    ``centered`` the DC bin is excluded, turning raw correlation into
    covariance (the paper's auto-covariance normalization).  The result is
    clipped into [0, 1]: anti-correlated segments are simply "dissimilar"
    for forwarding purposes.
    """
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    bins = _shared_bins(x_map, y_map)
    if centered:
        bins = bins[bins != 0]
        if bins.size == 0:
            return 0.0
    x = np.asarray([x_map[int(k)] for k in bins], dtype=np.complex128)
    y = np.asarray([y_map[int(k)] for k in bins], dtype=np.complex128)
    weights = _mirror_weights(bins, window_size)
    cross = float(np.sum(weights * (x * np.conj(y)).real))
    x_auto = float(np.sum(weights * (x * np.conj(x)).real))
    y_auto = float(np.sum(weights * (y * np.conj(y)).real))
    if x_auto <= 0.0 or y_auto <= 0.0:
        return 0.0
    rho = cross / np.sqrt(x_auto * y_auto)
    return float(np.clip(rho, 0.0, 1.0))


def max_lag_correlation(
    x_map: Dict[int, complex],
    y_map: Dict[int, complex],
    window_size: int,
    centered: bool = True,
) -> float:
    """Peak of the normalized cross-correlation function over all lags.

    Computed as ifft(X * conj(Y)) over the shared (mirror-expanded) bins,
    normalized by the zero-lag auto terms.  Clipped into [0, 1].
    """
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    bins = _shared_bins(x_map, y_map)
    x_kept = {int(k): x_map[int(k)] for k in bins}
    y_kept = {int(k): y_map[int(k)] for k in bins}
    if centered:
        x_kept.pop(0, None)
        y_kept.pop(0, None)
        if not x_kept or not y_kept:
            return 0.0
    x_full = expand_spectrum(x_kept, window_size)
    y_full = expand_spectrum(y_kept, window_size)
    cross_function = np.fft.ifft(x_full * np.conj(y_full)).real
    x_auto = float(np.sum(np.abs(x_full) ** 2)) / window_size
    y_auto = float(np.sum(np.abs(y_full) ** 2)) / window_size
    if x_auto <= 0.0 or y_auto <= 0.0:
        return 0.0
    peak = float(np.max(cross_function)) / np.sqrt(x_auto * y_auto)
    return float(np.clip(peak, 0.0, 1.0))


def distribution_similarity(
    x_map: Dict[int, complex],
    y_map: Dict[int, complex],
    window_size: int,
    domain: int,
    num_bins: int = 64,
) -> float:
    """Cosine similarity of reconstructed attribute-value histograms.

    Both windows are rebuilt with the truncated inverse DFT (Section 5.3),
    their values bucketed into ``num_bins`` equal-width ranges over
    ``[1, domain]``, and the two histograms compared by cosine similarity.
    Values reconstructed outside the domain (ringing) are clamped to its
    edges.  Returns 0 when either reconstruction is empty.
    """
    if domain < 1:
        raise SummaryError("domain must be >= 1")
    if num_bins < 1:
        raise SummaryError("num_bins must be >= 1")
    histograms = []
    for coefficient_map in (x_map, y_map):
        values = reconstruct_values(coefficient_map, window_size, round_to_int=False)
        clamped = np.clip(values, 1, domain)
        histogram, _ = np.histogram(clamped, bins=num_bins, range=(1, domain + 1))
        histograms.append(histogram.astype(np.float64))
    x_hist, y_hist = histograms
    x_norm = np.linalg.norm(x_hist)
    y_norm = np.linalg.norm(y_hist)
    if x_norm == 0.0 or y_norm == 0.0:
        return 0.0
    return float(np.clip(np.dot(x_hist, y_hist) / (x_norm * y_norm), 0.0, 1.0))


def similarity(
    measure: SimilarityMeasure,
    x_map: Dict[int, complex],
    y_map: Dict[int, complex],
    window_size: int,
    domain: Optional[int] = None,
) -> float:
    """Dispatch on :class:`SimilarityMeasure` (policy entry point)."""
    if measure is SimilarityMeasure.SPECTRAL:
        return spectral_correlation_coefficient(x_map, y_map, window_size)
    if measure is SimilarityMeasure.MAX_LAG:
        return max_lag_correlation(x_map, y_map, window_size)
    if domain is None:
        raise SummaryError("distribution similarity requires the key domain")
    return distribution_similarity(x_map, y_map, window_size, domain)
