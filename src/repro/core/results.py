"""Run results: everything Section 6's figures are computed from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.metrics.error import epsilon_error


@dataclass
class RunResult:
    """Aggregated outcome of one simulated run."""

    config: Dict[str, object]
    truth_pairs: int
    reported_pairs: int
    duplicate_reports: int
    spurious_reports: int
    tuples_arrived: int
    duration_seconds: float
    arrival_span_seconds: float
    traffic: Dict[str, float]
    messages_by_kind: Dict[str, int]
    node_diagnostics: Dict[int, Dict[str, float]] = field(default_factory=dict)
    throughput_series: List[Tuple[int, int]] = field(default_factory=list)
    sustained_throughput: float = 0.0
    per_query: List[Dict[str, float]] = field(default_factory=list)
    """Per-query breakdown when the system runs several concurrent
    queries; empty list means single-query (all headline fields then
    describe that one query)."""

    latency: Dict[str, float] = field(default_factory=dict)
    """Result-latency summary (count/mean/p50/p95/max): simulated seconds
    from a pair's completion (later member's arrival) to its report."""

    reliability: Dict[str, float] = field(default_factory=dict)
    """System-wide reliable-transport and failure-detector counters
    (retransmits, delivery failures, detected failures, recovery latency,
    staleness histogram).  Empty when the reliability layer is disabled."""

    faults: Dict[str, float] = field(default_factory=dict)
    """Fault-injection summary (events, messages blocked, activations per
    kind).  Empty when the run had no fault plan."""

    recovery: Dict[str, float] = field(default_factory=dict)
    """Checkpoint/restart recovery counters (checkpoints taken and bytes,
    arrivals logged/replayed, restarts, clean vs degraded rejoins, rejoin
    latency).  Empty when recovery is disabled."""

    overload: Dict[str, float] = field(default_factory=dict)
    """Overload-protection counters (tuples/messages shed at nodes and
    links, suppressed summary flushes, degradation-mode transitions and
    per-mode residency).  Empty when overload protection is disabled."""

    profile: Dict[str, Dict[str, float]] = field(default_factory=dict)
    """Per-kernel wall/CPU accounting (calls, items, seconds, items/s)
    from the :class:`~repro.profiling.KernelProfiler` the run was handed.
    Empty -- and zero-overhead -- when no profiler was attached."""

    manifest: Dict[str, object] = field(default_factory=dict)
    """Run provenance (seed, package version, kernel mode, config echo)
    from :func:`repro.telemetry.manifest.build_manifest`; attached to
    every run whether or not telemetry is enabled."""

    telemetry: Dict[str, float] = field(default_factory=dict)
    """Telemetry-hub totals (events by category, samples taken,
    instrument count).  Empty when telemetry is disabled."""

    @property
    def epsilon(self) -> float:
        """Equation 1's error."""
        return epsilon_error(self.truth_pairs, self.reported_pairs)

    @property
    def data_messages(self) -> int:
        """Tuple + standalone-summary messages (the data plane)."""
        return self.messages_by_kind.get("tuple", 0) + self.messages_by_kind.get(
            "summary", 0
        )

    @property
    def messages_per_result_tuple(self) -> float:
        """Figure 9's y-axis; infinity when nothing was reported."""
        if self.reported_pairs == 0:
            return float("inf")
        return self.data_messages / self.reported_pairs

    @property
    def messages_per_arrival(self) -> float:
        """Observed per-tuple message complexity (Definition I, system-wide)."""
        if self.tuples_arrived == 0:
            return 0.0
        return self.data_messages / self.tuples_arrived

    @property
    def throughput(self) -> float:
        """Result tuples per simulated second over the whole run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.reported_pairs / self.duration_seconds

    @property
    def summary_overhead_fraction(self) -> float:
        """Figure 8's y-axis: summary bytes over net-data bytes."""
        return float(self.traffic.get("summary_overhead_fraction", 0.0))

    @property
    def messages_lost(self) -> int:
        """Messages dropped in transit (lossy links + injected faults)."""
        return int(self.traffic.get("messages_lost", 0))

    @property
    def retransmits(self) -> int:
        """Reliable-channel retransmissions across all nodes."""
        return int(self.reliability.get("retransmits", 0))

    @property
    def failures_detected(self) -> int:
        """Peer-failure suspicions raised across all nodes."""
        return int(self.reliability.get("failures_detected", 0))

    def summary(self) -> Dict[str, float]:
        """The headline metrics as one flat dictionary."""
        return {
            "epsilon": self.epsilon,
            "truth_pairs": float(self.truth_pairs),
            "reported_pairs": float(self.reported_pairs),
            "messages_per_result_tuple": self.messages_per_result_tuple,
            "messages_per_arrival": self.messages_per_arrival,
            "throughput": self.throughput,
            "sustained_throughput": self.sustained_throughput,
            "summary_overhead_fraction": self.summary_overhead_fraction,
            "duration_seconds": self.duration_seconds,
        }
