"""The distributed stream-processing node (Figure 7's runtime).

Each node owns, **per concurrent query** (Section 3's multi-query
setting; single-query systems simply have one):

* its local segments R_i and S_i of that query's stream windows;
* *shadow windows* holding forwarded copies received from peers -- the
  materialization of the cross-partition joins R_i |><| S_j at this node;
* a forwarding policy (summaries + destination choice).

All queries share the node's single service queue and its sender-paced
uplink, so concurrent queries contend for exactly the resources the
paper's throughput analysis is about.

The service model mirrors the paper's WAN emulation: the testbed *pauses
the sender* one second per 90 kilobits, so transmission cost is charged to
the sending node's service time (links then add propagation latency only).
A node saturated by (N-1)-way broadcast therefore processes fewer tuples
per second -- which is exactly the effect Figure 11 measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SystemConfig, WindowKind
from repro.core.health import PeerHealthMonitor
from repro.core.policies.base import ForwardingPolicy
from repro.errors import ConfigurationError
from repro.join.ground_truth import GroundTruthOracle
from repro.join.hash_join import JoinResult, SymmetricHashJoin
from repro.metrics.accounting import ResultCollector
from repro.core.summaries import SummaryUpdate
from repro.net.message import (
    HEADER_BYTES,
    SUMMARY_COEFFICIENT_BYTES,
    Message,
    MessageKind,
)
from repro.net.reliable import ReliableTransport
from repro.net.simulator import Event, EventKeySource, EventScheduler
from repro.net.topology import Network
from repro.overload import DegradationLadder, DegradationMode, OverloadDetector
from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    encode_blob,
    restore_window,
    window_state,
)
from repro.recovery.delta import (
    SummaryHistory,
    apply_delta,
    decode_payload,
    delta_wire_entries,
    encode_delta,
    payload_digest,
)
from repro.recovery.machine import RecoveryMachine, RecoveryPhase
from repro.recovery.settings import RecoverySettings
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import (
    CountWindow,
    LandmarkWindow,
    SlidingWindow,
    TimeWindow,
)


@dataclass
class QueryRuntime:
    """One query's join state at one node."""

    query_id: int
    join: SymmetricHashJoin
    policy: ForwardingPolicy
    oracle: GroundTruthOracle
    collector: ResultCollector
    shadow_windows: Dict[StreamId, Dict[int, SlidingWindow]] = field(
        default_factory=lambda: {StreamId.R: {}, StreamId.S: {}}
    )
    seen_pairs: set = field(default_factory=set)
    """Result pairs this node already shipped (node-local RESULT dedup)."""


class JoinProcessingNode:
    """One processing site of the distributed join."""

    def __init__(
        self,
        node_id: int,
        config: SystemConfig,
        scheduler: EventScheduler,
        network: Network,
        policy: ForwardingPolicy,
        oracle: GroundTruthOracle,
        collector: ResultCollector,
        transport: Optional[ReliableTransport] = None,
        fault_injector=None,
        profiler=None,
        telemetry=None,
        recovery: Optional[RecoverySettings] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.scheduler = scheduler
        self.network = network
        self._event_keys = EventKeySource(node_id)
        """Entity-local event keys for everything this node schedules
        (service completions, recovery timers, ARQ retransmits) -- the
        ordering contract the sharded engine depends on."""
        self.accounting_ops: List[tuple] = []
        """Deferred ground-truth/collector operations, logged in service
        order and replayed in canonical ``(time, node, seq)`` order at
        collect time (see repro.metrics.accounting.replay_accounting)."""
        self._acct_seq = 0
        self._queries: Dict[int, QueryRuntime] = {}
        self.add_query(0, policy, oracle, collector)
        self._queue: Deque[Tuple[str, object]] = deque()
        self._busy = False
        self._last_contact: Dict[int, float] = {}
        self._mean_interarrival = 0.0
        self._last_arrival_time: Optional[float] = None
        self.tuples_processed = 0
        self.remote_tuples_processed = 0
        self.standalone_summaries_sent = 0
        self.max_queue_depth = 0
        self.busy_seconds = 0.0
        self.transport = transport
        """Reliable control-plane endpoint; ``None`` runs the paper's
        pure best-effort wire protocol (the default)."""
        if transport is not None:
            transport.key_source = self._event_keys
        self.profiler = profiler
        """Optional :class:`~repro.profiling.KernelProfiler`; when set,
        every service is accounted to a per-kind kernel section."""
        self.fault_injector = fault_injector
        self.health: Optional[PeerHealthMonitor] = None
        self.local_arrivals_dropped = 0
        self.forced_broadcast_sends = 0
        self.suppressed_sends = 0
        self.resyncs = 0
        self._peer_ids = tuple(p for p in range(config.num_nodes) if p != node_id)
        if transport is not None:
            self.health = PeerHealthMonitor(
                node_id,
                self._peer_ids,
                transport.settings,
                on_recovery=self._on_peer_recovered,
            )
        # --- checkpoint/restart recovery (repro.recovery) ---------------
        self.recovery_settings = recovery
        self.checkpoint_store = checkpoint_store
        self.recovery_machine: Optional[RecoveryMachine] = None
        if recovery is not None and recovery.enabled:
            self.recovery_machine = RecoveryMachine(node_id)
        for runtime in self._queries.values():
            # Query 0 was installed before the recovery settings existed.
            self._install_delta_history(runtime.policy)
        self._replay_log: Deque[StreamTuple] = deque()
        self._pending_messages: List[Message] = []
        self._transfer_timers: Dict[int, Event] = {}
        self._transfer_attempts: Dict[int, int] = {}
        self._synced_peers: set = set()
        self._restore_event: Optional[Event] = None
        self._catchup_deadline: Optional[Event] = None
        self.restarts = 0
        self.checkpoints_taken = 0
        self.checkpoint_bytes = 0
        self.tuples_logged = 0
        self.tuples_replayed = 0
        self.replay_dropped = 0
        self.state_transfer_bytes = 0
        self.state_transfer_delta_bytes = 0
        self.state_transfer_full_bytes = 0
        self.state_transfer_bytes_saved = 0
        self.state_transfer_fallbacks = 0
        # --- overload protection (repro.overload) -----------------------
        self.overload_settings = config.overload if config.overload.enabled else None
        self.degradation_ladder: Optional[DegradationLadder] = None
        self._overload_detector: Optional[OverloadDetector] = None
        if self.overload_settings is not None:
            self.degradation_ladder = DegradationLadder(node_id)
            self._overload_detector = OverloadDetector(
                self.overload_settings, self.degradation_ladder
            )
        self.shed_tuples = 0
        self.shed_messages = 0
        self.suppressed_flushes = 0
        self._resync_claims: Dict[int, Dict[Tuple[int, str, str], Tuple[int, str]]] = {}
        """Per peer, per ``(query_id, algorithm, stream value)`` slot: the
        ``(version, digest)`` the latest restore recovered -- what the
        delta state-transfer request claims as its resync base."""
        self._resync_bases: Dict[int, Dict[Tuple[int, str, str], object]] = {}
        """The restored payloads behind the claims.  Deltas apply against
        these (not the live remote table) so a retransmitted response
        still applies cleanly after an earlier one already landed."""
        self._restored_watermark: Optional[float] = None
        self.telemetry = telemetry
        """Optional :class:`~repro.telemetry.TelemetryHub`; every service
        becomes a span and fan-out decisions feed a histogram.  Handles
        are cached here so the hot path pays one ``None`` check when
        telemetry is off and one method call when it is on."""
        self._fanout_histogram = None
        if telemetry is not None:
            if self.health is not None:
                self.health.telemetry = telemetry
            if transport is not None:
                transport.telemetry = telemetry
                transport.telemetry_node = node_id
            self._fanout_histogram = telemetry.registry.histogram(
                "repro_node_fanout",
                edges=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
                node=node_id,
            )

    # ------------------------------------------------------------------
    # query management
    # ------------------------------------------------------------------

    def add_query(
        self,
        query_id: int,
        policy: ForwardingPolicy,
        oracle: GroundTruthOracle,
        collector: ResultCollector,
    ) -> None:
        """Install the runtime for one concurrent query at this node."""
        if query_id in self._queries:
            raise ConfigurationError("query %d already installed" % query_id)
        self._queries[query_id] = QueryRuntime(
            query_id=query_id,
            join=SymmetricHashJoin(
                self.node_id,
                r_window=self._make_window(shadow=False),
                s_window=self._make_window(shadow=False),
            ),
            policy=policy,
            oracle=oracle,
            collector=collector,
        )
        if getattr(self, "recovery_settings", None) is not None:
            # Query 0 arrives from the constructor before the recovery
            # settings exist; the constructor re-runs the installation.
            self._install_delta_history(policy)

    @property
    def _delta_transfer_enabled(self) -> bool:
        return (
            self.recovery_settings is not None
            and self.recovery_settings.enabled
            and self.recovery_settings.delta_state_transfer
        )

    def _install_delta_history(self, policy: ForwardingPolicy) -> None:
        """Attach a snapshot-history ring to the policy's outbox.

        Every node needs one when delta transfers are on -- any peer may
        crash and claim a watermark against *this* node's broadcasts.
        """
        if self._delta_transfer_enabled and policy.outbox.history is None:
            policy.outbox.history = SummaryHistory(
                self.recovery_settings.delta_history_limit
            )

    def query(self, query_id: int = 0) -> QueryRuntime:
        """The runtime of one query (0 is the first/only query)."""
        return self._queries[query_id]

    @property
    def query_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._queries))

    # Single-query conveniences (the common case and the test surface).

    @property
    def policy(self) -> ForwardingPolicy:
        return self._queries[0].policy

    @property
    def join(self) -> SymmetricHashJoin:
        return self._queries[0].join

    @property
    def oracle(self) -> GroundTruthOracle:
        return self._queries[0].oracle

    @property
    def collector(self) -> ResultCollector:
        return self._queries[0].collector

    @property
    def shadow_windows(self) -> Dict[StreamId, Dict[int, SlidingWindow]]:
        return self._queries[0].shadow_windows

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------

    def on_local_arrival(self, item: StreamTuple) -> None:
        """A tuple of this node's own stream segment arrived."""
        if self._should_log_for_replay():
            # The site is down but restartable: its ingest path keeps a
            # durable arrival log (the paper's sources are external feeds,
            # so the tuples exist whether the process does or not) and the
            # recovery protocol replays them after restore.
            self._log_for_replay(item)
            return
        if self.fault_injector is not None and self.fault_injector.node_down(
            self.node_id
        ):
            # A crashed site loses its local arrivals outright; the oracle
            # never observes them either, so truth and report stay
            # comparable -- the crash costs coverage, not correctness.
            self.local_arrivals_dropped += 1
            return
        self._enqueue(("local", item))

    def on_local_arrivals(self, items: Sequence[StreamTuple]) -> None:
        """A coalesced block of same-timestamp local arrivals.

        Simultaneous arrivals have no defined relative order, so the node
        ingests the whole block into windows and summaries first (one
        vectorized pass through the batched kernels) and then makes the
        per-tuple forwarding decisions against the post-block summary
        state.  A single-element block takes the identical path (and cost
        model) as :meth:`on_local_arrival`.
        """
        if not items:
            return
        if len(items) == 1:
            self.on_local_arrival(items[0])
            return
        if self._should_log_for_replay():
            for item in items:
                self._log_for_replay(item)
            return
        if self.fault_injector is not None and self.fault_injector.node_down(
            self.node_id
        ):
            self.local_arrivals_dropped += len(items)
            return
        self._enqueue(("local_batch", tuple(items)))

    def _should_log_for_replay(self) -> bool:
        """Whether local arrivals currently go to the replay log.

        The recovery machine's phase is authoritative: DOWN and RESTORING
        mean the process cannot serve, but a restartable site's arrival
        log persists.  Non-restartable crashes never enter those phases,
        so they keep the legacy drop semantics.
        """
        if self.recovery_machine is None:
            return False
        return self.recovery_machine.phase in (
            RecoveryPhase.DOWN,
            RecoveryPhase.RESTORING,
        )

    def _log_for_replay(self, item: StreamTuple) -> None:
        capacity = self.recovery_settings.replay_log_capacity
        if len(self._replay_log) >= capacity:
            self.replay_dropped += 1
            return
        self._replay_log.append(item)
        self.tuples_logged += 1

    def on_message(self, message: Message) -> None:
        """Network delivery callback.

        With the reliable transport enabled this is also the demux point:
        ACKs cancel retransmit timers, heartbeats only feed the failure
        detector, and sequenced control messages pass through the ARQ
        receiver (which may release zero or several messages in order).
        """
        if (
            self.recovery_machine is not None
            and self.recovery_machine.phase is RecoveryPhase.RESTORING
        ):
            # The process is back up but its state is mid-restore; park
            # deliveries and run them through this demux once restored.
            self._pending_messages.append(message)
            return
        if self.health is not None:
            self.health.heard(message.source, self.scheduler.now)
        if self.transport is not None:
            if message.kind is MessageKind.ACK:
                self.transport.on_ack(message)
                return
            if message.kind is MessageKind.HEARTBEAT:
                return
            if message.seq is not None:
                for released in self.transport.on_receive(message):
                    self._enqueue(("message", released))
                return
        self._enqueue(("message", message))

    def _enqueue(self, work: Tuple[str, object]) -> None:
        kind, payload = work
        if kind == "message" and payload.kind is MessageKind.STATE_TRANSFER:
            # Recovery anti-entropy jumps the service queue: a rejoining
            # node must not wait behind the replay backlog it is working
            # through, and a serving peer answers resync requests ahead of
            # its data plane -- otherwise on a saturated mesh the catch-up
            # window is bounded by queue depth instead of the WAN.
            # It also bypasses the overload bound: shedding the recovery
            # handshake would deadlock a rejoining node behind the very
            # congestion it is trying to rejoin through.
            self._queue.appendleft(work)
        elif (
            self.overload_settings is not None
            and len(self._queue) >= self.overload_settings.queue_bound
        ):
            self._admit_over_bound(work)
        else:
            self._queue.append(work)
        self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        if self._overload_detector is not None:
            self._observe_overload(len(self._queue))
        self._start_next()

    # Shedding priority classes, highest kept longest.  Remote tuple
    # copies go first: the origin node already counted them toward its
    # own report, so dropping a copy costs recall on cross-partition
    # pairs only.  Local arrivals are this node's sole chance to observe
    # its own stream segment.  Summary/control/result messages keep the
    # mesh's metadata coherent, and STATE_TRANSFER (priority 3, never a
    # victim) is the recovery path itself.
    _SHED_PRIORITY_REMOTE_TUPLE = 0
    _SHED_PRIORITY_LOCAL = 1
    _SHED_PRIORITY_CONTROL = 2
    _SHED_PRIORITY_TRANSFER = 3

    @classmethod
    def _work_priority(cls, work: Tuple[str, object]) -> int:
        kind, payload = work
        if kind != "message":
            return cls._SHED_PRIORITY_LOCAL
        if payload.kind is MessageKind.STATE_TRANSFER:
            return cls._SHED_PRIORITY_TRANSFER
        if payload.kind is MessageKind.TUPLE:
            return cls._SHED_PRIORITY_REMOTE_TUPLE
        return cls._SHED_PRIORITY_CONTROL

    def _admit_over_bound(self, work: Tuple[str, object]) -> None:
        """The queue is at its bound: shed deterministically by priority.

        The victim is the strictly lowest-priority queued entry, tail-most
        among equals (the youngest low-value work loses first).  Incoming
        work that does not outrank the victim is shed itself, so the queue
        never exceeds ``queue_bound`` and admission is a pure function of
        queue contents -- no RNG, no wall clock, engine-independent.
        """
        queue = self._queue
        incoming = self._work_priority(work)
        victim_index = 0
        victim_priority: Optional[int] = None
        for index in range(len(queue) - 1, -1, -1):
            priority = self._work_priority(queue[index])
            if victim_priority is None or priority < victim_priority:
                victim_index = index
                victim_priority = priority
        if victim_priority is None or incoming <= victim_priority:
            self._shed(work)
        else:
            victim = queue[victim_index]
            del queue[victim_index]
            self._shed(victim)
            queue.append(work)

    def _shed(self, work: Tuple[str, object]) -> None:
        """Drop one unit of queued work, with honest accounting.

        Shed local tuples are logged as ``shed`` accounting ops: the
        ground-truth oracle still charges every result pair they would
        have completed against live windows, so shedding degrades the
        measured recall instead of quietly shrinking the denominator.
        Shed remote work is already counted at its origin and only
        decrements this node's side of the ledger.
        """
        kind, payload = work
        now = self.scheduler.now
        if kind == "local":
            self._shed_local(payload, now)
            count = 1
        elif kind == "local_batch":
            for raw_item in payload:
                self._shed_local(raw_item, now)
            count = len(payload)
        else:
            self.shed_messages += 1
            count = 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "overload.shed",
                category="overload",
                node=self.node_id,
                time=now,
                kind=kind,
                count=count,
            )

    def _shed_local(self, raw_item: StreamTuple, now: float) -> None:
        item = raw_item.with_timestamp(now)
        runtime = self._queries[item.query_id]
        self.shed_tuples += 1
        self._log_op(runtime, now, "shed", (item,))

    def _observe_overload(self, queue_depth: int) -> None:
        now = self.scheduler.now
        for trigger, mode in self._overload_detector.observe(now, queue_depth):
            self._on_mode_change(trigger, mode, queue_depth, now)

    def _on_mode_change(
        self, trigger: str, mode: DegradationMode, queue_depth: int, now: float
    ) -> None:
        """One degradation-ladder transition landed: apply its mechanics."""
        stretch = (
            1
            if mode is DegradationMode.NORMAL
            else self.overload_settings.throttle_refresh_stretch
        )
        for runtime in self._queries.values():
            runtime.policy.set_refresh_stretch(stretch)
        if self.telemetry is not None:
            self.telemetry.emit(
                "overload.mode",
                category="overload",
                node=self.node_id,
                time=now,
                trigger=trigger,
                mode=mode.value,
                queue_depth=queue_depth,
            )

    def _start_next(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        kind, payload = self._queue.popleft()
        if self.profiler is None:
            service_time = self._dispatch(kind, payload)
        else:
            items = len(payload) if kind == "local_batch" else 1
            with self.profiler.section("node.%s" % kind, items=items):
                service_time = self._dispatch(kind, payload)
        if self.fault_injector is not None:
            # An active OVERLOAD fault stretches this node's service times
            # (CPU contention / a slow collocated tenant); factor 1.0 --
            # no fault covering this node -- is a bit-exact no-op.
            factor = self.fault_injector.service_factor(self.node_id)
            if factor != 1.0:
                service_time *= factor
        self.busy_seconds += service_time
        if self.telemetry is not None:
            # The service time is known synchronously, so one complete
            # span per service -- no begin/end pairing to reconcile.
            self.telemetry.emit(
                "node.service",
                category="node",
                node=self.node_id,
                time=self.scheduler.now,
                dur_s=service_time,
                kind=kind,
            )
        self.scheduler.schedule_in(
            service_time,
            self._finish_service,
            key=self._event_keys.next_key(),
            home=self.node_id,
        )

    def _dispatch(self, kind: str, payload: object) -> float:
        if kind == "local":
            return self._process_local(payload)
        if kind == "local_batch":
            return self._process_local_batch(payload)
        return self._process_message(payload)

    def _finish_service(self) -> None:
        self._busy = False
        if self._overload_detector is not None:
            # The drain side of the hysteresis loop: arrivals can only
            # escalate, so recovery has to be observed here, where the
            # queue actually shrinks.
            self._observe_overload(len(self._queue))
        self._start_next()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # window construction
    # ------------------------------------------------------------------

    def _make_window(self, shadow: bool) -> SlidingWindow:
        if self.config.window_kind is WindowKind.TIME:
            return TimeWindow(self.config.window_seconds)
        capacity = (
            self.config.effective_shadow_window if shadow else self.config.window_size
        )
        if self.config.window_kind is WindowKind.LANDMARK:
            # Shadow windows reset on landmark copies too: the origin's
            # window emptied at that moment, so its copies are stale.
            return LandmarkWindow(self.config.landmark_key, max_size=capacity)
        return CountWindow(capacity)

    def _shadow_window(
        self, runtime: QueryRuntime, stream: StreamId, origin: int
    ) -> SlidingWindow:
        windows = runtime.shadow_windows[stream]
        if origin not in windows:
            windows[origin] = self._make_window(shadow=True)
        return windows[origin]

    def _refresh_time_windows(self, runtime: QueryRuntime, now: float) -> None:
        """Expire time-window tuples between arrivals (probe freshness).

        Count windows evict only on insert; time windows must not let a
        probe match a tuple whose span already lapsed, so both the local
        and the shadow windows are advanced to ``now`` first.  Local
        expirations propagate to the oracle and the deletable summaries.
        """
        if self.config.window_kind is not WindowKind.TIME:
            return
        for stream in (StreamId.R, StreamId.S):
            window = runtime.join.window(stream)
            expired = window.advance_to(now)
            if expired:
                self._log_op(runtime, now, "evict", (stream, tuple(expired)))
                runtime.policy.on_evictions(stream, expired)
            for shadow in runtime.shadow_windows[stream].values():
                shadow.advance_to(now)

    # ------------------------------------------------------------------
    # local tuple processing (Figure 7)
    # ------------------------------------------------------------------

    def _process_local(self, raw_item: StreamTuple) -> float:
        now = self.scheduler.now
        item = raw_item.with_timestamp(now)
        runtime = self._queries[item.query_id]
        self._note_arrival(now)
        self._refresh_time_windows(runtime, now)

        # Probe + insert against the local windows, probe the shadow copies.
        results, evicted = runtime.join.insert_local(item, now)
        results.extend(self._probe_shadow(runtime, item, now))
        self._log_op(runtime, now, "arrival", (item, tuple(evicted)))
        result_pause = self._report_results(runtime, results, now)

        # Summaries update before the forwarding decision (Figure 7 order).
        runtime.policy.on_local_insert(item, evicted)
        runtime.policy.observe_congestion(len(self._queue))
        destinations = runtime.policy.choose_destinations(item)
        destinations = self._apply_degradation(runtime, destinations, now)
        if self._fanout_histogram is not None:
            self._fanout_histogram.observe(float(len(destinations)))

        transmission_seconds = result_pause
        for destination in destinations:
            transmission_seconds += self._send_tuple(item, destination, now)
        transmission_seconds += self._flush_stale_summaries(now)

        self.tuples_processed += 1
        return self.config.cpu_seconds_per_tuple + transmission_seconds

    def _process_local_batch(self, raw_items: Tuple[StreamTuple, ...]) -> float:
        """Service a coalesced block of simultaneous local arrivals.

        Mirrors :meth:`_process_local` tuple-for-tuple, except that the
        summary maintenance runs once per block through the policies'
        vectorized :meth:`on_local_insert_batch` hook and the time-window
        refresh / stale-summary flush run once instead of per tuple.
        Service time stays per-tuple (the block is workload, not a free
        lunch): ``B * cpu_seconds_per_tuple`` plus every transmission
        pause the block's results and forwards incur.
        """
        now = self.scheduler.now
        transmission_seconds = 0.0
        by_query: Dict[int, List[StreamTuple]] = {}
        for raw_item in raw_items:
            by_query.setdefault(raw_item.query_id, []).append(raw_item)
        for query_id, raw_batch in by_query.items():
            runtime = self._queries[query_id]
            self._refresh_time_windows(runtime, now)
            items = [raw.with_timestamp(now) for raw in raw_batch]
            for _ in items:
                self._note_arrival(now)

            # Phase 1: ingest the whole block -- windows, oracle, probes.
            batch_results: List[List[JoinResult]] = []
            batch_evictions: List[List[StreamTuple]] = []
            for item in items:
                results, evicted = runtime.join.insert_local(item, now)
                results.extend(self._probe_shadow(runtime, item, now))
                self._log_op(runtime, now, "arrival", (item, tuple(evicted)))
                batch_results.append(results)
                batch_evictions.append(evicted)
            runtime.policy.on_local_insert_batch(items, batch_evictions)

            # Phase 2: per-tuple reporting and forwarding decisions.
            runtime.policy.observe_congestion(len(self._queue))
            for item, results in zip(items, batch_results):
                transmission_seconds += self._report_results(runtime, results, now)
                destinations = runtime.policy.choose_destinations(item)
                destinations = self._apply_degradation(runtime, destinations, now)
                if self._fanout_histogram is not None:
                    self._fanout_histogram.observe(float(len(destinations)))
                for destination in destinations:
                    transmission_seconds += self._send_tuple(item, destination, now)
        transmission_seconds += self._flush_stale_summaries(now)
        self.tuples_processed += len(raw_items)
        return (
            len(raw_items) * self.config.cpu_seconds_per_tuple + transmission_seconds
        )

    def _apply_degradation(
        self, runtime: QueryRuntime, destinations: List[int], now: float
    ) -> List[int]:
        """Adjust a forwarding decision for peers that cannot be trusted.

        Peers whose summaries aged past the staleness budget are handled
        per ``degradation_mode``: "broadcast" forces a copy to them
        (BASE-style -- their summary can no longer rule matches out, so
        recall is preserved at message cost), "suppress" drops the flow
        toward them.  Suspected-dead peers are always suppressed: their
        copies would be dropped at delivery anyway, and the uplink pause
        they cost is real.
        """
        if self.health is None:
            return destinations
        chosen = set(destinations)
        for peer in runtime.policy.peer_ids:
            self.health.observe_staleness(peer, now)
            if self.health.is_suspected(peer, now):
                if peer in chosen:
                    chosen.discard(peer)
                    self.suppressed_sends += 1
                continue
            if not self.health.is_stale(peer, now):
                continue
            if self.health.settings.degradation_mode == "broadcast":
                if peer not in chosen:
                    chosen.add(peer)
                    self.forced_broadcast_sends += 1
            elif peer in chosen:
                chosen.discard(peer)
                self.suppressed_sends += 1
        return sorted(chosen)

    def _on_peer_recovered(self, peer: int) -> None:
        """A suspected peer spoke again: queue it full-state summaries."""
        self.resyncs += 1
        for query_id in sorted(self._queries):
            self._queries[query_id].policy.resync_peer(peer)

    def send_heartbeats(self) -> None:
        """Emit one best-effort HEARTBEAT probe to every peer.

        Scheduled by the system at the configured interval; header-only
        messages that bypass the service queue (out-of-band liveness
        probes, not workload).  A crashed node stays silent.
        """
        if self.health is None:
            return
        if self.fault_injector is not None and self.fault_injector.node_down(
            self.node_id
        ):
            return
        for peer in self.health.peer_ids:
            self.network.send(
                Message(
                    kind=MessageKind.HEARTBEAT,
                    source=self.node_id,
                    destination=peer,
                )
            )

    # ------------------------------------------------------------------
    # checkpoint / restart recovery (repro.recovery)
    # ------------------------------------------------------------------

    def take_checkpoint(self) -> None:
        """Snapshot this node's durable per-query state into the store.

        Scheduled by the system on the simulated clock at the configured
        checkpoint interval.  A crashed or still-recovering node skips the
        tick -- there is no process to run it.
        """
        if self.recovery_machine is None or self.checkpoint_store is None:
            return
        if self.fault_injector is not None and self.fault_injector.node_down(
            self.node_id
        ):
            return
        if not self.recovery_machine.is_serving:
            return
        now = self.scheduler.now
        blob = encode_blob(self._checkpoint_state(now))
        self.checkpoint_store.save(self.node_id, now, blob)
        self.checkpoints_taken += 1
        self.checkpoint_bytes += len(blob)
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.checkpoint",
                category="recovery",
                node=self.node_id,
                time=now,
                size_bytes=len(blob),
            )

    def _checkpoint_state(self, now: float) -> Dict[str, object]:
        queries: Dict[str, object] = {}
        for query_id in sorted(self._queries):
            runtime = self._queries[query_id]
            queries[str(query_id)] = {
                "policy": runtime.policy.checkpoint_state(),
                "windows": {
                    stream.value: window_state(runtime.join.window(stream))
                    for stream in (StreamId.R, StreamId.S)
                },
                "shadows": {
                    stream.value: {
                        str(origin): window_state(window)
                        for origin, window in sorted(
                            runtime.shadow_windows[stream].items()
                        )
                    }
                    for stream in (StreamId.R, StreamId.S)
                },
                "join": {
                    "local_results": runtime.join.local_results,
                    "probe_results": runtime.join.probe_results,
                },
                # The freshest remote summaries known now: restore replays
                # them through on_remote_summary, and the delta state
                # transfer claims them as its resync base (the blob's
                # taken_at is the watermark).  Policies without remote
                # state (BASE, round-robin) checkpoint an empty list.
                "remote": (
                    runtime.policy.remote.checkpoint_state()
                    if getattr(runtime.policy, "remote", None) is not None
                    else []
                ),
            }
        return {
            "version": CHECKPOINT_VERSION,
            "node": self.node_id,
            "taken_at": now,
            "interarrival": {
                "mean": self._mean_interarrival,
                "last": self._last_arrival_time,
            },
            "queries": queries,
        }

    def _restore_state(self, state: Dict[str, object]) -> None:
        interarrival = state["interarrival"]
        self._mean_interarrival = float(interarrival["mean"])
        last = interarrival["last"]
        self._last_arrival_time = None if last is None else float(last)
        self._last_contact = {}
        self._resync_claims = {}
        self._resync_bases = {}
        self._restored_watermark = float(state["taken_at"])
        for query_key, query_state in state["queries"].items():
            query_id = int(query_key)
            runtime = self._queries[query_id]
            runtime.policy.restore_state(query_state["policy"])
            for stream in (StreamId.R, StreamId.S):
                restore_window(
                    runtime.join.window(stream),
                    query_state["windows"][stream.value],
                )
                shadows: Dict[int, SlidingWindow] = {}
                for origin_key, shadow_state in query_state["shadows"][
                    stream.value
                ].items():
                    window = self._make_window(shadow=True)
                    restore_window(window, shadow_state)
                    shadows[int(origin_key)] = window
                runtime.shadow_windows[stream] = shadows
            runtime.join.local_results = int(query_state["join"]["local_results"])
            runtime.join.probe_results = int(query_state["join"]["probe_results"])
            self._restore_remote_summaries(
                query_id, runtime, query_state.get("remote", [])
            )

    def _restore_remote_summaries(
        self, query_id: int, runtime: QueryRuntime, entries: List[List[object]]
    ) -> None:
        """Replay checkpointed remote summaries through the policy.

        Replaying through ``on_remote_summary`` (rather than poking the
        table directly) rebuilds every derived cache -- remote Bloom
        filters, sketch copies -- exactly as a live broadcast would.  The
        replayed snapshot slots double as the bases the delta state
        transfer claims toward each peer."""
        managers = getattr(runtime.policy, "managers", None)
        if not entries or managers is None:
            return
        for peer, stream_value, version, encoded in entries:
            peer = int(peer)
            stream = StreamId(stream_value)
            payload = decode_payload(encoded)
            manager = managers[stream]
            algorithm = getattr(manager, "algorithm", None)
            if algorithm is None:
                algorithm = manager.ALGORITHM
            update = SummaryUpdate(
                algorithm=algorithm,
                stream=stream,
                version=int(version),
                window_size=manager.window_size,
                entries=(
                    getattr(manager, "entries", None) or len(payload)
                ),
                payload=payload,
                full_state=True,
            )
            runtime.policy.on_remote_summary(peer, update)
            if self._delta_transfer_enabled and isinstance(payload, np.ndarray):
                slot = (query_id, algorithm, stream_value)
                self._resync_claims.setdefault(peer, {})[slot] = (
                    int(version),
                    payload_digest(payload),
                )
                self._resync_bases.setdefault(peer, {})[slot] = payload

    def on_crash(self) -> None:
        """The restartable crash started: the process and its soft state die."""
        if self.recovery_machine is None or not self.recovery_machine.can_apply(
            "crash"
        ):
            return
        now = self.scheduler.now
        self.recovery_machine.apply("crash", now)
        # Everything in flight inside the process is lost; timers from an
        # earlier recovery incarnation must not fire into this one.
        self._queue.clear()
        self._pending_messages.clear()
        self._replay_log.clear()
        # The queue the dead process measured died with it: a restarted
        # node's peak depth and congestion throttle must reflect only
        # what the new incarnation observes.
        self.max_queue_depth = 0
        for runtime in self._queries.values():
            runtime.policy.reset_congestion()
        self._resync_claims = {}
        self._resync_bases = {}
        self._restored_watermark = None
        self._cancel_recovery_timers()
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.crash", category="recovery", node=self.node_id, time=now
            )

    def on_restart(self) -> None:
        """The downtime elapsed: boot, then restore after ``restore_delay_s``."""
        if self.recovery_machine is None or not self.recovery_machine.can_apply(
            "restart"
        ):
            return
        now = self.scheduler.now
        self.recovery_machine.apply("restart", now)
        self.restarts += 1
        if self.transport is not None:
            # ARQ sequence numbers died with the process; peers reset
            # their side on receiving our state-transfer request.
            self.transport.reset()
        if self.health is not None:
            self.health.note_restart(now)
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.restart", category="recovery", node=self.node_id, time=now
            )
        self._restore_event = self.scheduler.schedule_in(
            self.recovery_settings.restore_delay_s,
            self._complete_restore,
            key=self._event_keys.next_key(),
            home=self.node_id,
        )

    def _complete_restore(self) -> None:
        self._restore_event = None
        now = self.scheduler.now
        checkpoint = None
        if self.checkpoint_store is not None:
            checkpoint = self.checkpoint_store.latest(self.node_id)
        if checkpoint is not None:
            self._restore_state(checkpoint.state())
        replay = list(self._replay_log)
        self._replay_log.clear()
        self.recovery_machine.apply("restored", now)
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.restored",
                category="recovery",
                node=self.node_id,
                time=now,
                checkpoint_age_s=(
                    now - checkpoint.taken_at if checkpoint is not None else -1.0
                ),
                replayed_tuples=len(replay),
            )
        # Replay the outage's logged arrivals through the normal local
        # path (windows, summaries, oracle, forwarding), then the
        # deliveries that piled up while mid-restore.
        self.tuples_replayed += len(replay)
        for item in replay:
            self._enqueue(("local", item))
        pending = list(self._pending_messages)
        self._pending_messages.clear()
        for message in pending:
            self.on_message(message)
        self._begin_catchup(now)

    def _begin_catchup(self, now: float) -> None:
        self._synced_peers = set()
        self._transfer_attempts = {}
        if not self._peer_ids:
            self._complete_catchup(degraded=False)
            return
        for peer in self._peer_ids:
            self._send_transfer_request(peer)
        self._catchup_deadline = self.scheduler.schedule_in(
            self.recovery_settings.catchup_timeout_s,
            self._on_catchup_deadline,
            key=self._event_keys.next_key(),
            home=self.node_id,
        )

    def _send_transfer_request(self, peer: int) -> None:
        attempts = self._transfer_attempts.get(peer, 0)
        self._transfer_attempts[peer] = attempts + 1
        if self._delta_transfer_enabled:
            # The watermark and per-slot claims ride the fixed request
            # header (like Message.seq): the request stays header-sized
            # on the modeled wire in both transfer modes.
            detail = {
                "watermark": self._restored_watermark,
                "slots": dict(self._resync_claims.get(peer, {})),
            }
        else:
            detail = None
        request = Message(
            kind=MessageKind.STATE_TRANSFER,
            source=self.node_id,
            destination=peer,
            payload=("request", detail),
        )
        # Deliberately best-effort: the peer's ARQ receive channel for us
        # still expects the pre-crash sequence numbers until it resets on
        # receipt, so a sequenced request would be suppressed as a
        # duplicate.  Loss is covered by the bounded backoff retries.
        self.network.send(request)
        self.state_transfer_bytes += request.size_bytes()
        if attempts < self.recovery_settings.max_transfer_retries:
            delay = self.recovery_settings.transfer_timeout_s * (
                self.recovery_settings.transfer_backoff ** attempts
            )
            self._transfer_timers[peer] = self.scheduler.schedule_in(
                delay,
                lambda p=peer: self._on_transfer_timeout(p),
                key=self._event_keys.next_key(),
                home=self.node_id,
            )

    def _on_transfer_timeout(self, peer: int) -> None:
        self._transfer_timers.pop(peer, None)
        if (
            self.recovery_machine is None
            or self.recovery_machine.phase is not RecoveryPhase.CATCHING_UP
            or peer in self._synced_peers
        ):
            return
        self._send_transfer_request(peer)

    def _mark_peer_synced(self, peer: int, now: float) -> None:
        if (
            self.recovery_machine is None
            or self.recovery_machine.phase is not RecoveryPhase.CATCHING_UP
            or peer in self._synced_peers
        ):
            return
        self._synced_peers.add(peer)
        timer = self._transfer_timers.pop(peer, None)
        if timer is not None:
            timer.cancel()
        if len(self._synced_peers) >= len(self._peer_ids):
            self._complete_catchup(degraded=False)

    def _on_catchup_deadline(self) -> None:
        self._catchup_deadline = None
        if (
            self.recovery_machine is not None
            and self.recovery_machine.phase is RecoveryPhase.CATCHING_UP
        ):
            self._complete_catchup(degraded=True)

    def _complete_catchup(self, degraded: bool) -> None:
        now = self.scheduler.now
        self._cancel_recovery_timers(keep_restore=True)
        self.recovery_machine.apply("timeout" if degraded else "synced", now)
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.live",
                category="recovery",
                node=self.node_id,
                time=now,
                degraded=degraded,
                rejoin_latency_s=self.recovery_machine.rejoin_latencies[-1],
                peers_synced=len(self._synced_peers),
            )

    def _cancel_recovery_timers(self, keep_restore: bool = False) -> None:
        if not keep_restore and self._restore_event is not None:
            self._restore_event.cancel()
            self._restore_event = None
        for timer in self._transfer_timers.values():
            timer.cancel()
        self._transfer_timers.clear()
        self._transfer_attempts = {}
        if self._catchup_deadline is not None:
            self._catchup_deadline.cancel()
            self._catchup_deadline = None

    def _process_state_transfer(self, message: Message) -> float:
        """Serve or absorb recovery anti-entropy traffic."""
        now = self.scheduler.now
        direction = message.payload[0]
        if direction == "request":
            return self._serve_state_transfer(message, now)
        # A peer's response: apply its snapshots (or deltas) and mark it
        # synced.
        self.state_transfer_bytes += message.size_bytes()
        if direction == "delta_response":
            _, _, slots = message.payload
            for slot in slots:
                self._apply_transfer_slot(message.source, slot)
            received = bool(slots)
        else:
            _, updates = message.payload
            for update_query_id, update in updates:
                self._queries[update_query_id].policy.on_remote_summary(
                    message.source, update
                )
            received = bool(updates)
        if received and self.health is not None:
            self.health.summary_received(message.source, now)
        self._mark_peer_synced(message.source, now)
        return self.config.cpu_seconds_per_probe

    def _serve_state_transfer(self, message: Message, now: float) -> float:
        """Answer a rejoining peer's resync request.

        The requester restarted from scratch: reset our ARQ channels
        toward it (its sequence numbers are back at zero) and resync
        every query -- as watermark deltas where its claims check out,
        as full snapshots otherwise (and always for legacy requests).
        """
        if self.transport is not None:
            self.transport.reset_peer(message.source)
        self.resyncs += 1
        for query_id in sorted(self._queries):
            self._queries[query_id].policy.resync_peer(message.source)
        updates = self._take_pending_updates(message.source)
        full_entries = sum(update.entries for _, update in updates)
        detail = message.payload[1]
        if detail is None:
            response = Message(
                kind=MessageKind.STATE_TRANSFER,
                source=self.node_id,
                destination=message.source,
                payload=("response", updates),
                summary_entries=full_entries,
            )
        else:
            response = self._build_delta_response(
                message.source, detail, updates, full_entries, now
            )
        if self.transport is not None:
            self.transport.send(response)
        else:
            self.network.send(response)
        self.state_transfer_bytes += response.size_bytes()
        self._last_contact[message.source] = now
        # The sender pause is charged at the full-snapshot size in both
        # modes: assembling a delta still walks the complete summary
        # state, and pinning the serve timeline keeps delta on/off runs
        # on identical event schedules -- the savings show up on the
        # wire counters, not the clock.
        full_size = HEADER_BYTES + full_entries * SUMMARY_COEFFICIENT_BYTES
        pause = full_size * 8.0 / self.config.sender_paced_bps
        return self.config.cpu_seconds_per_probe + pause

    def _build_delta_response(
        self,
        peer: int,
        detail: Dict[str, object],
        updates: List[Tuple[int, SummaryUpdate]],
        full_entries: int,
        now: float,
    ) -> Message:
        """Encode one resync response against the requester's claims.

        Each snapshot slot the requester claimed (version + digest) is
        looked up in the outbox's :class:`SummaryHistory`; if the claimed
        base is still there and verifies, only the changed entries ship.
        Any claim the history cannot honor downgrades the *whole*
        response to full snapshots (one counted fallback), so a response
        is never a mix of trusted and untrusted bases."""
        claims = detail.get("slots") or {}
        prepared: List[Tuple[tuple, int]] = []
        fallback = False
        for query_id, update in updates:
            slot_key = (query_id, update.algorithm, update.stream.value)
            claim = claims.get(slot_key)
            chosen = (("full", query_id, update), update.entries)
            if claim is not None and isinstance(update.payload, np.ndarray):
                version, digest = claim
                history = self._queries[query_id].policy.outbox.history
                base = (
                    history.view(update.algorithm, update.stream, int(version))
                    if history is not None
                    else None
                )
                if base is None or payload_digest(base) != digest:
                    # The snapshot ring no longer covers the claimed
                    # version (or the digest disagrees -- version
                    # counters roll back across our own restores, so
                    # versions alone are never trusted).
                    fallback = True
                else:
                    blob = encode_delta(base, update.payload)
                    if blob is not None:
                        wire = delta_wire_entries(blob, update.entries)
                        if wire < update.entries:
                            chosen = (
                                (
                                    "delta",
                                    query_id,
                                    update.algorithm,
                                    update.stream.value,
                                    update.version,
                                    update.window_size,
                                    update.entries,
                                    blob,
                                ),
                                wire,
                            )
            prepared.append(chosen)
        if fallback:
            prepared = [
                (("full", query_id, update), update.entries)
                for query_id, update in updates
            ]
        slots = [slot for slot, _ in prepared]
        wire_entries = sum(wire for _, wire in prepared)
        any_delta = any(slot[0] == "delta" for slot in slots)
        response = Message(
            kind=MessageKind.STATE_TRANSFER,
            source=self.node_id,
            destination=peer,
            payload=("delta_response", fallback, slots),
            summary_entries=wire_entries,
        )
        size = response.size_bytes()
        full_size = HEADER_BYTES + full_entries * SUMMARY_COEFFICIENT_BYTES
        if any_delta:
            self.state_transfer_delta_bytes += size
            self.state_transfer_bytes_saved += full_size - size
        else:
            self.state_transfer_full_bytes += size
        if fallback:
            self.state_transfer_fallbacks += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "recovery.state_transfer",
                category="recovery",
                node=self.node_id,
                time=now,
                peer=peer,
                kind="delta" if any_delta else "full",
                size_bytes=size,
                saved_bytes=max(0, full_size - size),
                watermark=detail.get("watermark"),
            )
            if fallback:
                self.telemetry.emit(
                    "recovery.transfer_fallback",
                    category="recovery",
                    node=self.node_id,
                    time=now,
                    peer=peer,
                    watermark=detail.get("watermark"),
                )
        return response

    def _apply_transfer_slot(self, source: int, slot: tuple) -> None:
        """Absorb one slot of a delta-protocol resync response."""
        if slot[0] == "full":
            _, query_id, update = slot
            self._queries[query_id].policy.on_remote_summary(source, update)
            return
        (
            _,
            query_id,
            algorithm,
            stream_value,
            version,
            window_size,
            entries,
            blob,
        ) = slot
        # Deltas apply against the *restored* base we claimed, not the
        # live remote table: a retransmitted response then still applies
        # cleanly after an earlier copy already advanced the table.
        base = self._resync_bases.get(source, {}).get(
            (query_id, algorithm, stream_value)
        )
        update = SummaryUpdate(
            algorithm=algorithm,
            stream=StreamId(stream_value),
            version=int(version),
            window_size=window_size,
            entries=entries,
            payload=apply_delta(base, blob),
            full_state=True,
        )
        self._queries[query_id].policy.on_remote_summary(source, update)

    def _probe_shadow(
        self, runtime: QueryRuntime, item: StreamTuple, now: float
    ) -> List[JoinResult]:
        """Join a local arrival against forwarded copies of the other stream."""
        results = []
        for shadow in runtime.shadow_windows[item.stream.other].values():
            for match in shadow.matches(item.key):
                if item.stream is StreamId.R:
                    results.append(JoinResult(item, match, self.node_id, now))
                else:
                    results.append(JoinResult(match, item, self.node_id, now))
        return results

    def _log_op(
        self, runtime: QueryRuntime, now: float, kind: str, payload: tuple
    ) -> None:
        """Defer one oracle/collector operation to collect-time replay.

        The ground-truth oracle and result collector are the only pieces
        of *global* mutable state in the data plane; touching them from
        inside the event loop would force every execution engine to
        reproduce the exact global interleaving of node events.  Logging
        the operations instead -- keyed ``(time, node, per-node seq)`` --
        lets both the serial and the sharded engine replay them in one
        canonical order, so accuracy accounting is engine-independent by
        construction.
        """
        self.accounting_ops.append(
            (now, self.node_id, self._acct_seq, runtime.query_id, kind, payload)
        )
        self._acct_seq += 1

    def _report_results(
        self, runtime: QueryRuntime, results: List[JoinResult], now: float
    ) -> float:
        """Record results; ship each cross-node result to its remote owner.

        "Matching tuples must still be transmitted over the network in
        order to provide the complete result" (Section 5.3) -- a result
        pair discovered here whose other member originated elsewhere costs
        one RESULT message to that origin.  Purely local pairs are
        consumed in place.

        Deduplication is strictly node-local: a real site cannot know
        what its peers already reported (or what the ground truth is), so
        it suppresses only pairs *it* shipped before and pays the wire
        cost for cross-site duplicates and spurious matches -- the query
        consumer deduplicates, as the paper's result-collection model
        assumes.  Accuracy classification happens at collect-time replay
        against the oracle, never here.
        """
        if results:
            self._log_op(runtime, now, "report", tuple(results))
        pause = 0.0
        for result in results:
            pair = result.pair_id
            if pair in runtime.seen_pairs:
                continue
            runtime.seen_pairs.add(pair)
            remote_origin = None
            if result.r_tuple.origin_node != self.node_id:
                remote_origin = result.r_tuple.origin_node
            elif result.s_tuple.origin_node != self.node_id:
                remote_origin = result.s_tuple.origin_node
            if remote_origin is None:
                continue
            message = Message(
                kind=MessageKind.RESULT,
                source=self.node_id,
                destination=remote_origin,
                payload=(runtime.query_id, None, []),
            )
            self.network.send(message)
            pause += self._pause_seconds(message)
        return pause

    def _take_pending_updates(self, destination: int) -> List[Tuple[int, object]]:
        """Drain every query's outbox for ``destination`` (shared channel)."""
        updates: List[Tuple[int, object]] = []
        for query_id in sorted(self._queries):
            for update in self._queries[query_id].policy.outbox.take(destination):
                updates.append((query_id, update))
        return updates

    def _send_tuple(self, item: StreamTuple, destination: int, now: float) -> float:
        """Transmit a tuple with piggy-backed summary deltas; returns pause."""
        updates = self._take_pending_updates(destination)
        message = Message(
            kind=MessageKind.TUPLE,
            source=self.node_id,
            destination=destination,
            payload=(item.query_id, item, updates),
            summary_entries=sum(update.entries for _, update in updates),
        )
        self.network.send(message)
        self._last_contact[destination] = now
        return self._pause_seconds(message)

    def _flush_stale_summaries(self, now: float) -> float:
        """Figure 7's standalone path: peers starved of tuples still get
        summary updates, after a dynamic multiple of the inter-arrival time."""
        if self.degradation_ladder is not None and self.degradation_ladder.is_degraded:
            # THROTTLED/SHEDDING suppress the standalone broadcast path
            # outright: starved peers fall back on their last summaries
            # (version guards make stale reads safe), and the uplink
            # pauses saved go to draining the backlog instead.
            self.suppressed_flushes += 1
            return 0.0
        if self._mean_interarrival <= 0:
            return 0.0
        threshold = self.config.summary_flush_multiple * self._mean_interarrival
        pause = 0.0
        starved = set()
        for runtime in self._queries.values():
            starved.update(runtime.policy.outbox.peers_with_pending())
        for peer in sorted(starved):
            last = self._last_contact.get(peer, 0.0)
            if now - last < threshold:
                continue
            updates = self._take_pending_updates(peer)
            if not updates:
                continue
            message = Message(
                kind=MessageKind.SUMMARY,
                source=self.node_id,
                destination=peer,
                payload=(0, None, updates),
                summary_entries=sum(update.entries for _, update in updates),
            )
            if self.transport is not None:
                # Standalone summaries are pure control traffic: a lost one
                # starves the peer until the next flush, so they ride the
                # reliable channel.  (Piggy-backed copies stay best-effort;
                # version guards already handle their loss.)
                self.transport.send(message)
            else:
                self.network.send(message)
            self._last_contact[peer] = now
            self.standalone_summaries_sent += 1
            pause += self._pause_seconds(message)
        return pause

    def _pause_seconds(self, message: Message) -> float:
        """Sender-side serialization pause (the 90 kbps emulation)."""
        return message.size_bytes() * 8.0 / self.config.sender_paced_bps

    def _note_arrival(self, now: float) -> None:
        if self._last_arrival_time is not None:
            gap = now - self._last_arrival_time
            if self._mean_interarrival == 0.0:
                self._mean_interarrival = gap
            else:
                self._mean_interarrival = 0.9 * self._mean_interarrival + 0.1 * gap
        self._last_arrival_time = now

    # ------------------------------------------------------------------
    # remote message processing
    # ------------------------------------------------------------------

    def _process_message(self, message: Message) -> float:
        now = self.scheduler.now
        if message.kind is MessageKind.STATE_TRANSFER:
            return self._process_state_transfer(message)
        query_id, item, updates = message.payload
        for update_query_id, update in updates:
            self._queries[update_query_id].policy.on_remote_summary(
                message.source, update
            )
        if updates and self.health is not None:
            self.health.summary_received(message.source, now)
        if item is None:
            return self.config.cpu_seconds_per_probe
        runtime = self._queries[item.query_id]
        self._refresh_time_windows(runtime, now)
        results = runtime.join.probe_remote(item, now)
        result_pause = self._report_results(runtime, results, now)
        self._shadow_window(runtime, item.stream, item.origin_node).append(item)
        self.remote_tuples_processed += 1
        return self.config.cpu_seconds_per_probe + result_pause

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def diagnostics(self) -> Dict[str, float]:
        counters = {
            "tuples_processed": float(self.tuples_processed),
            "remote_tuples_processed": float(self.remote_tuples_processed),
            "standalone_summaries": float(self.standalone_summaries_sent),
            "max_queue_depth": float(self.max_queue_depth),
            "busy_seconds": self.busy_seconds,
            "local_results": float(
                sum(r.join.local_results for r in self._queries.values())
            ),
            "probe_results": float(
                sum(r.join.probe_results for r in self._queries.values())
            ),
        }
        for runtime in self._queries.values():
            for key, value in runtime.policy.diagnostics().items():
                counters[key] = counters.get(key, 0.0) + value
        if self.fault_injector is not None:
            counters["local_arrivals_dropped"] = float(self.local_arrivals_dropped)
        if self.transport is not None:
            for key, value in self.transport.counters().items():
                counters["reliable_" + key] = value
        if self.health is not None:
            for key, value in self.health.counters().items():
                counters[key] = value
            counters["forced_broadcast_sends"] = float(self.forced_broadcast_sends)
            counters["suppressed_sends"] = float(self.suppressed_sends)
            counters["resyncs"] = float(self.resyncs)
        if self.degradation_ladder is not None:
            counters["shed_tuples"] = float(self.shed_tuples)
            counters["shed_messages"] = float(self.shed_messages)
            counters["suppressed_flushes"] = float(self.suppressed_flushes)
            ladder_counters = self.degradation_ladder.counters(self.scheduler.now)
            for key, value in ladder_counters.items():
                counters["overload_" + key] = value
        if self.recovery_machine is not None:
            counters["restarts"] = float(self.restarts)
            counters["checkpoints_taken"] = float(self.checkpoints_taken)
            counters["checkpoint_bytes"] = float(self.checkpoint_bytes)
            counters["tuples_logged"] = float(self.tuples_logged)
            counters["tuples_replayed"] = float(self.tuples_replayed)
            counters["replay_dropped"] = float(self.replay_dropped)
            counters["state_transfer_bytes"] = float(self.state_transfer_bytes)
            counters["state_transfer_delta_bytes"] = float(
                self.state_transfer_delta_bytes
            )
            counters["state_transfer_full_bytes"] = float(
                self.state_transfer_full_bytes
            )
            counters["state_transfer_bytes_saved"] = float(
                self.state_transfer_bytes_saved
            )
            counters["state_transfer_fallbacks"] = float(
                self.state_transfer_fallbacks
            )
            for key, value in self.recovery_machine.counters().items():
                counters["recovery_" + key] = value
        return counters

    def runtime_record(self) -> Dict[str, object]:
        """Everything the collection pass needs from this node, as data.

        The sharded engine ships one record per home node back to the
        parent process; the serial engine builds identical records from
        the live nodes, so ``DistributedJoinSystem._collect`` stays
        engine-agnostic.  Consuming the record drains the accounting
        log (replay happens exactly once per run either way).
        """
        record: Dict[str, object] = {
            "node_id": self.node_id,
            "diagnostics": self.diagnostics(),
            "accounting_ops": self.accounting_ops,
            "local_arrivals_dropped": self.local_arrivals_dropped,
            "transport": (
                self.transport.counters() if self.transport is not None else None
            ),
            "health": (
                self.health.counters() if self.health is not None else None
            ),
            "forced_broadcast_sends": self.forced_broadcast_sends,
            "suppressed_sends": self.suppressed_sends,
            "resyncs": self.resyncs,
            "restarts": self.restarts,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "tuples_logged": self.tuples_logged,
            "tuples_replayed": self.tuples_replayed,
            "replay_dropped": self.replay_dropped,
            "state_transfer_bytes": self.state_transfer_bytes,
            "state_transfer_delta_bytes": self.state_transfer_delta_bytes,
            "state_transfer_full_bytes": self.state_transfer_full_bytes,
            "state_transfer_bytes_saved": self.state_transfer_bytes_saved,
            "state_transfer_fallbacks": self.state_transfer_fallbacks,
            "rejoin_latencies": (
                list(self.recovery_machine.rejoin_latencies)
                if self.recovery_machine is not None
                else None
            ),
            "recovery_triggers": (
                [trigger for _, trigger, _ in self.recovery_machine.history]
                if self.recovery_machine is not None
                else None
            ),
            "shed_tuples": self.shed_tuples,
            "shed_messages": self.shed_messages,
            "suppressed_flushes": self.suppressed_flushes,
            "degradation_mode": (
                self.degradation_ladder.mode.value
                if self.degradation_ladder is not None
                else None
            ),
            "overload_residency": (
                self.degradation_ladder.residency_seconds(self.scheduler.now)
                if self.degradation_ladder is not None
                else None
            ),
            "overload_transitions": (
                len(self.degradation_ladder.history)
                if self.degradation_ladder is not None
                else None
            ),
        }
        self.accounting_ops = []
        return record
