"""The paper's contribution: DFT-driven approximate distributed joins.

* :mod:`repro.core.correlation` -- stream-similarity estimation from
  exchanged DFT coefficients (Equations 4-8).
* :mod:`repro.core.flow` -- per-peer forwarding probabilities with the
  T_i in [1, log N] budget (Equation 9), worst-case detection, and the
  round-robin fallback.
* :mod:`repro.core.compression` -- compression-factor selection from the
  E[MSE] < 0.25 lossless criterion (Equations 10-12, Figure 6).
* :mod:`repro.core.bounds` -- the analytical error/message bounds of
  Theorems 1-3 (Figures 3 and 4).
* :mod:`repro.core.summaries` -- summary-dissemination bookkeeping
  (coefficient deltas, snapshot tables, piggy-backing).
* :mod:`repro.core.policies` -- the forwarding policies: BASE,
  ROUND_ROBIN, DFT, DFTT, BLOOM, SKCH.
* :mod:`repro.core.node` / :mod:`repro.core.system` -- the distributed
  stream-processing runtime tying everything to the simulated WAN.

The runtime classes (``JoinProcessingNode``, ``DistributedJoinSystem``,
``RunResult``) are loaded lazily (PEP 562): they depend on
:mod:`repro.config`, which itself imports the analysis modules above, and
the lazy hop keeps that dependency acyclic.
"""

from repro.core.bounds import (
    uniform_error_bound,
    uniform_message_complexity,
    zipf_error_bound,
)
from repro.core.compression import (
    choose_compression_factor,
    mse_for_budget,
    mse_statistics,
)
from repro.core.correlation import (
    SimilarityMeasure,
    distribution_similarity,
    max_lag_correlation,
    spectral_correlation_coefficient,
)
from repro.core.flow import FlowController, FlowSettings

__all__ = [
    "SimilarityMeasure",
    "spectral_correlation_coefficient",
    "max_lag_correlation",
    "distribution_similarity",
    "FlowController",
    "FlowSettings",
    "choose_compression_factor",
    "mse_for_budget",
    "mse_statistics",
    "uniform_error_bound",
    "uniform_message_complexity",
    "zipf_error_bound",
    "JoinProcessingNode",
    "DistributedJoinSystem",
    "RunResult",
]

_LAZY = {
    "JoinProcessingNode": ("repro.core.node", "JoinProcessingNode"),
    "DistributedJoinSystem": ("repro.core.system", "DistributedJoinSystem"),
    "RunResult": ("repro.core.results", "RunResult"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
