"""Peer health: failure detection, staleness tracking, recovery latency.

The filtering policies are only as good as the summaries they filter on.
:class:`PeerHealthMonitor` gives each node two independent, per-peer
signals the runtime uses to degrade gracefully (see
:meth:`repro.core.node.JoinProcessingNode._apply_degradation`):

* **liveness** -- a heartbeat-fed, timeout-based failure detector in the
  style of eventually-perfect detectors: silence beyond
  ``suspect_timeout_s`` marks a peer *suspected*; the first message of
  any kind clears the suspicion and records the recovery latency.
  Detection is evaluated lazily at forwarding decisions rather than with
  dedicated timer events, so an idle mesh schedules nothing extra.
* **summary staleness** -- the age of the freshest summary update applied
  from the peer.  Past ``staleness_budget_s`` the peer's summary is no
  longer trusted for filtering, even if the peer is demonstrably alive
  (the gray-failure case: the link drops summaries but heartbeats slip
  through).

The monitor also keeps a small fixed-bucket histogram of the staleness
observed at each forwarding decision, which ends up in the run result --
the distribution, not just the worst case, is what tells you whether the
control loop kept up.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.reliable import ReliabilitySettings

STALENESS_BUCKETS_S: Tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0)
"""Upper edges of the staleness histogram buckets (the last bucket is
open-ended)."""


class PeerHealthMonitor:
    """Per-peer liveness and summary-freshness state for one node."""

    def __init__(
        self,
        node_id: int,
        peer_ids: Tuple[int, ...],
        settings: ReliabilitySettings,
        on_recovery: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.peer_ids = tuple(peer_ids)
        self.settings = settings
        self._on_recovery = on_recovery
        self._last_heard: Dict[int, float] = {peer: 0.0 for peer in self.peer_ids}
        self._last_summary: Dict[int, float] = {peer: 0.0 for peer in self.peer_ids}
        self._suspected_at: Dict[int, float] = {}
        self.failures_detected = 0
        self.recoveries = 0
        self.recovery_latencies: List[float] = []
        self.staleness_histogram: List[int] = [0] * (len(STALENESS_BUCKETS_S) + 1)
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub`; suspicion and
        recovery transitions are emitted as health events when set."""

    # ------------------------------------------------------------------
    # signal ingestion
    # ------------------------------------------------------------------

    def heard(self, peer: int, now: float) -> None:
        """Any message from ``peer`` arrived (tuple, summary, ack, heartbeat)."""
        if peer not in self._last_heard:
            return
        self._last_heard[peer] = now
        suspected_at = self._suspected_at.pop(peer, None)
        if suspected_at is not None:
            self.recoveries += 1
            self.recovery_latencies.append(now - suspected_at)
            if self.telemetry is not None:
                self.telemetry.emit(
                    "health.recovered",
                    category="health",
                    node=self.node_id,
                    time=now,
                    peer=peer,
                    latency_s=now - suspected_at,
                )
            # Give the peer a staleness grace period: a resync is on its
            # way (triggered below), and judging the peer stale the very
            # tick it came back would flap the degradation state.
            self._last_summary[peer] = now
            if self._on_recovery is not None:
                self._on_recovery(peer)

    def summary_received(self, peer: int, now: float) -> None:
        """A summary update from ``peer`` was applied."""
        if peer in self._last_summary:
            self._last_summary[peer] = now

    def note_restart(self, now: float) -> None:
        """The *local* node restarted after a crash (see repro.recovery).

        Everything this monitor knew predates the outage: peers were
        silent only because we were down.  Grant every peer a fresh grace
        period rather than suspecting the whole mesh on the first
        forwarding decision after restore.
        """
        for peer in self.peer_ids:
            self._last_heard[peer] = now
            self._last_summary[peer] = now
        self._suspected_at.clear()

    # ------------------------------------------------------------------
    # queries (evaluated lazily; `heard` clears suspicion)
    # ------------------------------------------------------------------

    def is_suspected(self, peer: int, now: float) -> bool:
        """Whether ``peer`` has been silent beyond the suspect timeout."""
        if peer in self._suspected_at:
            return True
        if now - self._last_heard[peer] > self.settings.suspect_timeout_s:
            self._suspected_at[peer] = now
            self.failures_detected += 1
            if self.telemetry is not None:
                self.telemetry.emit(
                    "health.suspected",
                    category="health",
                    node=self.node_id,
                    time=now,
                    peer=peer,
                    silent_s=now - self._last_heard[peer],
                )
            return True
        return False

    def staleness(self, peer: int, now: float) -> float:
        """Age of the freshest summary applied from ``peer``."""
        return now - self._last_summary[peer]

    def is_stale(self, peer: int, now: float) -> bool:
        """Whether ``peer``'s summary is older than the staleness budget."""
        budget = self.settings.staleness_budget_s
        if budget <= 0:
            return False
        return self.staleness(peer, now) > budget

    def observe_staleness(self, peer: int, now: float) -> None:
        """Record one forwarding decision's view of ``peer``'s staleness."""
        age = self.staleness(peer, now)
        for index, edge in enumerate(STALENESS_BUCKETS_S):
            if age <= edge:
                self.staleness_histogram[index] += 1
                return
        self.staleness_histogram[-1] += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        counters: Dict[str, float] = {
            "failures_detected": float(self.failures_detected),
            "recoveries": float(self.recoveries),
        }
        if self.recovery_latencies:
            counters["recovery_latency_mean_s"] = sum(self.recovery_latencies) / len(
                self.recovery_latencies
            )
            counters["recovery_latency_max_s"] = max(self.recovery_latencies)
        previous_edge = 0.0
        for index, edge in enumerate(STALENESS_BUCKETS_S):
            counters["staleness_le_%gs" % edge] = float(self.staleness_histogram[index])
            previous_edge = edge
        counters["staleness_gt_%gs" % previous_edge] = float(self.staleness_histogram[-1])
        return counters
