"""Overload protection: bounded queues, deterministic shedding, and the
graceful-degradation ladder.  See ``docs/overload.md``."""

from repro.overload.detector import OverloadDetector
from repro.overload.ladder import DegradationLadder, DegradationMode
from repro.overload.settings import OverloadSettings

__all__ = [
    "DegradationLadder",
    "DegradationMode",
    "OverloadDetector",
    "OverloadSettings",
]
