"""Knobs for the overload-protection subsystem.

Everything is observed on the *simulated* clock and validated up front,
in the same style as :class:`~repro.recovery.settings.RecoverySettings`.
The master switch defaults off: a run without overload protection is
bit-for-bit the pre-overload simulator (service queues grow without
bound, exactly as the paper's prototype would under a saturating
arrival surge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OverloadSettings:
    """Queue bounds, detector watermarks, and ladder hysteresis."""

    enabled: bool = False
    """Master switch.  Off (the default) keeps legacy semantics: queues
    are unbounded and nodes never shed or throttle."""

    queue_bound: int = 64
    """Hard cap on a node's service-queue depth.  At the bound the node
    sheds deterministically (lowest-priority entry first); recovery
    anti-entropy (STATE_TRANSFER) is never shed."""

    throttle_watermark: int = 16
    """Queue depth at which the ladder steps NORMAL -> THROTTLED."""

    throttle_clear: int = 4
    """Depth at or below which THROTTLED may step back to NORMAL (after
    ``min_dwell_s``) -- the hysteresis gap prevents mode flapping."""

    shed_watermark: int = 48
    """Queue depth at which the ladder steps THROTTLED -> SHEDDING."""

    shed_clear: int = 24
    """Depth at or below which SHEDDING may relax back to THROTTLED
    (after ``min_dwell_s``)."""

    min_dwell_s: float = 0.25
    """Minimum simulated seconds a node stays in a degraded mode before
    stepping down, even if the queue already drained -- the temporal half
    of the hysteresis."""

    throttle_refresh_stretch: int = 4
    """Multiplier applied to the summary refresh cadence while degraded
    (THROTTLED or SHEDDING): summaries recompute and broadcast this many
    times less often, shrinking the control-plane share of a saturated
    uplink."""

    link_backlog_bound_s: float = 0.0
    """Per-link send-backlog cap in seconds of serialization delay; a
    message that would queue behind more than this is shed at the send
    buffer (it never serializes).  0 keeps link backlogs unbounded."""

    @classmethod
    def for_queue_bound(
        cls, queue_bound: int, link_backlog_bound_s: float = 0.0
    ) -> "OverloadSettings":
        """Enabled settings with watermarks proportional to the bound.

        Throttle engages at a quarter of the bound, shedding at three
        quarters, and each clear level sits below half its watermark, so
        any ``queue_bound >= 1`` yields a valid hysteresis ladder.
        """
        settings = cls(
            enabled=True,
            queue_bound=queue_bound,
            shed_watermark=max(1, (3 * queue_bound) // 4),
            shed_clear=max(0, queue_bound // 2 - 1),
            throttle_watermark=max(1, queue_bound // 4),
            throttle_clear=max(0, queue_bound // 8 - 1),
            link_backlog_bound_s=link_backlog_bound_s,
        )
        settings.validate()
        return settings

    def validate(self) -> None:
        if self.queue_bound < 1:
            raise ConfigurationError("queue_bound must be >= 1")
        if self.throttle_clear < 0:
            raise ConfigurationError("throttle_clear must be non-negative")
        if not self.throttle_clear < self.throttle_watermark:
            raise ConfigurationError(
                "throttle hysteresis needs throttle_clear < throttle_watermark"
            )
        if not self.shed_clear < self.shed_watermark:
            raise ConfigurationError(
                "shed hysteresis needs shed_clear < shed_watermark"
            )
        if self.throttle_watermark > self.shed_watermark:
            raise ConfigurationError(
                "ladder order needs throttle_watermark <= shed_watermark"
            )
        if self.shed_watermark > self.queue_bound:
            raise ConfigurationError(
                "shed_watermark must not exceed queue_bound (shedding must "
                "engage before the queue hits its cap)"
            )
        if self.min_dwell_s < 0:
            raise ConfigurationError("min_dwell_s must be non-negative")
        if self.throttle_refresh_stretch < 1:
            raise ConfigurationError("throttle_refresh_stretch must be >= 1")
        if self.link_backlog_bound_s < 0:
            raise ConfigurationError("link_backlog_bound_s must be non-negative")
