"""The explicit graceful-degradation ladder.

One ladder per node tracks how aggressively that node is trading
accuracy for headroom::

    NORMAL --throttle--> THROTTLED --shed--> SHEDDING
       ^                   |   ^                |
       +----- recover -----+   +---- relax -----+

Each step is only legal from exactly one mode, and the ladder never
skips a rung: a surge that warrants shedding fires ``throttle`` and then
``shed`` as two transitions, so the history always reads as a walk on
adjacent rungs.  Anything else raises
:class:`~repro.errors.SimulationError`, because an out-of-order trigger
means the detector driving the ladder is broken -- not a condition to
paper over.  This mirrors :class:`~repro.recovery.machine.RecoveryMachine`:
pure bookkeeping, no timers, no messages, unit-testable in isolation.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple


class DegradationMode(enum.Enum):
    """How aggressively a node is currently degrading service."""

    NORMAL = "normal"
    THROTTLED = "throttled"
    SHEDDING = "shedding"


_TRANSITIONS: Dict[Tuple[DegradationMode, str], DegradationMode] = {
    (DegradationMode.NORMAL, "throttle"): DegradationMode.THROTTLED,
    (DegradationMode.THROTTLED, "shed"): DegradationMode.SHEDDING,
    (DegradationMode.SHEDDING, "relax"): DegradationMode.THROTTLED,
    (DegradationMode.THROTTLED, "recover"): DegradationMode.NORMAL,
}

TRIGGERS: Tuple[str, ...] = ("throttle", "shed", "relax", "recover")
"""Every trigger the ladder understands, in escalation order."""


class DegradationLadder:
    """Transition table plus per-mode residency bookkeeping."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.mode = DegradationMode.NORMAL
        self.history: List[Tuple[float, str, DegradationMode]] = []
        """Every applied transition: (time, trigger, resulting mode)."""

        self._entered_at = 0.0
        self._residency: Dict[DegradationMode, float] = {
            mode: 0.0 for mode in DegradationMode
        }

    def can_apply(self, trigger: str) -> bool:
        """Whether ``trigger`` is legal in the current mode."""
        return (self.mode, trigger) in _TRANSITIONS

    def apply(self, trigger: str, now: float) -> DegradationMode:
        """Fire one transition; raises on anything the table forbids."""
        from repro.errors import SimulationError

        key = (self.mode, trigger)
        if key not in _TRANSITIONS:
            raise SimulationError(
                "node %d: degradation trigger %r is invalid in mode %s"
                % (self.node_id, trigger, self.mode.value)
            )
        self._residency[self.mode] += max(0.0, now - self._entered_at)
        self.mode = _TRANSITIONS[key]
        self._entered_at = now
        self.history.append((now, trigger, self.mode))
        return self.mode

    @property
    def is_degraded(self) -> bool:
        return self.mode is not DegradationMode.NORMAL

    @property
    def is_shedding(self) -> bool:
        return self.mode is DegradationMode.SHEDDING

    def mode_entered_at(self) -> float:
        """Simulated time the current mode was entered (dwell anchor)."""
        return self._entered_at

    def residency_seconds(self, now: float) -> Dict[str, float]:
        """Seconds spent in each mode, counting the open interval.

        Non-mutating: the open interval is added to a copy, so calling
        this mid-run (dashboard, telemetry samples) never perturbs the
        totals a later call reports.
        """
        out = {mode.value: seconds for mode, seconds in self._residency.items()}
        out[self.mode.value] += max(0.0, now - self._entered_at)
        return out

    def counters(self, now: float) -> Dict[str, float]:
        residency = self.residency_seconds(now)
        return {
            "transitions": float(len(self.history)),
            "throttled_seconds": residency[DegradationMode.THROTTLED.value],
            "shedding_seconds": residency[DegradationMode.SHEDDING.value],
        }
