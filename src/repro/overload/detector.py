"""Deterministic overload detection.

The detector watches one node's service-queue depth on the *simulated*
clock and walks the :class:`~repro.overload.ladder.DegradationLadder`
one legal rung at a time.  Everything it consults -- queue depth, the
simulated time, the watermarks -- is identical across execution engines,
so serial and ``--shards N`` runs take byte-identical mode trajectories.

Escalation is immediate (a queue at the shed watermark fires
``throttle`` and then ``shed`` in one observation); de-escalation is
hysteretic twice over: the clear watermarks sit strictly below the entry
watermarks, *and* a mode must have been held for ``min_dwell_s``
simulated seconds before stepping down.  Both halves exist to stop the
ladder flapping when the depth oscillates around a watermark.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.overload.ladder import DegradationLadder, DegradationMode
from repro.overload.settings import OverloadSettings


class OverloadDetector:
    """Watermark + hysteresis logic driving one node's ladder."""

    def __init__(self, settings: OverloadSettings, ladder: DegradationLadder) -> None:
        self.settings = settings
        self.ladder = ladder

    def observe(self, now: float, queue_depth: int) -> List[Tuple[str, DegradationMode]]:
        """Step the ladder for one queue-depth observation.

        Returns the (trigger, resulting mode) transitions applied, in
        order -- empty for the common steady-state case.
        """
        applied: List[Tuple[str, DegradationMode]] = []
        s = self.settings

        # Escalate first, possibly two rungs in one observation.
        if self.ladder.mode is DegradationMode.NORMAL and queue_depth >= s.throttle_watermark:
            applied.append(("throttle", self.ladder.apply("throttle", now)))
        if self.ladder.mode is DegradationMode.THROTTLED and queue_depth >= s.shed_watermark:
            applied.append(("shed", self.ladder.apply("shed", now)))
        if applied:
            return applied

        # De-escalate at most one rung per observation, and only after
        # the clear watermark *and* the dwell both pass.
        if now - self.ladder.mode_entered_at() < s.min_dwell_s:
            return applied
        if self.ladder.mode is DegradationMode.SHEDDING and queue_depth <= s.shed_clear:
            applied.append(("relax", self.ladder.apply("relax", now)))
        elif self.ladder.mode is DegradationMode.THROTTLED and queue_depth <= s.throttle_clear:
            applied.append(("recover", self.ladder.apply("recover", now)))
        return applied
