"""Extract the live similarity beliefs of a running system.

Each DFT-family node holds, per stream, its current similarity estimate
toward every peer; the matrix view makes the learned geography visible
(and is what the worst-case detector's variance is computed over).
"""

from __future__ import annotations

import numpy as np

from repro.core.system import DistributedJoinSystem
from repro.errors import ConfigurationError
from repro.streams.tuples import StreamId


def similarity_matrix(
    system: DistributedJoinSystem, stream: StreamId = StreamId.R
) -> np.ndarray:
    """N x N matrix of node i's similarity estimate toward node j.

    Row i holds node i's beliefs; the diagonal is 1 by convention.  Only
    policies exposing ``peer_similarities`` (DFT, DFTT, SKCH) qualify.
    """
    nodes = system.nodes
    if not nodes:
        raise ConfigurationError("system has no nodes")
    if not hasattr(nodes[0].policy, "peer_similarities"):
        raise ConfigurationError(
            "policy %r does not expose peer similarities" % nodes[0].policy.name
        )
    n = len(nodes)
    matrix = np.ones((n, n), dtype=np.float64)
    for node in nodes:
        similarities = node.policy.peer_similarities(stream)
        for peer, value in similarities.items():
            matrix[node.node_id, peer] = value
    return matrix
