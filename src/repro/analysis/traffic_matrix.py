"""Traffic matrices: who sent how much to whom.

Built from the lazy per-link counters of :class:`repro.net.topology.Network`.
The skew of these matrices is the visible footprint of the correlation
filtering: under geographic skew most of a node's traffic goes to its few
correlated peers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net.topology import Network


def _matrix(network: Network, component: int) -> np.ndarray:
    node_ids = network.node_ids
    if not node_ids:
        raise ConfigurationError("network has no registered nodes")
    index = {node: i for i, node in enumerate(node_ids)}
    matrix = np.zeros((len(node_ids), len(node_ids)), dtype=np.int64)
    for (source, destination), counters in network.link_stats().items():
        matrix[index[source], index[destination]] = counters[component]
    return matrix


def message_matrix(network: Network) -> np.ndarray:
    """N x N matrix of message counts (row = sender, column = receiver)."""
    return _matrix(network, 0)


def byte_matrix(network: Network) -> np.ndarray:
    """N x N matrix of byte counts (row = sender, column = receiver)."""
    return _matrix(network, 1)


def loss_matrix(network: Network) -> np.ndarray:
    """N x N matrix of in-transit message losses (row = sender).

    Lost messages *are* counted in :func:`message_matrix` (they were sent
    and serialized); this matrix shows how many of them never arrived --
    the footprint of lossy links and injected faults.
    """
    return _matrix(network, 2)


def lost_byte_matrix(network: Network) -> np.ndarray:
    """N x N matrix of bytes that were serialized but never delivered."""
    return _matrix(network, 3)


def top_talkers(
    network: Network, count: int = 5
) -> List[Tuple[int, int, int, int]]:
    """The busiest directed links: ``(source, destination, messages, bytes)``.

    Sorted by bytes, descending; ties broken by the (source, destination)
    pair for determinism.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    rows = [
        (source, destination, counters[0], counters[1])
        for (source, destination), counters in network.link_stats().items()
    ]
    rows.sort(key=lambda row: (-row[3], row[0], row[1]))
    return rows[:count]
