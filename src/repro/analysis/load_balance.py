"""Load-balance analysis across nodes.

The paper's improvement claims hinge on per-node resource consumption;
this module condenses a run's per-node diagnostics into the standard
fairness statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.results import RunResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LoadBalanceReport:
    """Distribution of one per-node quantity."""

    metric: str
    per_node: Dict[int, float]
    mean: float
    maximum: float
    minimum: float
    jain_index: float
    """Jain's fairness index: 1.0 = perfectly even, 1/N = one node does
    everything."""

    @property
    def imbalance(self) -> float:
        """max/mean -- how much hotter the hottest node runs."""
        if self.mean == 0:
            return 0.0
        return self.maximum / self.mean


def load_balance_report(result: RunResult, metric: str = "busy_seconds") -> LoadBalanceReport:
    """Summarize how evenly ``metric`` spreads over the nodes."""
    per_node = {}
    for node, diagnostics in result.node_diagnostics.items():
        if metric not in diagnostics:
            raise ConfigurationError(
                "metric %r not in node diagnostics (have: %s)"
                % (metric, ", ".join(sorted(diagnostics)))
            )
        per_node[node] = float(diagnostics[metric])
    if not per_node:
        raise ConfigurationError("result has no node diagnostics")
    values = list(per_node.values())
    total = sum(values)
    squares = sum(v * v for v in values)
    jain = (total * total) / (len(values) * squares) if squares > 0 else 1.0
    return LoadBalanceReport(
        metric=metric,
        per_node=per_node,
        mean=total / len(values),
        maximum=max(values),
        minimum=min(values),
        jain_index=jain,
    )
