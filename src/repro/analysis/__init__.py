"""Post-run analysis helpers.

Turn a finished :class:`~repro.core.system.DistributedJoinSystem` or its
:class:`~repro.core.results.RunResult` into the quantities an operator
would actually look at: who talks to whom (traffic matrices), how evenly
the work spreads (load balance), and what each node currently believes
about its peers (similarity matrices).
"""

from repro.analysis.load_balance import LoadBalanceReport, load_balance_report
from repro.analysis.similarity_matrix import similarity_matrix
from repro.analysis.traffic_matrix import (
    byte_matrix,
    loss_matrix,
    lost_byte_matrix,
    message_matrix,
    top_talkers,
)

__all__ = [
    "message_matrix",
    "byte_matrix",
    "loss_matrix",
    "lost_byte_matrix",
    "top_talkers",
    "LoadBalanceReport",
    "load_balance_report",
    "similarity_matrix",
]
