"""Synthetic FIN workload.

The paper's FIN data set -- 1.8 M real buy/sell trades -- is not
retrievable, so we synthesize a stream with the statistical features the
DFT experiments rely on (Figures 5 and 6 reconstruct a "sample stock data
stream"):

* the joining attribute is an integer *price* following a bounded,
  mean-reverting random walk, which makes the key sequence a smooth,
  strongly autocorrelated signal whose energy concentrates in low DFT
  frequencies (this is why truncating to W/256 coefficients is near
  lossless on stock data);
* trade sizes and sides are attached as payload but do not join.

The paper reports the real workloads behaved like ZIPF(alpha=0.4); the
random walk additionally visits popular price levels far more often than
the tails, giving a heavy-tailed marginal distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro._rng import ensure_rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FinancialStreamConfig:
    """Parameters of the synthetic trade stream."""

    initial_price: int = 40_000
    min_price: int = 1
    max_price: int = 2**19
    tick_std: float = 12.0
    mean_reversion: float = 0.002
    burst_probability: float = 0.01
    burst_scale: float = 8.0

    def validate(self) -> None:
        if not self.min_price <= self.initial_price <= self.max_price:
            raise ConfigurationError("initial price outside [min, max]")
        if self.tick_std <= 0:
            raise ConfigurationError("tick_std must be positive")
        if not 0 <= self.mean_reversion <= 1:
            raise ConfigurationError("mean_reversion must lie in [0, 1]")
        if not 0 <= self.burst_probability <= 1:
            raise ConfigurationError("burst_probability must lie in [0, 1]")


def financial_stream(
    config: FinancialStreamConfig = FinancialStreamConfig(),
    rng=None,
) -> Iterator[int]:
    """Endless stream of integer trade prices (the joining attribute)."""
    config.validate()
    generator = ensure_rng(rng)
    price = float(config.initial_price)
    anchor = float(config.initial_price)
    while True:
        step = generator.normal(0.0, config.tick_std)
        if generator.random() < config.burst_probability:
            step *= config.burst_scale
        price += step + config.mean_reversion * (anchor - price)
        price = min(max(price, config.min_price), config.max_price)
        yield int(round(price))


def smooth_price_signal(
    length: int,
    rng=None,
    anchor: float = 40_000.0,
    mean_reversion: float = 0.005,
    tick_std: float = 0.1,
    smoothing: int = 64,
) -> "np.ndarray":
    """A tick-level stock price window for the DFT compression analyses.

    Figures 5 and 6 reconstruct a "sample stock data stream" whose DFT
    truncates near-losslessly at kappa = 256.  That requires a signal that
    is (a) strongly mean-reverting -- the DFT treats the window as
    periodic, so wandering endpoints cause broadband leakage -- and
    (b) smooth at the sample scale (tick-level prices move by fractions of
    the spread between quotes).  This generator produces an
    Ornstein-Uhlenbeck price path, moving-average smoothed and rounded to
    integers; at the default parameters the E[MSE] < 0.25 lossless knee
    falls at kappa = 256 for windows of ~8 k samples, mirroring the paper.
    """
    if length < 1:
        raise ConfigurationError("length must be >= 1")
    if smoothing < 1:
        raise ConfigurationError("smoothing must be >= 1")
    if not 0 <= mean_reversion <= 1:
        raise ConfigurationError("mean_reversion must lie in [0, 1]")
    if tick_std <= 0:
        raise ConfigurationError("tick_std must be positive")
    generator = ensure_rng(rng)
    steps = generator.normal(0.0, tick_std, size=length + smoothing)
    path = np.empty(length + smoothing)
    price = anchor
    for index, step in enumerate(steps):
        price += mean_reversion * (anchor - price) + step
        path[index] = price
    if smoothing > 1:
        kernel = np.ones(smoothing) / smoothing
        path = np.convolve(path, kernel, mode="valid")
    return np.rint(path[:length])


def financial_trades(
    config: FinancialStreamConfig = FinancialStreamConfig(),
    rng=None,
) -> Iterator[Tuple[int, int, str]]:
    """Endless stream of ``(price, size, side)`` trade records.

    Sizes are log-normal (many small trades, few blocks); sides alternate
    with slight momentum, as in real tape data.
    """
    config.validate()
    generator = ensure_rng(rng)
    prices = financial_stream(config, rng=generator)
    side = "B"
    for price in prices:
        size = int(np.ceil(generator.lognormal(mean=4.0, sigma=1.0)))
        if generator.random() < 0.35:
            side = "S" if side == "B" else "B"
        yield price, size, side
