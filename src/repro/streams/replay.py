"""Trace replay: drive the system with recorded joining-attribute data.

The paper's FIN/NWRK experiments replay real traces.  Users with their
own data can do the same: a trace is a plain text file with one integer
key per line (blank lines and ``#`` comments ignored) or a ``.npy``
array.  Keys must be positive; the replay cycles when the run needs more
tuples than the trace holds (documented loudly because cycling changes
the temporal statistics).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import ConfigurationError


def load_trace(path: Union[str, Path]) -> np.ndarray:
    """Read a key trace from ``.npy`` or line-oriented text."""
    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError("no trace file at %s" % file_path)
    if file_path.suffix == ".npy":
        keys = np.load(file_path)
    else:
        values = []
        for line in file_path.read_text().splitlines():
            stripped = line.split("#", 1)[0].strip()
            if not stripped:
                continue
            try:
                values.append(int(stripped))
            except ValueError:
                raise ConfigurationError(
                    "trace line %r is not an integer key" % stripped
                ) from None
        keys = np.asarray(values, dtype=np.int64)
    keys = np.asarray(keys).reshape(-1).astype(np.int64, copy=False)
    if keys.size == 0:
        raise ConfigurationError("trace %s holds no keys" % file_path)
    if keys.min() < 1:
        raise ConfigurationError("trace keys must be >= 1")
    return keys


def replay_stream(path: Union[str, Path], cycle: bool = True) -> Iterator[int]:
    """Yield the trace's keys in order; cycle at the end if allowed."""
    keys = load_trace(path)
    while True:
        for key in keys:
            yield int(key)
        if not cycle:
            return


def trace_domain(path: Union[str, Path]) -> int:
    """The smallest key domain covering the trace (its maximum key)."""
    return int(load_trace(path).max())
