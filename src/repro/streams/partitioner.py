"""Geographic-skew stream partitioning.

The paper's headline result ("sub-linear message complexity in domains that
exhibit a geographic skew in the joining attributes") depends on *where*
tuples arrive: each node sees a biased slice of the key domain, so some node
pairs share many joining keys while others share few.  The DFT correlation
coefficients discover exactly that structure.

:class:`GeographicPartitioner` models it directly.  The key domain is split
into ``num_nodes`` contiguous ranges; a key's *home node* owns its range.
An arriving tuple lands on its home node with high probability and on other
nodes with probability decaying geometrically in ring distance, blended with
a uniform background:

    P(node j | home h)  proportional to  (1 - skew)/N + skew * spread**dist(h, j)

``skew = 0`` removes all geography (every node sees the global mix -- the
paper's worst case, where all pairwise correlations coincide), while
``skew = 1`` with small ``spread`` pins each key range to one node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro._rng import ensure_rng
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PartitionerConfig:
    """Parameters of the geographic placement model."""

    num_nodes: int
    domain: int
    skew: float = 0.85
    spread: float = 0.35

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.domain < self.num_nodes:
            raise ConfigurationError("domain must be >= num_nodes")
        if not 0.0 <= self.skew <= 1.0:
            raise ConfigurationError("skew must lie in [0, 1]")
        if not 0.0 <= self.spread < 1.0:
            raise ConfigurationError("spread must lie in [0, 1)")


class GeographicPartitioner:
    """Assigns arrival nodes to keys according to the placement model."""

    def __init__(self, config: PartitionerConfig, rng=None) -> None:
        config.validate()
        self.config = config
        self._rng = ensure_rng(rng)
        self._placement = self._build_placement_matrix()

    def _build_placement_matrix(self) -> np.ndarray:
        """Row h = arrival-node distribution for keys homed at node h."""
        n = self.config.num_nodes
        matrix = np.empty((n, n), dtype=np.float64)
        for home in range(n):
            distances = np.minimum(
                (np.arange(n) - home) % n, (home - np.arange(n)) % n
            )
            local = self.config.spread ** distances.astype(np.float64)
            local /= local.sum()
            matrix[home] = (1.0 - self.config.skew) / n + self.config.skew * local
            matrix[home] /= matrix[home].sum()
        return matrix

    @property
    def placement_matrix(self) -> np.ndarray:
        """Copy of the (home node -> arrival node) probability matrix."""
        return self._placement.copy()

    def home_node(self, key: int) -> int:
        """The node owning the contiguous key range containing ``key``."""
        if not 1 <= key <= self.config.domain:
            raise ConfigurationError(
                "key %d outside domain [1, %d]" % (key, self.config.domain)
            )
        return min(
            (key - 1) * self.config.num_nodes // self.config.domain,
            self.config.num_nodes - 1,
        )

    def node_for_key(self, key: int) -> int:
        """Sample the arrival node for a single key."""
        home = self.home_node(key)
        return int(self._rng.choice(self.config.num_nodes, p=self._placement[home]))

    def assign(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized arrival-node assignment for a batch of keys."""
        keys_arr = np.asarray(keys, dtype=np.int64)
        if keys_arr.size == 0:
            return np.empty(0, dtype=np.int64)
        if keys_arr.min() < 1 or keys_arr.max() > self.config.domain:
            raise ConfigurationError("keys outside domain [1, %d]" % self.config.domain)
        homes = np.minimum(
            (keys_arr - 1) * self.config.num_nodes // self.config.domain,
            self.config.num_nodes - 1,
        )
        uniforms = self._rng.random(keys_arr.size)
        cumulative = np.cumsum(self._placement, axis=1)
        nodes = np.empty(keys_arr.size, dtype=np.int64)
        for home in range(self.config.num_nodes):
            mask = homes == home
            if not mask.any():
                continue
            nodes[mask] = np.searchsorted(cumulative[home], uniforms[mask], side="right")
        return np.clip(nodes, 0, self.config.num_nodes - 1)

    def route(self, keys: Iterator[int]) -> Iterator[tuple]:
        """Lazily pair each key of a stream with its sampled arrival node."""
        for key in keys:
            yield key, self.node_for_key(key)
