"""Stream substrate: tuples, sliding windows, and workload generators.

The paper joins two streams R and S whose segments are spread over N nodes.
This package provides:

* :class:`~repro.streams.tuples.StreamTuple` and stream identifiers;
* sliding windows measured in tuples, time, or up to a landmark
  (:mod:`repro.streams.window`);
* the synthetic workloads of Section 6 -- UNI (uniform) and ZIPF
  (Zipf, alpha = 0.4) integer streams over ``[1, 2**19]``
  (:mod:`repro.streams.generators`);
* synthetic stand-ins for the paper's real workloads: FIN, a financial
  trade stream with random-walk prices (:mod:`repro.streams.financial`),
  and NWRK, a network packet trace with heavy-hitter flows
  (:mod:`repro.streams.network`);
* a geographic-skew partitioner that assigns tuples to nodes with
  locality, creating the cross-node correlation structure the DFT
  algorithms exploit (:mod:`repro.streams.partitioner`).
"""

from repro.streams.financial import FinancialStreamConfig, financial_stream
from repro.streams.generators import (
    StreamConfig,
    uniform_stream,
    zipf_stream,
    zipf_weights,
)
from repro.streams.network import NetworkTraceConfig, network_trace_stream
from repro.streams.partitioner import GeographicPartitioner, PartitionerConfig
from repro.streams.replay import load_trace, replay_stream, trace_domain
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import (
    CountWindow,
    LandmarkWindow,
    SlidingWindow,
    TimeWindow,
)

__all__ = [
    "StreamId",
    "StreamTuple",
    "SlidingWindow",
    "CountWindow",
    "TimeWindow",
    "LandmarkWindow",
    "StreamConfig",
    "uniform_stream",
    "zipf_stream",
    "zipf_weights",
    "FinancialStreamConfig",
    "financial_stream",
    "NetworkTraceConfig",
    "network_trace_stream",
    "GeographicPartitioner",
    "PartitionerConfig",
    "load_trace",
    "replay_stream",
    "trace_domain",
]
