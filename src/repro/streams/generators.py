"""Synthetic workload generators (Section 6).

The paper's synthetic data is "10,000,000 integers generated in the range
[1 : 2^19] according to two distributions: (1) UNI - uniform distribution,
and (2) ZIPF - Zipfian distribution with parameter alpha = 0.4".

``zipf_stream`` draws from a finite Zipf (power-law) distribution over the
key domain: P(rank i) proportional to 1 / i**alpha.  With alpha < 1 the
distribution is not summable in the infinite limit but perfectly well
defined over a finite domain, which is what the paper samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro._rng import ensure_rng
from repro.errors import ConfigurationError

DEFAULT_DOMAIN = 2**19
"""Key domain of the paper's synthetic workloads."""


@dataclass(frozen=True)
class StreamConfig:
    """Parameters shared by the synthetic generators."""

    domain: int = DEFAULT_DOMAIN
    alpha: float = 0.4
    chunk: int = 8192

    def validate(self) -> None:
        if self.domain < 1:
            raise ConfigurationError("domain must be >= 1")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.chunk < 1:
            raise ConfigurationError("chunk must be >= 1")


def zipf_weights(domain: int, alpha: float) -> np.ndarray:
    """Normalized Zipf probabilities over ranks ``1..domain``.

    ``alpha = 0`` degenerates to the uniform distribution.
    """
    if domain < 1:
        raise ConfigurationError("domain must be >= 1")
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def uniform_stream(
    domain: int = DEFAULT_DOMAIN,
    rng=None,
    chunk: int = 8192,
) -> Iterator[int]:
    """Endless UNI stream: keys uniform over ``[1, domain]``."""
    generator = ensure_rng(rng)
    if domain < 1:
        raise ConfigurationError("domain must be >= 1")
    while True:
        block = generator.integers(1, domain + 1, size=chunk)
        for value in block:
            yield int(value)


def zipf_stream(
    domain: int = DEFAULT_DOMAIN,
    alpha: float = 0.4,
    rng=None,
    chunk: int = 8192,
    permute: bool = False,
) -> Iterator[int]:
    """Endless ZIPF stream: keys Zipf(alpha)-distributed over ``[1, domain]``.

    Rank 1 is the most popular key.  With ``permute`` the rank-to-key mapping
    is shuffled so popularity is not aligned with key magnitude (useful when
    the key domain is range-partitioned across nodes).
    """
    generator = ensure_rng(rng)
    weights = zipf_weights(domain, alpha)
    keys = np.arange(1, domain + 1, dtype=np.int64)
    if permute:
        keys = generator.permutation(keys)
    while True:
        block = generator.choice(keys, size=chunk, p=weights)
        for value in block:
            yield int(value)


def take(stream: Iterator[int], count: int) -> np.ndarray:
    """Materialize the next ``count`` keys of a stream as an int64 array."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    return np.fromiter(stream, dtype=np.int64, count=count)
