"""Synthetic NWRK workload.

Stand-in for the paper's 2.2 M packet traces (one day of traffic from the
ICDE'06 data set, no longer hosted).  The joining attribute models a flow
identifier (e.g. a hashed source address): traffic is dominated by a small
set of heavy-hitter flows with long on/off bursts, plus a uniform haystack
of one-off scanners.  The result is a Zipf-like marginal with strong
temporal locality -- the regime in which the paper's correlation filtering
shines (malicious-packet tracking is the Section 1 motivating example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro._rng import ensure_rng
from repro.errors import ConfigurationError
from repro.streams.generators import zipf_weights


@dataclass(frozen=True)
class NetworkTraceConfig:
    """Parameters of the synthetic packet trace."""

    domain: int = 2**19
    heavy_flows: int = 256
    heavy_alpha: float = 1.1
    heavy_fraction: float = 0.7
    burst_length_mean: float = 24.0

    def validate(self) -> None:
        if self.domain < 1:
            raise ConfigurationError("domain must be >= 1")
        if not 1 <= self.heavy_flows <= self.domain:
            raise ConfigurationError("heavy_flows must lie in [1, domain]")
        if not 0 <= self.heavy_fraction <= 1:
            raise ConfigurationError("heavy_fraction must lie in [0, 1]")
        if self.burst_length_mean < 1:
            raise ConfigurationError("burst_length_mean must be >= 1")


def network_trace_stream(
    config: NetworkTraceConfig = NetworkTraceConfig(),
    rng=None,
) -> Iterator[int]:
    """Endless stream of flow-id keys with heavy hitters and bursts."""
    config.validate()
    generator = ensure_rng(rng)
    heavy_ids = generator.choice(
        np.arange(1, config.domain + 1), size=config.heavy_flows, replace=False
    )
    heavy_probs = zipf_weights(config.heavy_flows, config.heavy_alpha)
    current_flow = int(generator.choice(heavy_ids, p=heavy_probs))
    remaining_burst = 0
    while True:
        if generator.random() < config.heavy_fraction:
            if remaining_burst <= 0:
                current_flow = int(generator.choice(heavy_ids, p=heavy_probs))
                remaining_burst = 1 + int(
                    generator.exponential(config.burst_length_mean)
                )
            remaining_burst -= 1
            yield current_flow
        else:
            yield int(generator.integers(1, config.domain + 1))


def network_packets(
    config: NetworkTraceConfig = NetworkTraceConfig(),
    rng=None,
) -> Iterator[Tuple[int, int, int]]:
    """Endless stream of ``(flow_id, packet_bytes, flags)`` records."""
    config.validate()
    generator = ensure_rng(rng)
    flows = network_trace_stream(config, rng=generator)
    for flow_id in flows:
        packet_bytes = int(generator.choice((40, 576, 1500), p=(0.5, 0.2, 0.3)))
        flags = int(generator.integers(0, 64))
        yield flow_id, packet_bytes, flags
