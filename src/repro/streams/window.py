"""Sliding windows over stream segments.

Section 2: the window may be defined in tuples, time, or up to a landmark;
the algorithms are agnostic to the definition, and the paper (like this
reproduction's experiments) uses tuple-count windows.  All three flavours
are implemented behind one interface so the join operator and the DFT
summaries do not care which is in force.

Windows maintain, besides the tuple deque, a multiset of keys so that
membership tests and match counting are O(1) per probe.
"""

from __future__ import annotations

import abc
from collections import Counter, deque
from typing import Deque, Iterable, Iterator, List, Optional

from repro.errors import WindowError
from repro.streams.tuples import StreamTuple


class SlidingWindow(abc.ABC):
    """Common behaviour: append, evict, key-multiset bookkeeping."""

    def __init__(self) -> None:
        self._tuples: Deque[StreamTuple] = deque()
        self._key_counts: Counter = Counter()
        self._evicted: List[StreamTuple] = []
        self.total_appended = 0

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def __contains__(self, key: int) -> bool:
        return self._key_counts[key] > 0

    @property
    def key_counts(self) -> Counter:
        """Multiset of keys currently in the window (do not mutate)."""
        return self._key_counts

    def count(self, key: int) -> int:
        """Number of tuples in the window with the given joining attribute."""
        return self._key_counts[key]

    def keys(self) -> Iterator[int]:
        """Key sequence in arrival order (the signal the DFT summarizes)."""
        return (t.key for t in self._tuples)

    def matches(self, key: int) -> List[StreamTuple]:
        """All window tuples whose key equals ``key`` (join probe)."""
        if self._key_counts[key] == 0:
            return []
        return [t for t in self._tuples if t.key == key]

    def append(self, item: StreamTuple) -> List[StreamTuple]:
        """Insert ``item`` and return the tuples evicted as a consequence."""
        self._tuples.append(item)
        self._key_counts[item.key] += 1
        self.total_appended += 1
        self._evicted = []
        self._enforce(item)
        evicted, self._evicted = self._evicted, []
        return evicted

    def restore(self, tuples: Iterable[StreamTuple], total_appended: int) -> None:
        """Replace the window contents from a checkpoint.

        The key multiset is rebuilt from the restored tuples, so the
        window is internally consistent whatever state it held before.
        """
        items = list(tuples)
        self._tuples = deque(items)
        self._key_counts = Counter(t.key for t in items)
        self._evicted = []
        self.total_appended = int(total_appended)

    def _evict_oldest(self) -> StreamTuple:
        if not self._tuples:
            raise WindowError("evicting from an empty window")
        oldest = self._tuples.popleft()
        self._key_counts[oldest.key] -= 1
        if self._key_counts[oldest.key] == 0:
            del self._key_counts[oldest.key]
        self._evicted.append(oldest)
        return oldest

    @abc.abstractmethod
    def _enforce(self, newest: StreamTuple) -> None:
        """Evict tuples so the window invariant holds after ``newest``."""


class CountWindow(SlidingWindow):
    """Window holding the most recent ``capacity`` tuples."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise WindowError("window capacity must be positive, got %d" % capacity)
        super().__init__()
        self.capacity = capacity

    def _enforce(self, newest: StreamTuple) -> None:
        while len(self._tuples) > self.capacity:
            self._evict_oldest()

    @property
    def is_full(self) -> bool:
        return len(self._tuples) == self.capacity


class TimeWindow(SlidingWindow):
    """Window holding tuples whose timestamp lies within ``span`` of the newest.

    Tuples must carry timestamps and arrive in non-decreasing time order.
    """

    def __init__(self, span: float) -> None:
        if span <= 0:
            raise WindowError("window span must be positive, got %g" % span)
        super().__init__()
        self.span = span

    def _enforce(self, newest: StreamTuple) -> None:
        if newest.timestamp is None:
            raise WindowError("TimeWindow requires timestamped tuples")
        horizon = newest.timestamp - self.span
        while self._tuples and self._first_timestamp() < horizon:
            self._evict_oldest()

    def _first_timestamp(self) -> float:
        first = self._tuples[0]
        if first.timestamp is None:
            raise WindowError("TimeWindow requires timestamped tuples")
        return first.timestamp

    def advance_to(self, now: float) -> List[StreamTuple]:
        """Expire tuples against the clock without inserting (idle eviction)."""
        self._evicted = []
        horizon = now - self.span
        while self._tuples and self._first_timestamp() < horizon:
            self._evict_oldest()
        evicted, self._evicted = self._evicted, []
        return evicted


class LandmarkWindow(SlidingWindow):
    """Window that accumulates until a landmark key is observed, then resets."""

    def __init__(self, landmark_key: int, max_size: Optional[int] = None) -> None:
        super().__init__()
        self.landmark_key = landmark_key
        self.max_size = max_size
        self.resets = 0

    def _enforce(self, newest: StreamTuple) -> None:
        if newest.key == self.landmark_key:
            while len(self._tuples) > 1:  # keep the landmark tuple itself
                self._evict_oldest()
            self.resets += 1
        elif self.max_size is not None:
            while len(self._tuples) > self.max_size:
                self._evict_oldest()
