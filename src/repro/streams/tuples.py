"""Stream tuple model.

A tuple is the unit of arrival, forwarding, and joining.  Only the joining
attribute (``key``) participates in the algorithms; the payload is opaque
and merely occupies bytes on the wire.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class StreamId(enum.Enum):
    """The two joined streams of the paper's running example."""

    R = "R"
    S = "S"

    @property
    def other(self) -> "StreamId":
        """The opposite stream (R joins S and vice versa)."""
        return StreamId.S if self is StreamId.R else StreamId.R


_tuple_ids = itertools.count()


def reset_tuple_ids() -> None:
    """Restart the tuple-id sequence at zero.

    Ids only need to be unique within one run; the system resets the
    sequence at construction so a rerun of the same configuration mints
    the same ids.  Without this, checkpoint blobs (which encode
    ``tuple_id`` verbatim, because result-pair dedup keys on it) would
    grow by a few digits per in-process rerun and break the byte-identity
    guarantee the recovery tests pin.
    """
    global _tuple_ids
    _tuple_ids = itertools.count()


def peek_next_tuple_ids() -> int:
    """The id the next minted tuple would get, without consuming it.

    The parallel runner's worker entrypoint asserts this is 0 after its
    per-cell reset, so a cell computed in a pool worker pickles
    identically to one computed serially (or served from the cache).
    """
    global _tuple_ids
    value = next(_tuple_ids)
    _tuple_ids = itertools.count(value)
    return value


@dataclass(frozen=True)
class StreamTuple:
    """One stream element.

    ``tuple_id`` is globally unique and identifies the tuple across
    forwarding hops, which lets the metrics layer count each *result pair*
    (r.tuple_id, s.tuple_id) exactly once.  ``query_id`` scopes the tuple
    to one of the system's concurrent join queries (Section 3's
    multi-query setting); queries never join across each other.
    """

    stream: StreamId
    key: int
    origin_node: int
    arrival_index: int
    payload: Any = None
    tuple_id: int = field(default_factory=lambda: next(_tuple_ids))
    timestamp: Optional[float] = None
    query_id: int = 0

    def with_timestamp(self, timestamp: float) -> "StreamTuple":
        """Copy of this tuple stamped with its simulated arrival time."""
        return StreamTuple(
            stream=self.stream,
            key=self.key,
            origin_node=self.origin_node,
            arrival_index=self.arrival_index,
            payload=self.payload,
            tuple_id=self.tuple_id,
            timestamp=timestamp,
            query_id=self.query_id,
        )
