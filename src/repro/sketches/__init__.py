"""AGMS ("tug-of-war") sketches for join-size estimation.

Re-implementation of Alon, Gibbons, Matias & Szegedy [1], the summary
behind the paper's SKCH baseline: each node sketches the frequency vector
of its window's joining attributes; the inner product of two sketches
estimates the join size between the corresponding window segments.

* :mod:`repro.sketches.hashing` -- 4-wise independent +/-1 hash families
  (cubic polynomials over a prime field).
* :mod:`repro.sketches.agms` -- the sketch itself, with median-of-means
  estimation and sliding-window deletions.
"""

from repro.sketches.agms import AgmsSketch, SketchShape
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape
from repro.sketches.hashing import FourWiseHashFamily

__all__ = [
    "AgmsSketch",
    "SketchShape",
    "FastAgmsSketch",
    "FastSketchShape",
    "FourWiseHashFamily",
]
