"""The AGMS (tug-of-war) sketch.

A sketch is an ``s1 x s0`` array of counters.  Counter (i, j) maintains
``sum_v f(v) * xi_ij(v)`` where ``f`` is the frequency vector of the
sliding window and ``xi_ij`` is a 4-wise independent +/-1 hash.  For two
sketches built with the *same* hash bank,

* ``mean_j(X_ij * Y_ij)`` is an unbiased estimate of the join size
  ``f . g`` for each group i, and
* the median over the ``s1`` groups boosts the confidence (median of
  means).

The paper sizes sketches by total entries ``s = s0 * s1`` with a 5:1 ratio
between s0 and s1 (Section 6), which :meth:`SketchShape.from_total`
reproduces.  Sliding-window maintenance is a signed update: +1 on arrival,
-1 on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError
from repro.sketches.hashing import FourWiseHashFamily


@dataclass(frozen=True)
class SketchShape:
    """Dimensions of an AGMS sketch: s1 median groups of s0 averaged copies."""

    s0: int
    s1: int

    def __post_init__(self) -> None:
        if self.s0 < 1 or self.s1 < 1:
            raise SummaryError("sketch dimensions must be >= 1")

    @property
    def total(self) -> int:
        return self.s0 * self.s1

    @classmethod
    def from_total(cls, total: int, ratio: int = 5) -> "SketchShape":
        """Shape with ~``total`` entries preserving the paper's s0:s1 = 5:1.

        With s0 = ratio * s1, total = ratio * s1^2; s1 is rounded to keep
        the entry count as close to the budget as possible without
        exceeding it (and never below one row of each).
        """
        if total < 1:
            raise SummaryError("total sketch size must be >= 1")
        if ratio < 1:
            raise SummaryError("ratio must be >= 1")
        s1 = max(1, int(np.sqrt(total / ratio)))
        s0 = max(1, total // s1)
        return cls(s0=s0, s1=s1)


class AgmsSketch:
    """One node's sketch of its window's attribute-frequency vector."""

    def __init__(
        self,
        shape: SketchShape,
        hashes: Optional[FourWiseHashFamily] = None,
        rng=None,
    ) -> None:
        self.shape = shape
        if hashes is None:
            hashes = FourWiseHashFamily(shape.total, rng=ensure_rng(rng))
        if hashes.rows != shape.total:
            raise SummaryError(
                "hash bank has %d rows, sketch needs %d" % (hashes.rows, shape.total)
            )
        self.hashes = hashes
        self._counters = np.zeros(shape.total, dtype=np.float64)
        self.updates = 0

    def spawn_compatible(self) -> "AgmsSketch":
        """A fresh zero sketch sharing this sketch's hash bank.

        Join-size estimation only works between sketches built with the
        same hash functions; in the distributed system the query
        dissemination step seeds all nodes identically.
        """
        return AgmsSketch(self.shape, hashes=self.hashes)

    def update(self, key: int, delta: int = 1) -> None:
        """Apply a frequency change: +1 on arrival, -1 on eviction."""
        if delta == 0:
            return
        self._counters += delta * self.hashes.signs(key)
        self.updates += 1

    def update_batch(self, keys, deltas=None) -> None:
        """Apply a block of frequency changes in one vectorized pass.

        Duplicate keys are grouped (their deltas summed) before any
        counter is touched, so a window turnover batch of B tuples costs
        one hash evaluation per *distinct* key plus a single
        matrix-vector product.  Counters hold exact integers well inside
        float64's 2**53 range, so the result is bit-identical to the
        equivalent sequence of :meth:`update` calls in any order.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return
        if deltas is None:
            deltas = np.ones(keys.size, dtype=np.float64)
        else:
            deltas = np.asarray(deltas, dtype=np.float64).reshape(-1)
            if deltas.shape != keys.shape:
                raise SummaryError("keys and deltas must have equal length")
        live = deltas != 0
        unique, inverse = np.unique(keys[live], return_inverse=True)
        if unique.size:
            net = np.bincount(inverse, weights=deltas[live], minlength=unique.size)
            signs = self.hashes.signs_matrix(unique)
            self._counters += net @ signs
        self.updates += int(np.count_nonzero(live))

    def counters(self) -> np.ndarray:
        """Counter array, grouped as (s1, s0) (copy)."""
        return self._counters.reshape(self.shape.s1, self.shape.s0).copy()

    def snapshot_counters(self) -> np.ndarray:
        """Flat counter copy -- the wire representation."""
        return self._counters.copy()

    def load_counters(self, counters) -> None:
        """Replace state with a received snapshot."""
        arr = np.asarray(counters, dtype=np.float64).reshape(-1)
        if arr.shape != self._counters.shape:
            raise SummaryError("snapshot shape mismatch")
        self._counters = arr.copy()

    def checkpoint_state(self) -> dict:
        """Exact snapshot for repro.recovery (counters + update count)."""
        from repro.recovery.checkpoint import encode_array

        return {"counters": encode_array(self._counters), "updates": self.updates}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state` on a same-shape sketch."""
        from repro.recovery.checkpoint import decode_array

        counters = decode_array(state["counters"])
        if counters.shape != self._counters.shape:
            raise SummaryError("checkpoint shape mismatch")
        self._counters = counters
        self.updates = int(state["updates"])

    def join_size_estimate(self, other: "AgmsSketch") -> float:
        """Median-of-means estimate of the join size with ``other``."""
        self._check_compatible(other)
        products = (self._counters * other._counters).reshape(
            self.shape.s1, self.shape.s0
        )
        return float(np.median(products.mean(axis=1)))

    def self_join_size_estimate(self) -> float:
        """Estimate of the second frequency moment F2 of this window."""
        squares = (self._counters**2).reshape(self.shape.s1, self.shape.s0)
        return float(np.median(squares.mean(axis=1)))

    def _check_compatible(self, other: "AgmsSketch") -> None:
        if self.shape != other.shape:
            raise SummaryError("sketch shapes differ: %s vs %s" % (self.shape, other.shape))
        if self.hashes is not other.hashes:
            raise SummaryError("sketches must share one hash bank to be joined")

    def serialized_entries(self) -> int:
        """Summary entries this sketch occupies on the wire."""
        return self.shape.total
