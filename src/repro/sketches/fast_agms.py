"""Fast-AGMS ("sketch-partitioning" / count-sketch style) sketches.

The plain AGMS sketch touches every one of its s0 * s1 counters per
update.  Cormode & Garofalakis's Fast-AGMS variant (the paper's reference
[8]) hashes each key to *one bucket per row*, so an update touches only
s1 counters while preserving the same join-size estimation guarantees:

    row i:   C_i[h_i(x)] += delta * xi_i(x)
    estimate: median_i( sum_b C_i^X[b] * C_i^Y[b] )

This is the variant a production deployment of the SKCH baseline would
use; the ablation benchmark compares its update cost against plain AGMS
at equal wire size (the accuracy is comparable by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError
from repro.sketches.hashing import FourWiseHashFamily


@dataclass(frozen=True)
class FastSketchShape:
    """Rows (medianed) x buckets-per-row (the summed inner product)."""

    rows: int
    buckets: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.buckets < 1:
            raise SummaryError("sketch dimensions must be >= 1")

    @property
    def total(self) -> int:
        return self.rows * self.buckets

    @classmethod
    def from_total(cls, total: int, rows: int = 5) -> "FastSketchShape":
        """Shape with ~``total`` counters spread over ``rows`` rows."""
        if total < 1:
            raise SummaryError("total sketch size must be >= 1")
        rows = max(1, min(rows, total))
        return cls(rows=rows, buckets=max(1, total // rows))


class FastAgmsSketch:
    """Count-sketch-structured AGMS summary (one bucket per row)."""

    def __init__(self, shape: FastSketchShape, hashes=None, rng=None) -> None:
        self.shape = shape
        if hashes is None:
            # One 4-wise family drives both the bucket choice and the sign:
            # two independent row banks.
            generator = ensure_rng(rng)
            hashes = (
                FourWiseHashFamily(shape.rows, rng=generator),
                FourWiseHashFamily(shape.rows, rng=generator),
            )
        bucket_hashes, sign_hashes = hashes
        if bucket_hashes.rows != shape.rows or sign_hashes.rows != shape.rows:
            raise SummaryError("hash banks must have one row per sketch row")
        self._bucket_hashes = bucket_hashes
        self._sign_hashes = sign_hashes
        self._counters = np.zeros((shape.rows, shape.buckets), dtype=np.float64)
        self.updates = 0

    def spawn_compatible(self) -> "FastAgmsSketch":
        """Fresh zero sketch sharing this sketch's hash banks."""
        return FastAgmsSketch(
            self.shape, hashes=(self._bucket_hashes, self._sign_hashes)
        )

    def update(self, key: int, delta: int = 1) -> None:
        """Apply a frequency change, touching one counter per row."""
        if delta == 0:
            return
        buckets = self._bucket_hashes.buckets(key, self.shape.buckets)
        signs = self._sign_hashes.signs(key)
        self._counters[np.arange(self.shape.rows), buckets] += delta * signs
        self.updates += 1

    def update_batch(self, keys, deltas=None) -> None:
        """Apply a block of frequency changes in one vectorized pass.

        Deltas of duplicate keys are grouped first; each surviving
        distinct key then scatters one signed increment per row with
        ``np.add.at`` (which handles colliding buckets).  All arithmetic
        is exact integers in float64, so the counters are bit-identical
        to the equivalent sequence of :meth:`update` calls.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return
        if deltas is None:
            deltas = np.ones(keys.size, dtype=np.float64)
        else:
            deltas = np.asarray(deltas, dtype=np.float64).reshape(-1)
            if deltas.shape != keys.shape:
                raise SummaryError("keys and deltas must have equal length")
        live = deltas != 0
        unique, inverse = np.unique(keys[live], return_inverse=True)
        if unique.size:
            net = np.bincount(inverse, weights=deltas[live], minlength=unique.size)
            buckets = self._bucket_hashes.buckets_matrix(unique, self.shape.buckets)
            signs = self._sign_hashes.signs_matrix(unique)
            rows = np.broadcast_to(
                np.arange(self.shape.rows), (unique.size, self.shape.rows)
            )
            np.add.at(self._counters, (rows, buckets), net[:, None] * signs)
        self.updates += int(np.count_nonzero(live))

    def counters(self) -> np.ndarray:
        """Counter matrix, shape (rows, buckets) (copy)."""
        return self._counters.copy()

    def snapshot_counters(self) -> np.ndarray:
        """Flat counter copy -- the wire representation."""
        return self._counters.reshape(-1).copy()

    def load_counters(self, counters) -> None:
        """Replace state with a received snapshot."""
        arr = np.asarray(counters, dtype=np.float64).reshape(-1)
        if arr.size != self.shape.total:
            raise SummaryError("snapshot shape mismatch")
        self._counters = arr.reshape(self.shape.rows, self.shape.buckets).copy()

    def checkpoint_state(self) -> dict:
        """Exact snapshot for repro.recovery (counters + update count)."""
        from repro.recovery.checkpoint import encode_array

        return {"counters": encode_array(self._counters), "updates": self.updates}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state` on a same-shape sketch."""
        from repro.recovery.checkpoint import decode_array

        counters = decode_array(state["counters"])
        if counters.shape != self._counters.shape:
            raise SummaryError("checkpoint shape mismatch")
        self._counters = counters
        self.updates = int(state["updates"])

    def join_size_estimate(self, other: "FastAgmsSketch") -> float:
        """Median over rows of the per-row counter inner products."""
        self._check_compatible(other)
        per_row = np.einsum("rb,rb->r", self._counters, other._counters)
        return float(np.median(per_row))

    def self_join_size_estimate(self) -> float:
        """F2 estimate: median over rows of the per-row squared norms."""
        per_row = np.einsum("rb,rb->r", self._counters, self._counters)
        return float(np.median(per_row))

    def _check_compatible(self, other: "FastAgmsSketch") -> None:
        if self.shape != other.shape:
            raise SummaryError(
                "sketch shapes differ: %s vs %s" % (self.shape, other.shape)
            )
        if (
            self._bucket_hashes is not other._bucket_hashes
            or self._sign_hashes is not other._sign_hashes
        ):
            raise SummaryError("sketches must share hash banks to be joined")

    def serialized_entries(self) -> int:
        """Summary entries this sketch occupies on the wire."""
        return self.shape.total
