"""Four-wise independent hash families.

AGMS sketches need +/-1 random variables that are 4-wise independent for
the variance bound of [1] to hold.  The classic construction is a degree-3
polynomial over a prime field::

    h(x) = a3*x^3 + a2*x^2 + a1*x + a0   (mod p)
    xi(x) = +1 if h(x) is odd else -1

Evaluation uses Horner's rule so every intermediate product of two values
below ``p = 2**31 - 1`` fits comfortably in int64, which lets a whole bank
of hash rows evaluate in a handful of vectorized numpy operations per
update.
"""

from __future__ import annotations

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError

MERSENNE_PRIME_31 = (1 << 31) - 1
"""Field modulus; keys and coefficients live in [0, p)."""


class FourWiseHashFamily:
    """A bank of independent degree-3 polynomial hash rows."""

    def __init__(self, rows: int, rng=None, prime: int = MERSENNE_PRIME_31) -> None:
        if rows < 1:
            raise SummaryError("need at least one hash row")
        if prime < 3:
            raise SummaryError("prime must be >= 3")
        self.rows = rows
        self.prime = prime
        generator = ensure_rng(rng)
        # Shape (rows, 4): highest-degree coefficient first (Horner order).
        self._coefficients = generator.integers(0, prime, size=(rows, 4), dtype=np.int64)

    def raw(self, key: int) -> np.ndarray:
        """Polynomial value per row, in ``[0, prime)``."""
        x = int(key) % self.prime
        acc = self._coefficients[:, 0].copy()
        for degree in range(1, 4):
            acc = (acc * x + self._coefficients[:, degree]) % self.prime
        return acc

    def signs(self, key: int) -> np.ndarray:
        """The +/-1 variable xi(key) per row (int8 array of +-1)."""
        return np.where(self.raw(key) & 1, 1, -1).astype(np.int8)

    def buckets(self, key: int, num_buckets: int) -> np.ndarray:
        """Row-wise bucket index in ``[0, num_buckets)`` (for hash sketches)."""
        if num_buckets < 1:
            raise SummaryError("num_buckets must be >= 1")
        return self.raw(key) % num_buckets
