"""Four-wise independent hash families.

AGMS sketches need +/-1 random variables that are 4-wise independent for
the variance bound of [1] to hold.  The classic construction is a degree-3
polynomial over a prime field::

    h(x) = a3*x^3 + a2*x^2 + a1*x + a0   (mod p)
    xi(x) = +1 if h(x) is odd else -1

Evaluation uses Horner's rule so every intermediate product of two values
below ``p = 2**31 - 1`` fits comfortably in int64, which lets a whole bank
of hash rows evaluate in a handful of vectorized numpy operations per
update.

Because sliding windows evict exactly the keys they inserted, the same
key is hashed at least twice (arrival and eviction) and usually many more
times under skew, so the family keeps a small LRU cache of sign vectors:
a hit replaces the three modular Horner steps with one dict lookup.  The
cache is capacity-bounded (:data:`DEFAULT_SIGN_CACHE_SIZE` entries) and
can be disabled outright with ``cache_size=0`` or globally via the
``REPRO_NAIVE_KERNELS`` environment variable (the reference configuration
the equivalence tests and microbenchmarks compare against).  Cached
vectors are produced by the identical arithmetic, so hits and misses are
bit-indistinguishable.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError

MERSENNE_PRIME_31 = (1 << 31) - 1
"""Field modulus; keys and coefficients live in [0, p)."""

DEFAULT_SIGN_CACHE_SIZE = 4096
"""Per-family LRU capacity: int8 sign vectors, so a full cache of a
1000-row bank costs ~4 MB."""


class FourWiseHashFamily:
    """A bank of independent degree-3 polynomial hash rows."""

    def __init__(
        self,
        rows: int,
        rng=None,
        prime: int = MERSENNE_PRIME_31,
        cache_size: Optional[int] = None,
    ) -> None:
        if rows < 1:
            raise SummaryError("need at least one hash row")
        if prime < 3:
            raise SummaryError("prime must be >= 3")
        self.rows = rows
        self.prime = prime
        generator = ensure_rng(rng)
        # Shape (rows, 4): highest-degree coefficient first (Horner order).
        self._coefficients = generator.integers(0, prime, size=(rows, 4), dtype=np.int64)
        if cache_size is None:
            cache_size = 0 if os.environ.get("REPRO_NAIVE_KERNELS", "") else (
                DEFAULT_SIGN_CACHE_SIZE
            )
        if cache_size < 0:
            raise SummaryError("cache_size must be non-negative")
        self.cache_size = cache_size
        self._sign_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def raw(self, key: int) -> np.ndarray:
        """Polynomial value per row, in ``[0, prime)``."""
        x = int(key) % self.prime
        acc = self._coefficients[:, 0].copy()
        for degree in range(1, 4):
            acc = (acc * x + self._coefficients[:, degree]) % self.prime
        return acc

    def raw_matrix(self, keys) -> np.ndarray:
        """Polynomial values for a key vector: shape ``(len(keys), rows)``.

        Same Horner recurrence as :meth:`raw`, broadcast over keys; all
        intermediates stay below ``p**2 < 2**62`` so int64 never wraps.
        """
        x = np.asarray(keys, dtype=np.int64).reshape(-1) % self.prime
        acc = np.broadcast_to(self._coefficients[:, 0], (x.size, self.rows)).copy()
        for degree in range(1, 4):
            acc = (acc * x[:, None] + self._coefficients[:, degree]) % self.prime
        return acc

    def signs(self, key: int) -> np.ndarray:
        """The +/-1 variable xi(key) per row (int8 array of +-1).

        The returned array is read-only when it came from (or entered)
        the LRU cache; copy before mutating.
        """
        key = int(key)
        if self.cache_size:
            cached = self._sign_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._sign_cache.move_to_end(key)
                return cached
        vector = np.where(self.raw(key) & 1, 1, -1).astype(np.int8)
        if self.cache_size:
            self.cache_misses += 1
            vector.flags.writeable = False
            self._sign_cache[key] = vector
            if len(self._sign_cache) > self.cache_size:
                self._sign_cache.popitem(last=False)
        return vector

    def signs_matrix(self, keys) -> np.ndarray:
        """Sign vectors for a key vector: int8 of shape ``(len(keys), rows)``.

        Serves each row from the LRU cache when present; misses are
        evaluated in one vectorized Horner pass and inserted.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        out = np.empty((keys.size, self.rows), dtype=np.int8)
        if not self.cache_size:
            np.subtract(
                (self.raw_matrix(keys) & 1) << 1, 1, out=out, casting="unsafe"
            )
            return out
        miss_indices = []
        for index, key in enumerate(keys):
            cached = self._sign_cache.get(int(key))
            if cached is not None:
                self.cache_hits += 1
                self._sign_cache.move_to_end(int(key))
                out[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            missed = keys[miss_indices]
            fresh = np.where(self.raw_matrix(missed) & 1, 1, -1).astype(np.int8)
            for slot, index in enumerate(miss_indices):
                vector = fresh[slot].copy()
                vector.flags.writeable = False
                self.cache_misses += 1
                self._sign_cache[int(keys[index])] = vector
                out[index] = vector
            while len(self._sign_cache) > self.cache_size:
                self._sign_cache.popitem(last=False)
        return out

    def buckets(self, key: int, num_buckets: int) -> np.ndarray:
        """Row-wise bucket index in ``[0, num_buckets)`` (for hash sketches)."""
        if num_buckets < 1:
            raise SummaryError("num_buckets must be >= 1")
        return self.raw(key) % num_buckets

    def buckets_matrix(self, keys, num_buckets: int) -> np.ndarray:
        """Bucket indices for a key vector: shape ``(len(keys), rows)``."""
        if num_buckets < 1:
            raise SummaryError("num_buckets must be >= 1")
        return self.raw_matrix(keys) % num_buckets
