"""The sharded engine's worker process.

Each worker owns the simulated nodes with ``node_id % shards == shard``
and replays *exactly* their serial history:

1. **Replicated construction.**  The worker builds the full
   :class:`~repro.core.system.DistributedJoinSystem` from the config and
   schedules the complete workload, exactly as serial would.  Every
   RNG draw made during construction therefore matches serial bit for
   bit on every shard, and construction-time sends (query dissemination)
   schedule their arrivals locally everywhere.
2. **Pruning.**  The event queue is then cut down to this shard's home
   events plus the run-global ones (telemetry ticks, fault edges),
   which every shard replays.  Shards other than 0 also zero the
   replicated accounting (traffic stats, telemetry ring, registry) so
   merged totals count everything exactly once.
3. **Routing.**  Every link gets a router that diverts arrivals bound
   for off-shard nodes into the round outbox as ``(arrival_time, key,
   (src, dst), message)``.  The event key was minted by the link's own
   :class:`~repro.net.simulator.EventKeySource`, so the destination
   shard can enqueue an event that sorts exactly where serial would
   have sorted it.
4. **Barrier rounds.**  The coordinator drives ``run_window`` rounds of
   width ``lookahead = latency_min_s`` (no message can arrive sooner
   than that after its send, so nothing within a round can originate
   within the same round -- the Chandy-Misra/Bryant conservative
   argument).

The final ``fragment`` message carries everything the parent needs to
reconstruct serial collection state: per-home-node runtime records,
traffic stats, telemetry ring + registry, fault counters, profiler.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict


def _sync_env(env: Dict[str, str]) -> None:
    """Mirror the parent's ``REPRO_*`` environment exactly (spawned
    children inherit the environment of process-creation time, which can
    predate parent-side changes such as monkeypatched knobs)."""
    for key in [key for key in os.environ if key.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def shard_worker(conn, config, shard, shards, env, profile) -> None:
    """Process entry point (module-level so ``spawn`` can pickle it)."""
    try:
        _worker_loop(conn, config, shard, shards, env, profile)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            pass
    finally:
        conn.close()


def _worker_loop(conn, config, shard, shards, env, profile) -> None:
    _sync_env(env)
    from repro.core.system import DistributedJoinSystem
    from repro.net.simulator import Event
    from repro.net.stats import TrafficStats
    from repro.profiling import KernelProfiler

    profiler = KernelProfiler() if profile else None
    # shards=1 pins the worker itself to the serial engine (the outer
    # REPRO_SHARDS must not recurse into nested sharding).
    system = DistributedJoinSystem(config, profiler=profiler, shards=1)
    system.schedule_workload()
    scheduler = system.scheduler
    network = system.network

    def is_home(node_id: int) -> bool:
        return node_id % shards == shard

    outbox = []

    def router_for(source, destination):
        if is_home(destination):
            return None

        def divert(arrival, key, message, _pair=(source, destination)):
            outbox.append((arrival, key, _pair, message))
            return True

        return divert

    network.link_router_factory = router_for
    for (source, destination), link in network.iter_links():
        link.router = router_for(source, destination)
    network._shard_outbox = outbox
    system._home_filter = is_home
    scheduler.retain_events(
        lambda event: event.home is None or is_home(event.home)
    )
    if shard != 0:
        # Replicated construction accounting is shard 0's to keep; every
        # other shard zeroes it in place (instrument handles are cached
        # by the nodes, so objects must survive).
        scheduler.count_global_events = False
        network.stats = TrafficStats()
        network.kind_order.clear()
        network.loss_order.clear()
        for node_id in network.per_sender_stats:
            network.per_sender_stats[node_id] = TrafficStats()
        for _, link in network.iter_links():
            link.messages_sent = 0
            link.messages_lost = 0
            link.bytes_sent = 0
            link.bytes_lost = 0
            link.messages_shed = 0
        if system.telemetry is not None:
            hub = system.telemetry
            hub._events.clear()
            hub._sequence = 0
            hub.events_emitted = 0
            hub.registry.reset_values()

    conn.send(("ready", scheduler.next_event_time(), system._arrival_span))
    while True:
        tag, payload = conn.recv()
        if tag == "round":
            until, inbound = payload
            for arrival, key, (source, destination), message in inbound:
                link = network.link(source, destination)
                scheduler.enqueue_event(
                    Event(
                        time=arrival,
                        phase=1,
                        rank=key[0],
                        seq=key[1],
                        callback=lambda m=message, l=link: l._arrive(m),
                        home=destination,
                    )
                )
            scheduler.run_window(until)
            conn.send(
                (
                    "done",
                    list(outbox),
                    scheduler.next_event_time(),
                    scheduler.material_now,
                    scheduler.now,
                )
            )
            outbox.clear()
        elif tag == "finish":
            t_final = payload
            break
        else:  # pragma: no cover - protocol error
            raise RuntimeError("unknown coordinator message %r" % (tag,))

    # The global end-of-run tick: sampled against the *global* final
    # time so link backlogs and clocks read as serial's final tick does.
    scheduler._now = max(scheduler._now, t_final)
    if system.telemetry is not None:
        system.telemetry.sample_tick(now=t_final)
    conn.send(("fragment", _build_fragment(system, profiler, is_home)))


def _build_fragment(system, profiler, is_home) -> Dict[str, object]:
    scheduler = system.scheduler
    network = system.network
    fragment: Dict[str, object] = {
        "records": [
            node.runtime_record()
            for node in system.nodes
            if is_home(node.node_id)
        ],
        "stats": network.stats,
        "kind_order": dict(network.kind_order),
        "loss_order": dict(network.loss_order),
        "per_sender": network.per_sender_stats,
        "link_stats": network.link_stats(),
        "arrival_span": system._arrival_span,
        "material_now": scheduler.material_now,
        "now": scheduler.now,
        "events_processed": scheduler.events_processed,
        "faults": None,
        "telemetry": None,
        "profiler": profiler,
    }
    if system.fault_injector is not None:
        injector = system.fault_injector
        fragment["faults"] = {
            "messages_blocked": injector.messages_blocked,
            "activations": dict(injector.activations),
            "timeline": list(injector.timeline),
        }
    if system.telemetry is not None:
        hub = system.telemetry
        fragment["telemetry"] = {
            "events": list(hub._events),
            "events_emitted": hub.events_emitted,
            "registry": hub.registry,
        }
    return fragment
