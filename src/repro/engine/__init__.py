"""Execution engines (see :mod:`repro.engine.base`).

``SerialEngine`` is the default and the reference oracle;
``ShardedEngine`` partitions one simulation's nodes across worker
processes under conservative time synchronization and must reproduce
the serial results byte for byte.
"""

from repro.engine.base import (
    ExecutionEngine,
    SerialEngine,
    make_engine,
    resolve_shards,
)
from repro.engine.sharded import ShardedEngine

__all__ = [
    "ExecutionEngine",
    "SerialEngine",
    "ShardedEngine",
    "make_engine",
    "resolve_shards",
]
