"""The sharded execution engine: one simulation across processes.

The coordinator partitions the simulated nodes of a *single* run across
``shards`` worker processes (spawn context) and advances them in
conservative Chandy-Misra/Bryant-style rounds:

* **Lookahead.**  Every message takes at least ``latency_min_s`` from
  send to arrival (propagation is sampled from ``[latency_min_s,
  latency_max_s]`` and serialization only adds delay), so an event
  executed in ``[G, G + H)`` with ``H = latency_min_s`` can only
  schedule cross-shard work at ``>= G + H``.  A zero lookahead would
  force zero-width rounds; the engine refuses to run that way.
* **Rounds.**  Each round, the coordinator computes the global horizon
  ``G`` (minimum of every shard's next event time and every in-flight
  arrival), delivers all collected cross-shard messages, and lets every
  shard run its window ``[G, G + H)`` in parallel.  No shard ever
  processes past a peer's unposted horizon, so every cross-shard
  arrival is enqueued before any local event that could race it.
* **Determinism.**  Cross-shard messages travel as ``(arrival_time,
  event key, link, payload)``; the key was minted by the sending link's
  entity-local :class:`~repro.net.simulator.EventKeySource`, so the
  destination scheduler orders the arrival exactly where the serial
  scheduler would.  Merged with the replicated-construction / pruning
  scheme in :mod:`repro.engine.worker` and the exact (Fraction-based)
  metric merges below, the result is byte-identical to serial: same
  stats, same telemetry export, same RNG consumption per node.

The serial engine remains the reference oracle; the integration suite
pins ``serial == --shards 2 == --shards 4`` for every algorithm.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter, deque
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.engine.base import ExecutionEngine
from repro.engine.worker import shard_worker
from repro.net.stats import TrafficStats


class ShardedEngine(ExecutionEngine):
    """Drive one run across ``shards`` worker processes."""

    name = "sharded"

    def __init__(self, shards: int, config) -> None:
        if shards < 2:
            raise ConfigurationError(
                "sharded execution needs >= 2 shards, got %d" % shards
            )
        if shards > config.num_nodes:
            raise ConfigurationError(
                "cannot split %d nodes across %d shards; at most one "
                "shard per node" % (config.num_nodes, shards)
            )
        if config.link.latency_min_s <= 0:
            raise ConfigurationError(
                "sharded execution needs conservative lookahead: "
                "link.latency_min_s must be positive"
            )
        if config.telemetry.dashboard:
            raise ConfigurationError(
                "the live dashboard reads one process's state; "
                "use the serial engine (shards=1) with --dashboard"
            )
        self.shards = shards
        self.rounds = 0
        """Synchronization rounds of the last :meth:`execute` (visible
        in the engine docs' when-does-sharding-pay-off discussion)."""

    # -- process control ----------------------------------------------

    @staticmethod
    def _repro_env() -> Dict[str, str]:
        return {
            key: value
            for key, value in os.environ.items()
            if key.startswith("REPRO_")
        }

    def _recv(self, conn, expect: str):
        message = conn.recv()
        tag = message[0]
        if tag == "error":
            raise SimulationError(
                "shard worker failed:\n%s" % message[1]
            )
        if tag != expect:
            raise SimulationError(
                "shard protocol error: expected %r, got %r" % (expect, tag)
            )
        return message[1:]

    def execute(self, system) -> None:
        config = system.config
        lookahead = config.link.latency_min_s
        context = multiprocessing.get_context("spawn")
        profile = system.profiler is not None
        env = self._repro_env()
        workers = []
        conns = []
        try:
            for shard in range(self.shards):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=shard_worker,
                    args=(child_conn, config, shard, self.shards, env, profile),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append(process)
                conns.append(parent_conn)
            next_times: List[Optional[float]] = []
            nows = [0.0] * self.shards
            material_nows = [0.0] * self.shards
            arrival_span = 0.0
            for conn in conns:
                next_time, span = self._recv(conn, "ready")
                next_times.append(next_time)
                arrival_span = span
            inflight: List[list] = [[] for _ in range(self.shards)]
            self.rounds = 0
            while True:
                horizon = [t for t in next_times if t is not None]
                horizon.extend(
                    item[0] for shard_box in inflight for item in shard_box
                )
                if not horizon:
                    break
                until = min(horizon) + lookahead
                for shard, conn in enumerate(conns):
                    conn.send(("round", (until, inflight[shard])))
                    inflight[shard] = []
                for shard, conn in enumerate(conns):
                    outbox, next_time, material_now, now = self._recv(
                        conn, "done"
                    )
                    next_times[shard] = next_time
                    material_nows[shard] = material_now
                    nows[shard] = now
                    for item in outbox:
                        destination = item[2][1]
                        inflight[destination % self.shards].append(item)
                self.rounds += 1
            t_final = max(nows)
            for conn in conns:
                conn.send(("finish", t_final))
            fragments = []
            for shard, conn in enumerate(conns):
                (fragment,) = self._recv(conn, "fragment")
                fragment["shard"] = shard
                fragments.append(fragment)
            for process in workers:
                process.join(timeout=30)
        finally:
            for conn in conns:
                conn.close()
            for process in workers:
                if process.is_alive():  # pragma: no cover - crash path
                    process.terminate()
                    process.join()
        self._merge(system, fragments, arrival_span, t_final)

    # -- merging -------------------------------------------------------

    def _merge(self, system, fragments, arrival_span, t_final) -> None:
        """Fold worker fragments into the parent's collection state.

        The parent never ran the workload, but it *did* run replicated
        construction; that accounting is wiped first because shard 0's
        fragment carries the identical data.  Per-node records are
        ordered by node id so every float reduction in ``_collect``
        sums in serial order.
        """
        scheduler = system.scheduler
        network = system.network
        network.stats = TrafficStats()
        for node_id in network.per_sender_stats:
            network.per_sender_stats[node_id] = TrafficStats()
        for _, link in network.iter_links():
            link.messages_sent = 0
            link.messages_lost = 0
            link.bytes_sent = 0
            link.bytes_lost = 0
            link.messages_shed = 0
        kind_order: Dict[str, tuple] = {}
        loss_order: Dict[str, tuple] = {}
        for fragment in fragments:
            network.stats.merge(fragment["stats"])
            for orders, fragment_key in (
                (kind_order, "kind_order"),
                (loss_order, "loss_order"),
            ):
                for kind, rank in fragment[fragment_key].items():
                    if kind not in orders or rank < orders[kind]:
                        orders[kind] = rank
            for node_id, sender_stats in fragment["per_sender"].items():
                network.per_sender_stats[node_id].merge(sender_stats)
            for pair, counters in fragment["link_stats"].items():
                link = network.link(*pair)
                link.messages_sent += counters[0]
                link.bytes_sent += counters[1]
                link.messages_lost += counters[2]
                link.bytes_lost += counters[3]
                link.messages_shed += counters[4]
        # Counter key order is first-occurrence order and reported dicts
        # (messages_by_kind) preserve it; rebuild serial's chronology.
        stats = network.stats
        stats.messages_by_kind = Counter(
            {
                kind: stats.messages_by_kind[kind]
                for kind in sorted(stats.messages_by_kind, key=kind_order.get)
            }
        )
        stats.bytes_by_kind = Counter(
            {
                kind: stats.bytes_by_kind[kind]
                for kind in sorted(stats.bytes_by_kind, key=kind_order.get)
            }
        )
        stats.lost_by_kind = Counter(
            {
                kind: stats.lost_by_kind[kind]
                for kind in sorted(stats.lost_by_kind, key=loss_order.get)
            }
        )
        records = [
            record
            for fragment in fragments
            for record in fragment["records"]
        ]
        records.sort(key=lambda record: record["node_id"])
        system._node_records = records
        system._arrival_span = arrival_span
        system._tuples_scheduled = system.config.workload.total_tuples
        scheduler._now = t_final
        scheduler._material_now = max(
            fragment["material_now"] for fragment in fragments
        )
        scheduler._events_processed = sum(
            fragment["events_processed"] for fragment in fragments
        )
        if system.fault_injector is not None:
            injector = system.fault_injector
            injector.messages_blocked = sum(
                fragment["faults"]["messages_blocked"] for fragment in fragments
            )
            injector.activations = dict(fragments[0]["faults"]["activations"])
            injector.timeline = list(fragments[0]["faults"]["timeline"])
        if system.profiler is not None:
            for fragment in fragments:
                if fragment["profiler"] is not None:
                    system.profiler.merge(fragment["profiler"])
        if system.telemetry is not None:
            self._merge_telemetry(
                system.telemetry,
                [fragment["telemetry"] for fragment in fragments],
                t_final,
            )

    def _merge_telemetry(self, hub, shard_hubs, t_final) -> None:
        """Reconstruct the serial hub from the shard hubs.

        Registries merge exactly (see ``MetricRegistry.merge_shard``).
        The event ring is the union of shard rings sorted by the causal
        order stamp: each scheduler event executed on exactly one shard
        and replicated global events emit nothing, so stamps are unique,
        and a shard that retained an event retained everything after it
        on that shard -- the union is a superset of serial's retained
        window, trimmed back to capacity here.  Sequence numbers are
        rewritten to the global emission indices serial would have
        assigned.
        """
        registry = shard_hubs[0]["registry"]
        for shard_hub in shard_hubs[1:]:
            registry.merge_shard(shard_hub["registry"])
        hub.registry = registry
        events = [
            event for shard_hub in shard_hubs for event in shard_hub["events"]
        ]
        events.sort(key=lambda event: event.order)
        total = sum(shard_hub["events_emitted"] for shard_hub in shard_hubs)
        capacity = hub.settings.event_capacity
        kept = events[-capacity:]
        base = total - len(kept)
        for index, event in enumerate(kept):
            event.seq = base + index
        hub._events = deque(kept, maxlen=capacity)
        hub._sequence = total
        hub.events_emitted = total
        hub._last_sample_time = t_final
