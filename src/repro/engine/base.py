"""Execution engines: the strategy that drives one simulation.

:class:`~repro.core.system.DistributedJoinSystem` assembles state and
aggregates results; *how* the event population is drained is the
engine's job.  :class:`SerialEngine` is the reference implementation --
one process, one scheduler, run to empty.  The sharded engine
(:mod:`repro.engine.sharded`) partitions the simulated nodes across
worker processes and synchronizes them conservatively; its contract is
that the resulting :class:`~repro.core.results.RunResult` and telemetry
exports are byte-identical to the serial engine's.

``shards`` resolution mirrors the experiment runner's ``--jobs``: an
explicit positive value wins, else the ``REPRO_SHARDS`` environment
variable, else 1 (serial -- the default never touches multiprocessing,
so existing callers are bit-for-bit unaffected).
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError


class ExecutionEngine:
    """Strategy interface: advance ``system`` to the drained end state.

    ``execute`` must leave the system ready for
    ``DistributedJoinSystem._collect``: workload scheduled, scheduler
    clocks at the final times, accounting either on the live nodes
    (serial) or pre-merged into ``system._node_records`` (sharded).
    """

    name = "abstract"

    def execute(self, system) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SerialEngine(ExecutionEngine):
    """The reference engine: drain one scheduler in-process."""

    name = "serial"

    def execute(self, system) -> None:
        if system._tuples_scheduled == 0:
            system.schedule_workload()
        system.scheduler.run()


def resolve_shards(shards=0) -> int:
    """Shard count: explicit ``shards`` > ``REPRO_SHARDS`` > 1 (serial)."""
    if shards is None:
        shards = 0
    if shards < 0:
        raise ConfigurationError("shards must be positive, got %d" % shards)
    if shards:
        return shards
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError("REPRO_SHARDS must be an integer, got %r" % raw)
    if value < 1:
        raise ConfigurationError("REPRO_SHARDS must be >= 1, got %d" % value)
    return value


def make_engine(shards, config) -> ExecutionEngine:
    """Build the engine for ``shards`` (resolved) under ``config``."""
    count = resolve_shards(shards)
    if count <= 1:
        return SerialEngine()
    from repro.engine.sharded import ShardedEngine

    return ShardedEngine(count, config)
