"""Figure 6: mean-square reconstruction error vs compression factor.

The paper sweeps kappa, plots E[MSE] with one-standard-deviation error
bars, draws the lossless line at 0.25, and reads off kappa = 256 as the
largest factor under the line for the stock stream.  This module runs the
same sweep on the synthetic FIN stream and reports the chosen factor via
:func:`repro.core.compression.choose_compression_factor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.compression import (
    LOSSLESS_MSE_THRESHOLD,
    CompressionSweepPoint,
    choose_compression_factor,
    mse_statistics,
)
from repro.experiments.fig5 import stock_signal
from repro.experiments.reporting import format_table

DEFAULT_KAPPAS = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class Fig6Result:
    """The sweep plus the selected operating point."""

    points: Tuple[CompressionSweepPoint, ...]
    chosen_kappa: int
    threshold: float = LOSSLESS_MSE_THRESHOLD


def run(
    window: int = 8192,
    kappas: Sequence[int] = DEFAULT_KAPPAS,
    seed: int = 2007,
) -> Fig6Result:
    """MSE statistics across the kappa grid on the FIN stream."""
    signal = stock_signal(window, seed)
    usable = [k for k in kappas if window // k >= 1]
    points = mse_statistics(signal, usable)
    chosen = choose_compression_factor(signal, usable)
    return Fig6Result(points=points, chosen_kappa=chosen)


def format_result(result: Fig6Result) -> str:
    table = format_table(
        ["kappa", "coeffs", "E[MSE]", "std", "frac<0.25", "lossless"],
        [
            (
                p.kappa,
                p.budget,
                p.mean_mse,
                p.std_mse,
                p.lossless_fraction,
                p.is_lossless,
            )
            for p in result.points
        ],
    )
    return "%s\nthreshold E[MSE] < %.2f -> chosen kappa = %d" % (
        table,
        result.threshold,
        result.chosen_kappa,
    )
