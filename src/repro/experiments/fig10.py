"""Figure 10: error vs compression factor (a) and vs system size (b).

Panel (a): W fixed, kappa swept from small to large (summaries from half
the window down to a handful of entries), Zipf data.  Expected shape:
every algorithm's error grows as summaries shrink; DFTT degrades the most
gracefully, BLOOM collapses once the filter saturates (its counters need
~bits-per-item that large kappa cannot provide), and SKCH's error climbs
steeply at the smallest sketch sizes.

Panel (b): kappa fixed at the scale's "kappa = 256 equivalent", node
count swept 2..20 (paper) -- error grows with N for everyone, slowest
for DFTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import Algorithm, WorkloadKind
from repro.experiments.harness import (
    FILTERED_ALGORITHMS,
    get_scale,
    run_grid,
    system_config,
)
from repro.experiments.reporting import format_table

SWEEP_BUDGET = 2.0
"""Flow budget used for both panels: the same moderate T for every
algorithm, so error differences come from summary quality alone."""


@dataclass(frozen=True)
class Fig10aRow:
    """One (kappa, algorithm) point of panel (a)."""

    kappa: int
    summary_entries: int
    algorithm: str
    epsilon: float
    messages_per_arrival: float


@dataclass(frozen=True)
class Fig10bRow:
    """One (N, algorithm) point of panel (b)."""

    num_nodes: int
    algorithm: str
    epsilon: float
    messages_per_arrival: float


def run_panel_a(
    scale: str = "default",
    num_nodes: int = 8,
    algorithms: Sequence[Algorithm] = FILTERED_ALGORITHMS,
    jobs: int = 0,
    cache=None,
) -> List[Fig10aRow]:
    """Error-vs-kappa sweep at fixed window and node count."""
    preset = get_scale(scale)
    cells = [
        (kappa, algorithm)
        for kappa in preset.kappa_grid
        for algorithm in algorithms
    ]
    configs = [
        system_config(
            preset,
            algorithm,
            num_nodes,
            kappa=float(kappa),
            workload_kind=WorkloadKind.ZIPF,
            budget_override=SWEEP_BUDGET,
        )
        for kappa, algorithm in cells
    ]
    results = run_grid(configs, jobs=jobs, cache=cache)
    return [
        Fig10aRow(
            kappa=int(kappa),
            summary_entries=config.policy.summary_budget(preset.window_size),
            algorithm=algorithm.value,
            epsilon=result.epsilon,
            messages_per_arrival=result.messages_per_arrival,
        )
        for (kappa, algorithm), config, result in zip(cells, configs, results)
    ]


def run_panel_b(
    scale: str = "default",
    algorithms: Sequence[Algorithm] = FILTERED_ALGORITHMS,
    kappa: float = 0.0,
    jobs: int = 0,
    cache=None,
) -> List[Fig10bRow]:
    """Error-vs-N sweep at the fixed default compression factor."""
    preset = get_scale(scale)
    cells = [
        (index, num_nodes, algorithm)
        for index, num_nodes in enumerate(preset.node_grid)
        for algorithm in algorithms
    ]
    configs = [
        system_config(
            preset,
            algorithm,
            num_nodes,
            kappa=kappa,
            workload_kind=WorkloadKind.ZIPF,
            budget_override=SWEEP_BUDGET,
            seed_offset=index,
        )
        for index, num_nodes, algorithm in cells
    ]
    results = run_grid(configs, jobs=jobs, cache=cache)
    return [
        Fig10bRow(
            num_nodes=num_nodes,
            algorithm=algorithm.value,
            epsilon=result.epsilon,
            messages_per_arrival=result.messages_per_arrival,
        )
        for (_index, num_nodes, algorithm), result in zip(cells, results)
    ]


def format_panel_a(rows: Sequence[Fig10aRow]) -> str:
    return format_table(
        ["kappa", "entries", "algo", "epsilon", "msgs/arrival"],
        [
            (r.kappa, r.summary_entries, r.algorithm, r.epsilon, r.messages_per_arrival)
            for r in rows
        ],
    )


def format_panel_b(rows: Sequence[Fig10bRow]) -> str:
    return format_table(
        ["N", "algo", "epsilon", "msgs/arrival"],
        [(r.num_nodes, r.algorithm, r.epsilon, r.messages_per_arrival) for r in rows],
    )
