"""Command-line reproduction report: every table and figure in one run.

Usage::

    python -m repro.experiments.report [scale] [--only table1,fig3,...]
        [--jobs N] [--shards N] [--no-cache] [--cache-dir DIR]

``scale`` is ``smoke``, ``bench``, ``default`` (the default) or ``full``.
The analytic experiments (Table 1, Figures 3-6) ignore the scale's
simulation parameters and use their own signal sizes.

``--jobs`` fans simulation cells over pool workers (byte-identical
output at any N); the run-result cache is on by default, so a repeated
report recomputes only the cells whose configuration or code changed --
``--no-cache`` forces everything fresh.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import WorkloadKind
from repro.experiments import (
    chaos,
    fig3,
    fig4,
    fig5,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)
from repro.experiments.ascii_plot import line_chart

ALL_EXPERIMENTS = (
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "chaos",
)


def _banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_report(scale: str, only, jobs: int = 0, cache=None, shards: int = 0) -> None:
    """Print every selected section; ``shards`` runs each simulation
    cell under the sharded engine.

    The figure modules reach the pool through several layers (including
    the calibration bisections' ``map_tasks`` payloads), so the shard
    count travels as ``REPRO_SHARDS`` for the duration of the report --
    :func:`repro.parallel.execute_cell` resolves it uniformly in the
    parent and in every pool worker, clamping per cell to the mesh size.
    Output is byte-identical at any setting.
    """
    import os

    from repro.engine import resolve_shards

    selected = set(only) if only else set(ALL_EXPERIMENTS)
    shards = resolve_shards(shards)
    previous_shards = os.environ.get("REPRO_SHARDS")
    if shards > 1:
        os.environ["REPRO_SHARDS"] = str(shards)
    try:
        _run_report_sections(scale, selected, jobs, cache)
    finally:
        if shards > 1:
            if previous_shards is None:
                os.environ.pop("REPRO_SHARDS", None)
            else:
                os.environ["REPRO_SHARDS"] = previous_shards


def _run_report_sections(scale: str, selected, jobs: int, cache) -> None:
    started = time.time()

    if "table1" in selected:
        _banner("Table 1 -- CPU time: full DFT vs incremental DFT vs AGMS")
        print(table1.format_result(table1.run(jobs=jobs)))

    if "fig3" in selected:
        _banner("Figure 3 -- uniform-data bounds (Theorems 1-2)")
        rows = fig3.run(50)
        print(fig3.format_result(rows[:8] + rows[-8:]))
        print()
        print(
            line_chart(
                {
                    "eps T=1": [(r.num_nodes, r.error_t1) for r in rows],
                    "eps T=logN": [(r.num_nodes, r.error_tlog) for r in rows],
                },
                y_label="epsilon (uniform)",
            )
        )

    if "fig4" in selected:
        _banner("Figure 4 -- Zipf-data bounds (Theorem 3, alpha = 0.4)")
        zipf_rows = fig4.run(20)
        print(fig4.format_result(zipf_rows))
        print()
        print(
            line_chart(
                {
                    "zipf O(1)": [(r.num_nodes, r.error_o1) for r in zipf_rows],
                    "zipf O(logN)": [(r.num_nodes, r.error_olog) for r in zipf_rows],
                    "uniform O(logN)": [
                        (r.num_nodes, r.uniform_error_olog) for r in zipf_rows
                    ],
                },
                y_label="epsilon",
            )
        )

    if "fig5" in selected:
        _banner("Figure 5 -- reconstruction squared errors (stock stream)")
        print(fig5.format_result(fig5.run()))

    if "fig6" in selected:
        _banner("Figure 6 -- E[MSE] vs compression factor (0.25 line)")
        print(fig6.format_result(fig6.run()))

    if "fig8" in selected:
        _banner("Figure 8 -- coefficient overhead %% vs nodes (scale=%s)" % scale)
        print(fig8.format_result(fig8.run(scale, jobs=jobs, cache=cache)))

    if "fig9" in selected:
        _banner("Figure 9 -- messages per result tuple at eps=15%% (scale=%s)" % scale)
        cells = fig9.run(
            scale,
            workloads=(WorkloadKind.UNIFORM, WorkloadKind.ZIPF),
            jobs=jobs,
            cache=cache,
        )
        print(fig9.format_result(cells))

    if "fig10" in selected:
        _banner("Figure 10a -- error vs kappa (scale=%s)" % scale)
        panel_a = fig10.run_panel_a(scale, jobs=jobs, cache=cache)
        print(fig10.format_panel_a(panel_a))
        print()
        series_a = {}
        for row in panel_a:
            series_a.setdefault(row.algorithm, []).append((row.kappa, row.epsilon))
        print(line_chart(series_a, y_label="epsilon vs kappa"))
        _banner("Figure 10b -- error vs nodes (scale=%s)" % scale)
        panel_b = fig10.run_panel_b(scale, jobs=jobs, cache=cache)
        print(fig10.format_panel_b(panel_b))
        print()
        series_b = {}
        for row in panel_b:
            series_b.setdefault(row.algorithm, []).append((row.num_nodes, row.epsilon))
        print(line_chart(series_b, y_label="epsilon vs N"))

    if "fig11" in selected:
        _banner("Figure 11 -- throughput at eps=15%% (scale=%s)" % scale)
        throughput_rows = fig11.run(scale, jobs=jobs, cache=cache)
        print(fig11.format_result(throughput_rows))
        print()
        series_t = {}
        for row in throughput_rows:
            series_t.setdefault(row.algorithm, []).append(
                (row.num_nodes, row.sustained_throughput)
            )
        print(line_chart(series_t, y_label="sustained results/s"))

    if "chaos" in selected:
        _banner("Chaos sweep -- accuracy vs failure rate (scale=%s)" % scale)
        chaos_rows = chaos.run(scale, jobs=jobs, cache=cache)
        print(chaos.format_result(chaos_rows))
        print()
        print(chaos.figure(chaos_rows))

    print()
    print("report complete in %.1f s" % (time.time() - started))
    # Cache provenance prints *after* the timing line: everything above
    # it is byte-identical across jobs/cache settings, everything below
    # is run provenance.
    if cache is not None:
        print(cache.stats_line())
        cache.write_manifest({"sweep": "report", "scale": scale})


def main(argv=None) -> int:
    from repro.parallel import resolve_cache

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", default="bench",
                        choices=["smoke", "bench", "default", "full"])
    parser.add_argument(
        "--only",
        help="comma-separated subset of: %s" % ", ".join(ALL_EXPERIMENTS),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="pool workers for simulation sweeps (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run each simulation cell under the sharded engine with N "
        "worker processes (default: REPRO_SHARDS or serial; "
        "byte-identical at any N, clamped per cell to the mesh size)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reusing the run-result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help="run-result cache location (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    args = parser.parse_args(argv)
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",")]
        unknown = set(only) - set(ALL_EXPERIMENTS)
        if unknown:
            parser.error("unknown experiments: %s" % ", ".join(sorted(unknown)))
    cache = resolve_cache(args.no_cache, args.cache_dir)
    run_report(args.scale, only, jobs=args.jobs, cache=cache, shards=args.shards)
    return 0


if __name__ == "__main__":
    sys.exit(main())
