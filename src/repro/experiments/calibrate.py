"""Operating-point calibration: fix epsilon, measure everything else.

Figures 9 and 11 compare the algorithms "with fixed error rate
eps = 15%": each algorithm's flow budget is tuned until it just meets the
error target, and messages/throughput are reported at that point.  The
budget -> error mapping is monotone (more transmissions can only find
more results), so a bisection over ``budget_override`` converges quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.config import SystemConfig
from repro.core.results import RunResult
from repro.core.system import run_experiment
from repro.errors import CalibrationError

ConfigFactory = Callable[[float], SystemConfig]
"""Maps a budget T to the run configuration using it."""


@dataclass
class CalibrationResult:
    """Outcome of a budget search."""

    budget: float
    result: RunResult
    probes: int
    achieved_epsilon: float
    target_epsilon: float

    @property
    def within_tolerance(self) -> bool:
        return abs(self.achieved_epsilon - self.target_epsilon) <= 0.05


def calibrate_budget(
    make_config: ConfigFactory,
    target_epsilon: float = 0.15,
    budget_range: Tuple[float, float] = (0.25, 0.0),
    max_probes: int = 7,
    tolerance: float = 0.02,
    runner: Optional[Callable[[SystemConfig], RunResult]] = None,
) -> CalibrationResult:
    """Bisect the flow budget until the run's epsilon meets the target.

    ``budget_range`` is (low, high); a high of 0 means "N - 1" (read from
    the first probe's configuration).  Returns the probe whose epsilon is
    closest to the target.  Raises :class:`CalibrationError` only for
    invalid inputs -- an unreachable target returns the best-effort
    endpoint, mirroring the paper's best-effort stance.

    ``runner`` substitutes for :func:`run_experiment` per probe -- the
    parallel layer passes a cache-aware runner so a repeated calibration
    replays its bisection path from stored results.  The search itself
    stays sequential (each probe's budget depends on the last epsilon).
    """
    if not 0.0 <= target_epsilon < 1.0:
        raise CalibrationError("target epsilon must lie in [0, 1)")
    if max_probes < 2:
        raise CalibrationError("need at least 2 probes")

    low, high = budget_range
    first_config = make_config(max(low, 0.25))
    if high <= 0:
        high = float(first_config.num_nodes - 1)
    if low <= 0 or high <= low:
        raise CalibrationError("invalid budget range (%g, %g)" % (low, high))

    best: Optional[CalibrationResult] = None
    probes = 0

    execute = runner if runner is not None else run_experiment

    def probe(budget: float) -> float:
        nonlocal best, probes
        result = execute(make_config(budget))
        probes += 1
        epsilon = result.epsilon
        candidate = CalibrationResult(
            budget=budget,
            result=result,
            probes=probes,
            achieved_epsilon=epsilon,
            target_epsilon=target_epsilon,
        )
        if best is None or abs(epsilon - target_epsilon) < abs(
            best.achieved_epsilon - target_epsilon
        ):
            best = candidate
        return epsilon

    # Endpoint probes bound the search; epsilon decreases with budget.
    eps_high = probe(high)
    if eps_high > target_epsilon:
        # Even the full budget misses the target: report that endpoint.
        best.probes = probes
        return best
    eps_low = probe(low)
    if eps_low <= target_epsilon:
        best.probes = probes
        return best

    lo, hi = low, high
    while probes < max_probes:
        mid = (lo + hi) / 2.0
        epsilon = probe(mid)
        if abs(epsilon - target_epsilon) <= tolerance:
            break
        if epsilon > target_epsilon:
            lo = mid
        else:
            hi = mid
    best.probes = probes
    return best
