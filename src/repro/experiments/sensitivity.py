"""Sensitivity of the DFT methods to the workload's structure.

The paper's thesis is that correlation-aware forwarding wins *because*
real attribute streams are geographically skewed.  This experiment makes
the claim quantitative by sweeping the placement skew from none (every
node sees the global mix -- the uniform worst case) to near-total
locality, and comparing DFTT against budget-matched round-robin, the
strongest structure-blind strategy.  The DFTT advantage should be ~zero
at skew 0 and grow with skew.

A second sweep varies the Zipf exponent alpha: popularity concentration
changes the result-set size but, with rank permutation on, not the
geographic structure, so the DFTT-vs-RR gap should be far less sensitive
to alpha than to skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowSettings
from repro.experiments.harness import run_grid
from repro.experiments.reporting import format_table

DEFAULT_SKEWS = (0.0, 0.3, 0.6, 0.85, 0.95)
DEFAULT_ALPHAS = (0.0, 0.4, 0.8)
SWEEP_BUDGET = 2.0


@dataclass(frozen=True)
class SensitivityRow:
    """One sweep point: the DFTT-vs-round-robin error gap."""

    parameter: str
    value: float
    epsilon_dftt: float
    epsilon_round_robin: float

    @property
    def advantage(self) -> float:
        """Error reduction DFTT achieves over structure-blind forwarding."""
        return self.epsilon_round_robin - self.epsilon_dftt


def _config(algorithm: Algorithm, skew: float, alpha: float, seed: int) -> SystemConfig:
    return SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(
            algorithm=algorithm,
            kappa=16,
            flow=FlowSettings(budget_override=SWEEP_BUDGET),
        ),
        workload=WorkloadConfig(
            total_tuples=4_000,
            domain=2_048,
            arrival_rate=250.0,
            skew=skew,
            alpha=alpha,
        ),
        seed=seed,
    )


def sweep_skew(
    skews: Sequence[float] = DEFAULT_SKEWS,
    alpha: float = 0.4,
    seed: int = 29,
    jobs: int = 0,
    cache=None,
) -> List[SensitivityRow]:
    """DFTT advantage as a function of geographic skew."""
    configs = [
        _config(algorithm, skew, alpha, seed)
        for skew in skews
        for algorithm in (Algorithm.DFTT, Algorithm.ROUND_ROBIN)
    ]
    results = run_grid(configs, jobs=jobs, cache=cache)
    return [
        SensitivityRow(
            parameter="skew",
            value=float(skew),
            epsilon_dftt=results[2 * index].epsilon,
            epsilon_round_robin=results[2 * index + 1].epsilon,
        )
        for index, skew in enumerate(skews)
    ]


def sweep_alpha(
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    skew: float = 0.85,
    seed: int = 29,
    jobs: int = 0,
    cache=None,
) -> List[SensitivityRow]:
    """DFTT advantage as a function of popularity concentration."""
    configs = [
        _config(algorithm, skew, alpha, seed)
        for alpha in alphas
        for algorithm in (Algorithm.DFTT, Algorithm.ROUND_ROBIN)
    ]
    results = run_grid(configs, jobs=jobs, cache=cache)
    return [
        SensitivityRow(
            parameter="alpha",
            value=float(alpha),
            epsilon_dftt=results[2 * index].epsilon,
            epsilon_round_robin=results[2 * index + 1].epsilon,
        )
        for index, alpha in enumerate(alphas)
    ]


def format_rows(rows: Sequence[SensitivityRow]) -> str:
    return format_table(
        ["param", "value", "eps DFTT", "eps RR", "advantage"],
        [
            (r.parameter, r.value, r.epsilon_dftt, r.epsilon_round_robin, r.advantage)
            for r in rows
        ],
    )
