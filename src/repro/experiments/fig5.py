"""Figure 5: per-value squared reconstruction errors of a stock stream.

The paper reconstructs a W ~ 80,000 stock attribute stream from W/1024,
W/256 and W/64 DFT coefficients and plots the absolute squared error of
every reconstructed value.  The punchline: at W/256 almost every value's
squared error is below 0.25 (the integer round-off radius), so the
compression is effectively lossless.

We generate the synthetic FIN stream (a mean-reverting random walk, the
same smoothness class as stock prices) and report, per compression
factor, the distribution of squared errors and the lossless fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._rng import ensure_rng
from repro.dft.reconstruction import reconstruction_squared_errors
from repro.experiments.reporting import format_table
from repro.streams.financial import smooth_price_signal

PAPER_KAPPAS = (1024, 256, 64)
"""The three panels of Figure 5."""


@dataclass(frozen=True)
class Fig5Series:
    """Squared-error distribution for one compression factor."""

    kappa: int
    budget: int
    mean_squared_error: float
    median_squared_error: float
    p95_squared_error: float
    max_squared_error: float
    lossless_fraction: float
    squared_errors: Tuple[float, ...] = ()
    """The raw per-position series (subsampled) -- the actual Figure 5 dots."""


def stock_signal(window: int = 8192, seed: int = 2007) -> np.ndarray:
    """The tick-level stock attribute window of Figures 5 and 6."""
    return smooth_price_signal(window, rng=ensure_rng(seed)).astype(np.float64)


def run(
    window: int = 8192,
    kappas: Sequence[int] = PAPER_KAPPAS,
    seed: int = 2007,
    keep_points: int = 200,
) -> List[Fig5Series]:
    """Reconstruction-error distributions for each Figure 5 panel."""
    signal = stock_signal(window, seed)
    series = []
    for kappa in kappas:
        budget = max(1, window // kappa)
        errors = reconstruction_squared_errors(signal, budget)
        stride = max(1, errors.size // keep_points)
        series.append(
            Fig5Series(
                kappa=int(kappa),
                budget=budget,
                mean_squared_error=float(errors.mean()),
                median_squared_error=float(np.median(errors)),
                p95_squared_error=float(np.percentile(errors, 95)),
                max_squared_error=float(errors.max()),
                lossless_fraction=float(np.mean(errors < 0.25)),
                squared_errors=tuple(float(e) for e in errors[::stride]),
            )
        )
    return series


def format_result(series: Sequence[Fig5Series]) -> str:
    return format_table(
        ["kappa", "coeffs", "mean SE", "median SE", "p95 SE", "max SE", "frac<0.25"],
        [
            (
                s.kappa,
                s.budget,
                s.mean_squared_error,
                s.median_squared_error,
                s.p95_squared_error,
                s.max_squared_error,
                s.lossless_fraction,
            )
            for s in series
        ],
    )
