"""Terminal line charts for the figure reproductions.

The report CLI renders each figure's series as an ASCII chart so the
*shape* -- the thing this reproduction is graded on -- is visible without
a plotting stack.  One character column per x-sample (or resampled when
the series is wider than the canvas), one glyph per series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

GLYPHS = "*o+x#@%&"

Series = Sequence[Tuple[float, float]]


def _bounds(all_series: Dict[str, Series]):
    xs = [x for series in all_series.values() for x, _ in series]
    ys = [y for series in all_series.values() for _, y in series]
    if not xs:
        raise ConfigurationError("nothing to plot")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    return x_low, x_high, y_low, y_high


def line_chart(
    all_series: Dict[str, Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto one shared-axis ASCII canvas."""
    if width < 8 or height < 4:
        raise ConfigurationError("canvas too small (min 8x4)")
    if not all_series:
        raise ConfigurationError("nothing to plot")
    if len(all_series) > len(GLYPHS):
        raise ConfigurationError("too many series (max %d)" % len(GLYPHS))

    x_low, x_high, y_low, y_high = _bounds(all_series)
    canvas = [[" "] * width for _ in range(height)]

    for glyph, (name, series) in zip(GLYPHS, sorted(all_series.items())):
        for x, y in series:
            column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            canvas[height - 1 - row][column] = glyph

    lines: List[str] = []
    top_label = "%.4g" % y_high
    bottom_label = "%.4g" % y_low
    margin = max(len(top_label), len(bottom_label)) + 1
    for index, row in enumerate(canvas):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append("%s|%s" % (prefix, "".join(row)))
    lines.append("%s+%s" % (" " * margin, "-" * width))
    x_axis = "%s%s%s" % (
        ("%.4g" % x_low).ljust(width // 2),
        x_label.center(0),
        ("%.4g" % x_high).rjust(width - width // 2),
    )
    lines.append(" " * (margin + 1) + x_axis)
    legend = "   ".join(
        "%s %s" % (glyph, name)
        for glyph, (name, _) in zip(GLYPHS, sorted(all_series.items()))
    )
    if y_label:
        legend = "%s   [y: %s]" % (legend, y_label)
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
