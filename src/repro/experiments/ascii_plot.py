"""Terminal line and bar charts for the figure reproductions.

The report CLI renders each figure's series as an ASCII chart so the
*shape* -- the thing this reproduction is graded on -- is visible without
a plotting stack.  :func:`line_chart` draws one character column per
x-sample (or resampled when the series is wider than the canvas), one
glyph per series; :func:`bar_chart` draws grouped vertical bars over a
categorical x-axis (the chaos sweep's fault levels).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

GLYPHS = "*o+x#@%&"

Series = Sequence[Tuple[float, float]]


def _bounds(all_series: Dict[str, Series]):
    xs = [x for series in all_series.values() for x, _ in series]
    ys = [y for series in all_series.values() for _, y in series]
    if not xs:
        raise ConfigurationError("nothing to plot")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0
    return x_low, x_high, y_low, y_high


def line_chart(
    all_series: Dict[str, Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto one shared-axis ASCII canvas."""
    if width < 8 or height < 4:
        raise ConfigurationError("canvas too small (min 8x4)")
    if not all_series:
        raise ConfigurationError("nothing to plot")
    if len(all_series) > len(GLYPHS):
        raise ConfigurationError("too many series (max %d)" % len(GLYPHS))

    x_low, x_high, y_low, y_high = _bounds(all_series)
    canvas = [[" "] * width for _ in range(height)]

    for glyph, (name, series) in zip(GLYPHS, sorted(all_series.items())):
        for x, y in series:
            column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            canvas[height - 1 - row][column] = glyph

    lines: List[str] = []
    top_label = "%.4g" % y_high
    bottom_label = "%.4g" % y_low
    margin = max(len(top_label), len(bottom_label)) + 1
    for index, row in enumerate(canvas):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append("%s|%s" % (prefix, "".join(row)))
    lines.append("%s+%s" % (" " * margin, "-" * width))
    x_axis = "%s%s%s" % (
        ("%.4g" % x_low).ljust(width // 2),
        x_label.center(0),
        ("%.4g" % x_high).rjust(width - width // 2),
    )
    lines.append(" " * (margin + 1) + x_axis)
    legend = "   ".join(
        "%s %s" % (glyph, name)
        for glyph, (name, _) in zip(GLYPHS, sorted(all_series.items()))
    )
    if y_label:
        legend = "%s   [y: %s]" % (legend, y_label)
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    categories: Sequence[str],
    all_series: Dict[str, Sequence[float]],
    height: int = 12,
    y_label: str = "",
) -> str:
    """Grouped vertical bars: one bar column per series per category.

    Every series must supply one non-negative value per category; bars
    rise from zero so group heights compare directly.
    """
    if height < 4:
        raise ConfigurationError("canvas too short (min height 4)")
    if not categories or not all_series:
        raise ConfigurationError("nothing to plot")
    if len(all_series) > len(GLYPHS):
        raise ConfigurationError("too many series (max %d)" % len(GLYPHS))
    named = sorted(all_series.items())
    for name, values in named:
        if len(values) != len(categories):
            raise ConfigurationError(
                "series %r has %d values for %d categories"
                % (name, len(values), len(categories))
            )
        if any(value < 0 for value in values):
            raise ConfigurationError("bar values must be non-negative")
    y_high = max(value for _, values in named for value in values)
    if y_high == 0:
        y_high = 1.0

    group_width = len(named)
    gap = 2
    levels: List[List[int]] = [
        [
            # A nonzero value always shows at least one cell of bar.
            0
            if values[column] == 0
            else max(1, int(round(values[column] / y_high * height)))
            for _, values in named
        ]
        for column in range(len(categories))
    ]
    lines: List[str] = []
    top_label = "%.4g" % y_high
    bottom_label = "0"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row in range(height, 0, -1):
        cells = []
        for group in levels:
            cells.append(
                "".join(
                    glyph if level >= row else " "
                    for glyph, level in zip(GLYPHS, group)
                )
            )
        if row == height:
            prefix = top_label.rjust(margin)
        elif row == 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append("%s|%s" % (prefix, (" " * gap).join(cells)))
    width = group_width * len(categories) + gap * (len(categories) - 1)
    lines.append("%s+%s" % (" " * margin, "-" * width))
    # Groups are indexed under the axis; the mapping line spells them out
    # (category names rarely fit under a bars-wide group).
    labels = []
    for position in range(len(categories)):
        slot = group_width + (gap if position < len(categories) - 1 else 0)
        labels.append(str(position).ljust(slot)[:slot])
    lines.append(" " * (margin + 1) + "".join(labels).rstrip())
    lines.append(
        " " * (margin + 1)
        + "x: "
        + "  ".join(
            "%d=%s" % (position, category)
            for position, category in enumerate(categories)
        )
    )
    legend = "   ".join(
        "%s %s" % (glyph, name) for glyph, (name, _) in zip(GLYPHS, named)
    )
    if y_label:
        legend = "%s   [y: %s]" % (legend, y_label)
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
