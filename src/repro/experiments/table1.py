"""Table 1: CPU cost of full DFT vs incremental DFT vs AGMS updates.

The paper reports seconds of CPU time to maintain each summary per tuple
over a long stream, for windows of 80 k to 1 M tuples, on a 400 MHz
UltraSPARC.  We reproduce the *shape* on this machine: the full transform
recomputed per tuple is orders of magnitude more expensive than the
incremental DFT, whose per-update cost is comparable to AGMS sketch
maintenance; all three grow with W (iDFT and AGMS because the summary
size is W/kappa).

Measured quantity: wall-clock seconds to apply ``updates`` per-tuple
maintenance steps at window size W --

* ``DFT``  -- one full FFT recomputation per arriving tuple;
* ``iDFT`` -- one sliding-DFT step over the W/kappa tracked bins;
* ``AGMS`` -- one +1 / -1 sketch update pair (arrival + eviction) on a
  sketch of W/kappa * 5 counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._rng import ensure_rng, spawn
from repro.dft.control import ControlVector
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.experiments.reporting import format_table
from repro.parallel import map_tasks
from repro.profiling import Stopwatch
from repro.sketches.agms import AgmsSketch, SketchShape

DEFAULT_WINDOWS = (8_000, 25_000, 50_000, 100_000)
"""The paper's 80 k..1 M column scaled by 10 for wall-clock sanity."""


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (seconds of CPU time).

    ``*_seconds`` are wall-clock, ``*_cpu_seconds`` are process CPU time
    over the same interval (the paper reports CPU seconds; on an
    otherwise-idle machine the two track each other closely).
    """

    window_size: int
    full_dft_seconds: float
    incremental_dft_seconds: float
    agms_seconds: float
    full_dft_cpu_seconds: float = 0.0
    incremental_dft_cpu_seconds: float = 0.0
    agms_cpu_seconds: float = 0.0

    @property
    def speedup_incremental(self) -> float:
        if self.incremental_dft_seconds <= 0:
            return float("inf")
        return self.full_dft_seconds / self.incremental_dft_seconds


def _time_full_dft(signal: np.ndarray, window: int, updates: int) -> Stopwatch:
    """Full FFT recomputation per arriving tuple."""
    with Stopwatch() as watch:
        for index in range(updates):
            segment = signal[index : index + window]
            np.fft.fft(segment)
    return watch


def _time_incremental_dft(
    signal: np.ndarray, window: int, updates: int, kappa: int
) -> Stopwatch:
    bins = low_frequency_bins(window, max(1, window // kappa))
    sliding = SlidingDFT(
        window,
        tracked_bins=bins,
        control=ControlVector.default(window),
    )
    sliding.extend(signal[:window])
    with Stopwatch() as watch:
        for value in signal[window : window + updates]:
            sliding.update(float(value))
    return watch


def _time_agms(
    signal: np.ndarray, window: int, updates: int, kappa: int, rng
) -> Stopwatch:
    shape = SketchShape.from_total(max(5, (window // kappa) * 5))
    sketch = AgmsSketch(shape, rng=rng)
    for value in signal[:window]:
        sketch.update(int(value), +1)
    with Stopwatch() as watch:
        for index in range(updates):
            sketch.update(int(signal[window + index]), +1)
            sketch.update(int(signal[index]), -1)
    return watch


def _measure_window(payload: Dict[str, int]) -> Table1Row:
    """One window-size row.  Each cell derives its own child generator
    (``spawn`` from the root seed, indexed by position), so cells are
    independent of execution order and can run in pool workers."""
    window = int(payload["window"])
    updates = int(payload["updates"])
    kappa = int(payload["kappa"])
    children = spawn(ensure_rng(int(payload["seed"])), int(payload["count"]))
    rng = children[int(payload["position"])]
    signal = rng.integers(1, 2**19, size=window + updates).astype(np.float64)
    full = _time_full_dft(signal, window, updates)
    incremental = _time_incremental_dft(signal, window, updates, kappa)
    agms = _time_agms(signal, window, updates, kappa, rng)
    return Table1Row(
        window_size=window,
        full_dft_seconds=full.wall_seconds,
        incremental_dft_seconds=incremental.wall_seconds,
        agms_seconds=agms.wall_seconds,
        full_dft_cpu_seconds=full.cpu_seconds,
        incremental_dft_cpu_seconds=incremental.cpu_seconds,
        agms_cpu_seconds=agms.cpu_seconds,
    )


def run(
    windows: Sequence[int] = DEFAULT_WINDOWS,
    updates: int = 200,
    kappa: int = 256,
    seed: int = 2007,
    jobs: int = 0,
) -> List[Table1Row]:
    """Measure the three maintenance strategies at each window size.

    Rows are *timings* and therefore never cached; ``jobs > 1`` spreads
    the windows over workers, which shortens the wall clock but -- on a
    busy machine -- lets concurrent cells contend for cores, so keep
    timing runs at ``jobs=1`` when the absolute numbers matter (the
    shape, full DFT >> incremental, survives contention comfortably).
    """
    payloads = [
        {
            "window": window,
            "updates": updates,
            "kappa": kappa,
            "seed": seed,
            "count": len(list(windows)),
            "position": position,
        }
        for position, window in enumerate(windows)
    ]
    return list(map_tasks(_measure_window, payloads, jobs=jobs))


def format_result(rows: Sequence[Table1Row]) -> str:
    """Render the measured Table 1."""
    return format_table(
        ["W", "DFT (s)", "iDFT (s)", "AGMS (s)", "iDFT cpu", "AGMS cpu", "DFT/iDFT"],
        [
            (
                row.window_size,
                row.full_dft_seconds,
                row.incremental_dft_seconds,
                row.agms_seconds,
                row.incremental_dft_cpu_seconds,
                row.agms_cpu_seconds,
                row.speedup_incremental,
            )
            for row in rows
        ],
    )
