"""Figure 3: analytical error bounds and message complexity, uniform data.

Theorems 1 and 2 bound the error under the worst case (uniformly
distributed joining attributes) for the two budget regimes T_i = 1 and
T_i = log N; Figure 3(b) contrasts their message complexity with the
baseline's N - 1.  Pure closed forms -- no simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.bounds import (
    Budget,
    baseline_message_complexity,
    uniform_error_bound,
    uniform_message_complexity,
)
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Fig3Row:
    """One x-axis point of Figures 3(a) and 3(b)."""

    num_nodes: int
    error_t1: float
    error_tlog: float
    messages_t1: float
    messages_tlog: float
    messages_baseline: float


def run(max_nodes: int = 50) -> List[Fig3Row]:
    """Evaluate the bounds for N = 2..max_nodes."""
    rows = []
    for n in range(2, max_nodes + 1):
        rows.append(
            Fig3Row(
                num_nodes=n,
                error_t1=uniform_error_bound(n, Budget.CONSTANT),
                error_tlog=uniform_error_bound(n, Budget.LOGARITHMIC),
                messages_t1=uniform_message_complexity(n, Budget.CONSTANT),
                messages_tlog=uniform_message_complexity(n, Budget.LOGARITHMIC),
                messages_baseline=baseline_message_complexity(n),
            )
        )
    return rows


def format_result(rows: Sequence[Fig3Row]) -> str:
    return format_table(
        ["N", "eps(T=1)", "eps(T=logN)", "msgs(T=1)", "msgs(T=logN)", "msgs(BASE)"],
        [
            (
                row.num_nodes,
                row.error_t1,
                row.error_tlog,
                row.messages_t1,
                row.messages_tlog,
                row.messages_baseline,
            )
            for row in rows
        ],
    )
