"""Experiment harnesses: one module per table/figure of Section 6.

Each module exposes ``run(scale)`` returning a structured result and
``format_result(...)`` rendering the same rows/series the paper reports.
``scale`` selects a parameter preset: ``smoke`` (seconds; CI tests),
``default`` (the benchmark suite), and ``full`` (closest to the paper's
sizes that remains laptop-friendly).

Index:

====================  =======================================================
module                reproduces
====================  =======================================================
``table1``            Table 1 -- CPU time of DFT vs iDFT vs AGMS updates
``fig3``              Figure 3 -- uniform-data error/message bounds
``fig4``              Figure 4 -- Zipf-data error bounds
``fig5``              Figure 5 -- per-value reconstruction squared errors
``fig6``              Figure 6 -- MSE vs compression factor (0.25 line)
``fig8``              Figure 8 -- coefficient overhead %% vs nodes
``fig9``              Figure 9 -- messages per result tuple at eps = 15%%
``fig10``             Figure 10 -- error vs kappa (a) and vs nodes (b)
``fig11``             Figure 11 -- throughput vs nodes at eps = 15%%
``chaos``             accuracy / cost / recovery vs injected failure rate
====================  =======================================================
"""

from repro.experiments.ascii_plot import bar_chart, line_chart
from repro.experiments.calibrate import calibrate_budget
from repro.experiments.harness import ExperimentScale, get_scale
from repro.experiments.persistence import (
    load_chaos_rows,
    load_results,
    save_chaos_rows,
    save_results,
)
from repro.experiments.regression import compare as compare_results
from repro.experiments.regression import compare_chaos
from repro.experiments.reporting import format_series, format_table

__all__ = [
    "ExperimentScale",
    "get_scale",
    "calibrate_budget",
    "format_table",
    "format_series",
    "bar_chart",
    "line_chart",
    "save_results",
    "load_results",
    "save_chaos_rows",
    "load_chaos_rows",
    "compare_results",
    "compare_chaos",
]
