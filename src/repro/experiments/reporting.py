"""Plain-text rendering of experiment results.

The harnesses print the same rows/series the paper's tables and figures
show; these helpers keep that output aligned and diff-friendly (the bench
suite tees it into EXPERIMENTS.md evidence blocks).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return "%.3e" % value
        return "%.4g" % value
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Fixed-width ASCII table with a header rule."""
    rendered_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_series(name: str, points: Iterable[Sequence[Cell]]) -> str:
    """One figure series as ``name: (x, y) (x, y) ...``."""
    body = " ".join(
        "(%s)" % ", ".join(_format_cell(c) for c in point) for point in points
    )
    return "%s: %s" % (name, body)
