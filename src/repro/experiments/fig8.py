"""Figure 8: DFT coefficient updates as a percentage of net data.

The paper runs the DFT algorithm on the Zipf workload with kappa = 256
and reports that coefficient updates account for 1.38-2.84% of the bytes
of net data transmitted, *decreasing* as nodes are added (more nodes mean
more tuple traffic over which the summary bytes amortize).

This module reproduces the sweep at a chosen scale; the shape assertions
are (a) the overhead is a small fraction and (b) it trends down with N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.config import Algorithm, WorkloadKind
from repro.experiments.harness import (
    ExperimentScale,
    get_scale,
    run_grid,
    system_config,
)
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Fig8Row:
    """Overhead at one system size."""

    num_nodes: int
    summary_bytes: int
    net_data_bytes: int
    overhead_percent: float
    epsilon: float


def run(
    scale: str = "default", kappa: float = 0.0, jobs: int = 0, cache=None
) -> List[Fig8Row]:
    """DFT-policy runs across the node grid, overhead accounting on.

    Adding nodes adds stream *sources* (the paper's setting), so the
    workload scales with N: per-node arrival rate and per-node tuple
    count are held constant across the grid.  Result traffic then grows
    faster than summary traffic and the overhead percentage falls.
    """
    preset = get_scale(scale)
    reference_nodes = preset.node_grid[0]
    per_node_tuples = max(1, preset.total_tuples // reference_nodes)
    per_node_rate = preset.arrival_rate / reference_nodes
    configs = [
        system_config(
            preset,
            Algorithm.DFT,
            num_nodes,
            kappa=kappa,
            workload_kind=WorkloadKind.ZIPF,
            seed_offset=index,
            total_tuples=per_node_tuples * num_nodes,
            arrival_rate=per_node_rate * num_nodes,
        )
        for index, num_nodes in enumerate(preset.node_grid)
    ]
    results = run_grid(configs, jobs=jobs, cache=cache)
    return [
        Fig8Row(
            num_nodes=num_nodes,
            summary_bytes=int(result.traffic["summary_bytes"]),
            net_data_bytes=int(result.traffic["net_data_bytes"]),
            overhead_percent=100.0 * result.summary_overhead_fraction,
            epsilon=result.epsilon,
        )
        for num_nodes, result in zip(preset.node_grid, results)
    ]


def format_result(rows: Sequence[Fig8Row]) -> str:
    return format_table(
        ["N", "summary bytes", "net data bytes", "overhead %", "epsilon"],
        [
            (
                row.num_nodes,
                row.summary_bytes,
                row.net_data_bytes,
                row.overhead_percent,
                row.epsilon,
            )
            for row in rows
        ],
    )
