"""Figure 9: messages per result tuple, uniform vs Zipf data.

The paper fixes eps = 15% and reports, per algorithm and system size, the
total number of messages transmitted per result tuple.  Under uniform
data all filtered algorithms perform alike (the correlation signal is
flat); under skew DFTT needs the fewest messages, BLOOM fewer than SKCH,
and DFT trails both (it filters flows but cannot test individual tuples).
BASE is the unfiltered comparator.

Each (workload, N, algorithm) cell is produced by calibrating the flow
budget to the error target (see :mod:`repro.experiments.calibrate`);
BASE needs no calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import Algorithm, WorkloadKind
from repro.experiments.calibrate import calibrate_budget
from repro.experiments.harness import (
    FILTERED_ALGORITHMS,
    get_scale,
    system_config,
)
from repro.experiments.reporting import format_table
from repro.parallel import RunCache, cached_run, map_tasks

TARGET_EPSILON = 0.15


@dataclass(frozen=True)
class Fig9Cell:
    """One bar of Figure 9."""

    workload: str
    num_nodes: int
    algorithm: str
    messages_per_result_tuple: float
    messages_per_arrival: float
    achieved_epsilon: float
    calibrated_budget: float


def _run_cell(payload: Dict[str, object]) -> Fig9Cell:
    """One (workload, N, algorithm) cell; module-level so pool workers
    can import it, plain-dict payload so it pickles under spawn.

    A calibrated cell is a whole bisection (each probe's budget depends
    on the previous epsilon), so parallelism lives at the cell level and
    the probes run sequentially inside -- through the cache, so a warm
    rerun replays the identical search without simulating.
    """
    preset = get_scale(str(payload["scale"]))
    workload = WorkloadKind(payload["workload"])
    algorithm = Algorithm(payload["algorithm"])
    num_nodes = int(payload["num_nodes"])  # type: ignore[arg-type]
    index = int(payload["index"])  # type: ignore[arg-type]
    cache = RunCache.from_spec(payload["cache"])  # type: ignore[arg-type]
    if algorithm is Algorithm.BASE:
        config = system_config(
            preset,
            Algorithm.BASE,
            num_nodes,
            workload_kind=workload,
            seed_offset=index,
        )
        result = cached_run(config, cache)
        return Fig9Cell(
            workload=workload.value,
            num_nodes=num_nodes,
            algorithm=Algorithm.BASE.value,
            messages_per_result_tuple=result.messages_per_result_tuple,
            messages_per_arrival=result.messages_per_arrival,
            achieved_epsilon=result.epsilon,
            calibrated_budget=float(num_nodes - 1),
        )
    calibration = calibrate_budget(
        lambda budget: system_config(
            preset,
            algorithm,
            num_nodes,
            workload_kind=workload,
            budget_override=budget,
            seed_offset=index,
        ),
        target_epsilon=float(payload["target_epsilon"]),  # type: ignore[arg-type]
        max_probes=int(payload["max_probes"]),  # type: ignore[arg-type]
        runner=lambda config: cached_run(config, cache),
    )
    result = calibration.result
    return Fig9Cell(
        workload=workload.value,
        num_nodes=num_nodes,
        algorithm=algorithm.value,
        messages_per_result_tuple=result.messages_per_result_tuple,
        messages_per_arrival=result.messages_per_arrival,
        achieved_epsilon=calibration.achieved_epsilon,
        calibrated_budget=calibration.budget,
    )


def run(
    scale: str = "default",
    workloads: Sequence[WorkloadKind] = (WorkloadKind.UNIFORM, WorkloadKind.ZIPF),
    target_epsilon: float = TARGET_EPSILON,
    max_probes: int = 5,
    jobs: int = 0,
    cache: Optional[RunCache] = None,
) -> List[Fig9Cell]:
    """Calibrated message-efficiency comparison."""
    preset = get_scale(scale)
    spec = None if cache is None else cache.spec()
    payloads = [
        {
            "scale": scale,
            "workload": workload.value,
            "num_nodes": num_nodes,
            "index": index,
            "algorithm": algorithm.value,
            "target_epsilon": target_epsilon,
            "max_probes": max_probes,
            "cache": spec,
        }
        for workload in workloads
        for index, num_nodes in enumerate(preset.node_grid)
        for algorithm in (Algorithm.BASE,) + tuple(FILTERED_ALGORITHMS)
    ]
    return list(map_tasks(_run_cell, payloads, jobs=jobs))


def format_result(cells: Sequence[Fig9Cell]) -> str:
    return format_table(
        ["workload", "N", "algo", "msgs/result", "msgs/arrival", "eps", "budget T"],
        [
            (
                c.workload,
                c.num_nodes,
                c.algorithm,
                c.messages_per_result_tuple,
                c.messages_per_arrival,
                c.achieved_epsilon,
                c.calibrated_budget,
            )
            for c in cells
        ],
    )


def by_algorithm(
    cells: Sequence[Fig9Cell], workload: str
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure series: algorithm -> [(N, messages per result tuple)]."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for cell in cells:
        if cell.workload != workload:
            continue
        series.setdefault(cell.algorithm, []).append(
            (cell.num_nodes, cell.messages_per_result_tuple)
        )
    return series
