"""Figure 9: messages per result tuple, uniform vs Zipf data.

The paper fixes eps = 15% and reports, per algorithm and system size, the
total number of messages transmitted per result tuple.  Under uniform
data all filtered algorithms perform alike (the correlation signal is
flat); under skew DFTT needs the fewest messages, BLOOM fewer than SKCH,
and DFT trails both (it filters flows but cannot test individual tuples).
BASE is the unfiltered comparator.

Each (workload, N, algorithm) cell is produced by calibrating the flow
budget to the error target (see :mod:`repro.experiments.calibrate`);
BASE needs no calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import Algorithm, WorkloadKind
from repro.core.system import run_experiment
from repro.experiments.calibrate import calibrate_budget
from repro.experiments.harness import (
    FILTERED_ALGORITHMS,
    get_scale,
    system_config,
)
from repro.experiments.reporting import format_table

TARGET_EPSILON = 0.15


@dataclass(frozen=True)
class Fig9Cell:
    """One bar of Figure 9."""

    workload: str
    num_nodes: int
    algorithm: str
    messages_per_result_tuple: float
    messages_per_arrival: float
    achieved_epsilon: float
    calibrated_budget: float


def run(
    scale: str = "default",
    workloads: Sequence[WorkloadKind] = (WorkloadKind.UNIFORM, WorkloadKind.ZIPF),
    target_epsilon: float = TARGET_EPSILON,
    max_probes: int = 5,
) -> List[Fig9Cell]:
    """Calibrated message-efficiency comparison."""
    preset = get_scale(scale)
    cells = []
    for workload in workloads:
        for index, num_nodes in enumerate(preset.node_grid):
            base_config = system_config(
                preset,
                Algorithm.BASE,
                num_nodes,
                workload_kind=workload,
                seed_offset=index,
            )
            base_result = run_experiment(base_config)
            cells.append(
                Fig9Cell(
                    workload=workload.value,
                    num_nodes=num_nodes,
                    algorithm=Algorithm.BASE.value,
                    messages_per_result_tuple=base_result.messages_per_result_tuple,
                    messages_per_arrival=base_result.messages_per_arrival,
                    achieved_epsilon=base_result.epsilon,
                    calibrated_budget=float(num_nodes - 1),
                )
            )
            for algorithm in FILTERED_ALGORITHMS:
                calibration = calibrate_budget(
                    lambda budget, a=algorithm, n=num_nodes, w=workload, i=index: (
                        system_config(
                            preset,
                            a,
                            n,
                            workload_kind=w,
                            budget_override=budget,
                            seed_offset=i,
                        )
                    ),
                    target_epsilon=target_epsilon,
                    max_probes=max_probes,
                )
                result = calibration.result
                cells.append(
                    Fig9Cell(
                        workload=workload.value,
                        num_nodes=num_nodes,
                        algorithm=algorithm.value,
                        messages_per_result_tuple=result.messages_per_result_tuple,
                        messages_per_arrival=result.messages_per_arrival,
                        achieved_epsilon=calibration.achieved_epsilon,
                        calibrated_budget=calibration.budget,
                    )
                )
    return cells


def format_result(cells: Sequence[Fig9Cell]) -> str:
    return format_table(
        ["workload", "N", "algo", "msgs/result", "msgs/arrival", "eps", "budget T"],
        [
            (
                c.workload,
                c.num_nodes,
                c.algorithm,
                c.messages_per_result_tuple,
                c.messages_per_arrival,
                c.achieved_epsilon,
                c.calibrated_budget,
            )
            for c in cells
        ],
    )


def by_algorithm(
    cells: Sequence[Fig9Cell], workload: str
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure series: algorithm -> [(N, messages per result tuple)]."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for cell in cells:
        if cell.workload != workload:
            continue
        series.setdefault(cell.algorithm, []).append(
            (cell.num_nodes, cell.messages_per_result_tuple)
        )
    return series
