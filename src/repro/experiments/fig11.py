"""Figure 11: throughput vs system size at eps = 15%.

The paper offers each algorithm the same high-rate streams and measures
joining tuples reported per second.  BASE collapses first: its (N-1)
transmissions per tuple saturate the 90 kbps sender budget, so its nodes
spend almost all their service time paused on the emulated link.  DFTT,
transmitting the fewest messages at the fixed error level, sustains the
highest throughput.

Procedure per (N, algorithm): calibrate the budget to eps = 15% at a
moderate arrival rate, then re-run at a deliberately saturating rate and
report the sustained result rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import Algorithm, WorkloadKind
from repro.experiments.calibrate import calibrate_budget
from repro.experiments.harness import FILTERED_ALGORITHMS, get_scale, system_config
from repro.experiments.reporting import format_table
from repro.parallel import RunCache, cached_run, map_tasks

TARGET_EPSILON = 0.15
SATURATION_FACTOR = 6.0
"""The throughput run offers this multiple of the calibration rate."""


@dataclass(frozen=True)
class Fig11Row:
    """One (N, algorithm) point of Figure 11."""

    num_nodes: int
    algorithm: str
    throughput: float
    sustained_throughput: float
    epsilon_at_calibration: float
    calibrated_budget: float


def _run_cell(payload: Dict[str, object]) -> Fig11Row:
    """One (N, algorithm) cell: calibrate, then the saturating rerun.

    Module-level with a plain-dict payload so spawn workers can run it;
    the calibration bisection stays sequential inside the cell (each
    probe depends on the last) and goes through the cache.
    """
    preset = get_scale(str(payload["scale"]))
    workload = WorkloadKind(payload["workload"])
    algorithm = Algorithm(payload["algorithm"])
    num_nodes = int(payload["num_nodes"])  # type: ignore[arg-type]
    index = int(payload["index"])  # type: ignore[arg-type]
    cache = RunCache.from_spec(payload["cache"])  # type: ignore[arg-type]
    if algorithm is Algorithm.BASE:
        budget = float(num_nodes - 1)
        epsilon = 0.0
    else:
        calibration = calibrate_budget(
            lambda b: system_config(
                preset,
                algorithm,
                num_nodes,
                workload_kind=workload,
                budget_override=b,
                seed_offset=index,
            ),
            target_epsilon=float(payload["target_epsilon"]),  # type: ignore[arg-type]
            max_probes=int(payload["max_probes"]),  # type: ignore[arg-type]
            runner=lambda config: cached_run(config, cache),
        )
        budget = calibration.budget
        epsilon = calibration.achieved_epsilon
    saturated = system_config(
        preset,
        algorithm,
        num_nodes,
        workload_kind=workload,
        budget_override=budget if algorithm is not Algorithm.BASE else 0.0,
        arrival_rate=preset.arrival_rate * SATURATION_FACTOR,
        seed_offset=index,
    )
    result = cached_run(saturated, cache)
    return Fig11Row(
        num_nodes=num_nodes,
        algorithm=algorithm.value,
        throughput=result.throughput,
        sustained_throughput=result.sustained_throughput,
        epsilon_at_calibration=epsilon,
        calibrated_budget=budget,
    )


def run(
    scale: str = "default",
    workload: WorkloadKind = WorkloadKind.ZIPF,
    target_epsilon: float = TARGET_EPSILON,
    max_probes: int = 4,
    jobs: int = 0,
    cache: Optional[RunCache] = None,
) -> List[Fig11Row]:
    """Calibrated throughput comparison across the node grid."""
    preset = get_scale(scale)
    spec = None if cache is None else cache.spec()
    payloads = [
        {
            "scale": scale,
            "workload": workload.value,
            "num_nodes": num_nodes,
            "index": index,
            "algorithm": algorithm.value,
            "target_epsilon": target_epsilon,
            "max_probes": max_probes,
            "cache": spec,
        }
        for index, num_nodes in enumerate(preset.node_grid)
        for algorithm in (Algorithm.BASE,) + tuple(FILTERED_ALGORITHMS)
    ]
    return list(map_tasks(_run_cell, payloads, jobs=jobs))


def format_result(rows: Sequence[Fig11Row]) -> str:
    return format_table(
        ["N", "algo", "results/s", "sustained/s", "eps@cal", "budget T"],
        [
            (
                r.num_nodes,
                r.algorithm,
                r.throughput,
                r.sustained_throughput,
                r.epsilon_at_calibration,
                r.calibrated_budget,
            )
            for r in rows
        ],
    )
