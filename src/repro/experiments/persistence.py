"""Result persistence: RunResult and ChaosRow sets to/from JSON.

Experiment sweeps are expensive; persisting their results lets reports
and regression comparisons run without re-simulating.  The format is a
plain JSON object mirroring :class:`~repro.core.results.RunResult`'s
fields, with integer node keys stringified (JSON objects key on strings)
and restored on load.

Loading is *strict*: a payload carrying keys this version does not know
(or missing ones it requires) raises
:class:`~repro.errors.ConfigurationError` instead of silently dropping
them, so a stale ``BENCH_*``/result file fails loudly in the regression
gate rather than diffing garbage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.core.results import RunResult
from repro.errors import ConfigurationError

FORMAT_VERSION = 1

RESULT_KEYS = frozenset(
    {
        "format_version",
        "config",
        "truth_pairs",
        "reported_pairs",
        "duplicate_reports",
        "spurious_reports",
        "tuples_arrived",
        "duration_seconds",
        "arrival_span_seconds",
        "traffic",
        "messages_by_kind",
        "node_diagnostics",
        "throughput_series",
        "sustained_throughput",
        "per_query",
        "latency",
        "reliability",
        "faults",
        "recovery",
    }
)
"""Exactly the keys :func:`result_to_dict` writes."""

OPTIONAL_RESULT_KEYS = frozenset(
    {"per_query", "latency", "reliability", "faults", "recovery"}
)
"""Keys older files may legitimately lack (they default to empty)."""


def result_to_dict(result: RunResult) -> dict:
    """JSON-ready dictionary capturing the full result."""
    return {
        "format_version": FORMAT_VERSION,
        "config": result.config,
        "truth_pairs": result.truth_pairs,
        "reported_pairs": result.reported_pairs,
        "duplicate_reports": result.duplicate_reports,
        "spurious_reports": result.spurious_reports,
        "tuples_arrived": result.tuples_arrived,
        "duration_seconds": result.duration_seconds,
        "arrival_span_seconds": result.arrival_span_seconds,
        "traffic": {k: float(v) for k, v in result.traffic.items()},
        "messages_by_kind": dict(result.messages_by_kind),
        "node_diagnostics": {
            str(node): {k: float(v) for k, v in diagnostics.items()}
            for node, diagnostics in result.node_diagnostics.items()
        },
        "throughput_series": [list(point) for point in result.throughput_series],
        "sustained_throughput": result.sustained_throughput,
        "per_query": result.per_query,
        "latency": result.latency,
        "reliability": {k: float(v) for k, v in result.reliability.items()},
        "faults": {k: float(v) for k, v in result.faults.items()},
        "recovery": {k: float(v) for k, v in result.recovery.items()},
    }


def _check_schema(payload: dict) -> None:
    """Reject payloads whose key set disagrees with this code version."""
    keys = set(payload)
    unknown = keys - RESULT_KEYS
    if unknown:
        raise ConfigurationError(
            "result payload has unknown keys %s (written by a newer or "
            "foreign format?)" % ", ".join(sorted(unknown))
        )
    missing = RESULT_KEYS - keys - OPTIONAL_RESULT_KEYS
    if missing:
        raise ConfigurationError(
            "result payload is missing keys %s (truncated or stale file?)"
            % ", ".join(sorted(missing))
        )


def result_from_dict(payload: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            "unsupported result format version %r (expected %d)"
            % (version, FORMAT_VERSION)
        )
    _check_schema(payload)
    return RunResult(
        config=payload["config"],
        truth_pairs=int(payload["truth_pairs"]),
        reported_pairs=int(payload["reported_pairs"]),
        duplicate_reports=int(payload["duplicate_reports"]),
        spurious_reports=int(payload["spurious_reports"]),
        tuples_arrived=int(payload["tuples_arrived"]),
        duration_seconds=float(payload["duration_seconds"]),
        arrival_span_seconds=float(payload["arrival_span_seconds"]),
        traffic=payload["traffic"],
        messages_by_kind={k: int(v) for k, v in payload["messages_by_kind"].items()},
        node_diagnostics={
            int(node): diagnostics
            for node, diagnostics in payload["node_diagnostics"].items()
        },
        throughput_series=[tuple(point) for point in payload["throughput_series"]],
        sustained_throughput=float(payload["sustained_throughput"]),
        per_query=payload.get("per_query", []),
        latency=payload.get("latency", {}),
        reliability=payload.get("reliability", {}),
        faults=payload.get("faults", {}),
        recovery=payload.get("recovery", {}),
    )


def save_results(results: List[RunResult], path: Union[str, Path]) -> None:
    """Write a list of results to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=float))


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read results previously written by :func:`save_results`."""
    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError("no results file at %s" % file_path)
    payload = json.loads(file_path.read_text())
    if payload.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError("unsupported results file version")
    unknown = set(payload) - {"format_version", "results"}
    if unknown:
        raise ConfigurationError(
            "results file %s has unknown top-level keys %s"
            % (file_path, ", ".join(sorted(unknown)))
        )
    return [result_from_dict(entry) for entry in payload["results"]]


# ----------------------------------------------------------------------
# chaos sweeps
# ----------------------------------------------------------------------


def save_chaos_rows(rows: Sequence, path: Union[str, Path]) -> None:
    """Write a chaos sweep's rows in the canonical (golden-diffable) form."""
    from repro.experiments.chaos import rows_to_json

    Path(path).write_text(rows_to_json(rows))


def load_chaos_rows(path: Union[str, Path]) -> List:
    """Read rows previously written by :func:`save_chaos_rows`.

    Strict like :func:`load_results`: unknown row fields or a version
    mismatch raise :class:`ConfigurationError`.
    """
    from repro.experiments.chaos import rows_from_json

    file_path = Path(path)
    if not file_path.exists():
        raise ConfigurationError("no chaos results file at %s" % file_path)
    return rows_from_json(file_path.read_text())
