"""Figure 4: analytical error bounds under Zipf data (Theorem 3).

Evaluates the printed formulas at alpha = 0.4 for 2..20 sites, for both
the O(1) and O(log N) budgets.  The qualitative claim -- under skew the
O(log N) bound stops growing with N instead of running off to 1 as the
uniform worst case does -- is what the figure (and our bench assertion)
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.bounds import Budget, uniform_error_bound, zipf_error_bound
from repro.experiments.reporting import format_table


@dataclass(frozen=True)
class Fig4Row:
    """One x-axis point of Figure 4."""

    num_nodes: int
    error_o1: float
    error_olog: float
    uniform_error_olog: float
    """The Theorem 2 (worst-case) curve, for contrast."""


def run(max_nodes: int = 20, alpha: float = 0.4) -> List[Fig4Row]:
    """Evaluate Theorem 3 for N = 2..max_nodes."""
    rows = []
    for n in range(2, max_nodes + 1):
        rows.append(
            Fig4Row(
                num_nodes=n,
                error_o1=zipf_error_bound(n, alpha, Budget.CONSTANT),
                error_olog=zipf_error_bound(n, alpha, Budget.LOGARITHMIC),
                uniform_error_olog=uniform_error_bound(n, Budget.LOGARITHMIC),
            )
        )
    return rows


def format_result(rows: Sequence[Fig4Row]) -> str:
    return format_table(
        ["N", "eps O(1)", "eps O(logN)", "eps uniform O(logN)"],
        [
            (row.num_nodes, row.error_o1, row.error_olog, row.uniform_error_olog)
            for row in rows
        ],
    )
