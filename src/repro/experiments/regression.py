"""Regression comparison between two result sets.

Workflow: save a sweep's results with
:func:`repro.experiments.persistence.save_results` as the baseline; after
changing the code, rerun the sweep and diff against the baseline.  Runs
are matched by their configuration echo (minus the fields expected to
vary), and each headline metric's drift is reported against a relative
tolerance.

Chaos sweeps gate the same way through :func:`compare_chaos`: rows are
matched on (scale, algorithm, mesh, fault level, seed) and the chaos
headline metrics -- epsilon, bytes on the wire, recovery latency, time in
worst-case mode -- are diffed.  Because chaos runs are byte-deterministic
per seed + plan, a same-code comparison shows exactly zero drift; any
nonzero drift is a real behavioural change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.experiments.reporting import format_table

MATCH_FIELDS = (
    "algorithm",
    "num_nodes",
    "window_size",
    "kappa",
    "workload",
    "total_tuples",
    "seed",
)
"""Config fields that identify 'the same run' across code versions."""

COMPARED_METRICS = (
    "epsilon",
    "messages_per_result_tuple",
    "messages_per_arrival",
    "throughput",
    "summary_overhead_fraction",
)


def run_key(result: RunResult) -> Tuple:
    """The identity of a run for baseline matching."""
    return tuple(result.config.get(field) for field in MATCH_FIELDS)


@dataclass(frozen=True)
class MetricDrift:
    """One metric's change between baseline and candidate."""

    key: Tuple
    metric: str
    baseline: float
    candidate: float
    tolerance: float

    @property
    def relative_change(self) -> float:
        scale = max(abs(self.baseline), 1e-12)
        return (self.candidate - self.baseline) / scale

    @property
    def within_tolerance(self) -> bool:
        return abs(self.relative_change) <= self.tolerance


@dataclass
class RegressionReport:
    """Outcome of comparing two result sets."""

    drifts: List[MetricDrift]
    unmatched_baseline: List[Tuple]
    unmatched_candidate: List[Tuple]

    @property
    def regressions(self) -> List[MetricDrift]:
        return [drift for drift in self.drifts if not drift.within_tolerance]

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.unmatched_baseline

    def format(self) -> str:
        rows = [
            (
                "/".join(str(part) for part in drift.key[:2]),
                drift.metric,
                drift.baseline,
                drift.candidate,
                100 * drift.relative_change,
                drift.within_tolerance,
            )
            for drift in self.drifts
        ]
        table = format_table(
            ["run", "metric", "baseline", "candidate", "drift %", "ok"], rows
        )
        footer = "\n%d regression(s); %d unmatched baseline run(s)" % (
            len(self.regressions),
            len(self.unmatched_baseline),
        )
        return table + footer


def compare(
    baseline: Sequence[RunResult],
    candidate: Sequence[RunResult],
    tolerance: float = 0.10,
    metrics: Sequence[str] = COMPARED_METRICS,
) -> RegressionReport:
    """Match runs by configuration and diff their headline metrics."""
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    baseline_by_key: Dict[Tuple, RunResult] = {}
    for result in baseline:
        key = run_key(result)
        if key in baseline_by_key:
            raise ConfigurationError("duplicate baseline run %r" % (key,))
        baseline_by_key[key] = result

    drifts: List[MetricDrift] = []
    matched = set()
    unmatched_candidate = []
    for result in candidate:
        key = run_key(result)
        reference = baseline_by_key.get(key)
        if reference is None:
            unmatched_candidate.append(key)
            continue
        matched.add(key)
        reference_summary = reference.summary()
        candidate_summary = result.summary()
        for metric in metrics:
            drifts.append(
                MetricDrift(
                    key=key,
                    metric=metric,
                    baseline=float(reference_summary[metric]),
                    candidate=float(candidate_summary[metric]),
                    tolerance=tolerance,
                )
            )
    unmatched_baseline = [key for key in baseline_by_key if key not in matched]
    return RegressionReport(
        drifts=drifts,
        unmatched_baseline=unmatched_baseline,
        unmatched_candidate=unmatched_candidate,
    )


CHAOS_MATCH_FIELDS = (
    "scale",
    "algorithm",
    "num_nodes",
    "level",
    "seed",
    "recovery_enabled",
)
"""Fields identifying 'the same chaos cell' across code versions (the
``--recovery`` comparison mode emits the same (algo, level) cell twice,
distinguished by ``recovery_enabled``)."""

CHAOS_COMPARED_METRICS = (
    "epsilon",
    "total_bytes",
    "bytes_lost",
    "messages_blocked",
    "recovery_latency_mean_s",
    "worst_case_s",
    "dead_letters",
    "tuples_replayed",
    "rejoin_latency_s",
)


def chaos_key(row) -> Tuple:
    """The identity of a chaos cell for baseline matching."""
    payload = row.as_dict()
    return tuple(payload.get(field) for field in CHAOS_MATCH_FIELDS)


def compare_chaos(
    baseline: Sequence,
    candidate: Sequence,
    tolerance: float = 0.15,
    metrics: Sequence[str] = CHAOS_COMPARED_METRICS,
) -> RegressionReport:
    """Match chaos rows by cell identity and diff their headline metrics."""
    if tolerance < 0:
        raise ConfigurationError("tolerance must be non-negative")
    baseline_by_key: Dict[Tuple, object] = {}
    for row in baseline:
        key = chaos_key(row)
        if key in baseline_by_key:
            raise ConfigurationError("duplicate baseline chaos cell %r" % (key,))
        baseline_by_key[key] = row

    drifts: List[MetricDrift] = []
    matched = set()
    unmatched_candidate = []
    for row in candidate:
        key = chaos_key(row)
        reference = baseline_by_key.get(key)
        if reference is None:
            unmatched_candidate.append(key)
            continue
        matched.add(key)
        reference_payload = reference.as_dict()
        candidate_payload = row.as_dict()
        for metric in metrics:
            drifts.append(
                MetricDrift(
                    key=key,
                    metric=metric,
                    baseline=float(reference_payload[metric]),
                    candidate=float(candidate_payload[metric]),
                    tolerance=tolerance,
                )
            )
    unmatched_baseline = [key for key in baseline_by_key if key not in matched]
    return RegressionReport(
        drifts=drifts,
        unmatched_baseline=unmatched_baseline,
        unmatched_candidate=unmatched_candidate,
    )
