"""Chaos sweep: accuracy and transmission cost versus failure rate.

The paper's Section 6 figures are measured on a *clean* emulated WAN.
This experiment adds the axis the deployment literature cares about:
each algorithm is run across a grid of **fault intensities** -- loss-burst
probability, partition duration, crash count -- with the reliable control
plane on, and every cell reports

* the join error (Equation 1's epsilon),
* the transmission cost (total bytes on the wire, bytes destroyed),
* the recovery behaviour (failure detections, recoveries, resync count,
  recovery latency from :mod:`repro.core.health`), and
* the time the forwarding policies spent in worst-case fallback mode,
  reconstructed from the telemetry hub's ``policy.worst_case_mode`` flips.

Fault schedules are built deterministically from the scale preset (event
windows are placed relative to the nominal arrival span), so a chaos
sweep is exactly as reproducible as the clean figures: same seed + same
grid = byte-identical rows.

Usage::

    python -m repro.experiments.chaos smoke
    python -m repro.experiments.chaos bench \\
        --fault-grid "clean; storm@loss=0.5; split@part=4s,crash=1" \\
        --out chaos.json --figure chaos.txt
    python -m repro.experiments.chaos smoke --baseline chaos.json
    python -m repro.experiments.chaos smoke --jobs 4          # parallel cells
    python -m repro.experiments.chaos smoke --no-cache        # force recompute

(also reachable as ``python -m repro experiments chaos ...``).  Cells
fan out over :mod:`repro.parallel` workers and reuse its run-result
cache; rows are byte-identical at any ``--jobs`` / cache setting.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import Algorithm
from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import bar_chart, line_chart
from repro.experiments.harness import (
    COMPARED_ALGORITHMS,
    ExperimentScale,
    get_scale,
    system_config,
)
from repro.experiments.reporting import format_table
from repro.net.faults import FaultEvent, FaultKind, FaultPlan
from repro.net.reliable import ReliabilitySettings
from repro.overload import OverloadSettings
from repro.parallel import RunCache, RunRequest, run_many
from repro.recovery.settings import RecoverySettings

CHAOS_FORMAT_VERSION = 4
"""Version 4 added the overload axis (``over=F`` grid knob) and the
shedding columns (tuples/messages shed, throttled/shedding residency).
Version 3 added the state-transfer columns (bytes, delta savings,
fallbacks) for the watermark-delta resync protocol."""

WORST_CASE_EVENT = "policy.worst_case_mode"


# ----------------------------------------------------------------------
# the fault grid
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosLevel:
    """One fault intensity of the sweep.

    The four knobs are the failure axes the sweep is graded on:
    ``loss_probability`` drives a mesh-wide loss burst, ``partition_s``
    cuts half the mesh off for that many seconds, ``crash_count``
    crashes that many nodes (staggered, highest ids first), and
    ``overload_factor`` stretches node 0's service times by that
    multiple for the middle of the run (a CPU-contention surge).  All
    zero means the clean-WAN baseline cell.
    """

    name: str
    loss_probability: float = 0.0
    partition_s: float = 0.0
    crash_count: int = 0
    overload_factor: float = 0.0

    def validate(self) -> None:
        if not self.name or any(c in self.name for c in ";,@= \t"):
            raise ConfigurationError(
                "chaos level name %r must be a bare word" % (self.name,)
            )
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigurationError("loss probability must lie in [0, 1]")
        if self.partition_s < 0:
            raise ConfigurationError("partition duration must be non-negative")
        if self.crash_count < 0:
            raise ConfigurationError("crash count must be non-negative")
        if self.overload_factor != 0.0 and self.overload_factor <= 1.0:
            raise ConfigurationError(
                "overload factor must exceed 1 (it multiplies service times)"
            )

    @property
    def clean(self) -> bool:
        return (
            self.loss_probability == 0.0
            and self.partition_s == 0.0
            and self.crash_count == 0
            and self.overload_factor == 0.0
        )

    @property
    def intensity(self) -> float:
        """A scalar ordering of the grid (the figure's x-axis)."""
        return (
            self.loss_probability
            + self.partition_s / 10.0
            + float(self.crash_count)
            + self.overload_factor / 10.0
        )

    def to_spec(self) -> str:
        """Render in the grammar :func:`parse_grid` reads; round trip exact."""
        parts = []
        if self.loss_probability:
            parts.append("loss=%r" % self.loss_probability)
        if self.partition_s:
            parts.append("part=%r" % self.partition_s)
        if self.crash_count:
            parts.append("crash=%d" % self.crash_count)
        if self.overload_factor:
            parts.append("over=%r" % self.overload_factor)
        if not parts:
            return self.name
        return "%s@%s" % (self.name, ",".join(parts))

    @classmethod
    def parse(cls, chunk: str) -> "ChaosLevel":
        """One level: ``name`` (clean) or ``name@loss=P,part=Ds,crash=K``."""
        name, _, arg_text = chunk.strip().partition("@")
        name = name.strip()
        loss = 0.0
        partition = 0.0
        crashes = 0
        overload = 0.0
        for pair in filter(None, (p.strip() for p in arg_text.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise ConfigurationError(
                    "malformed chaos argument %r in %r" % (pair, chunk)
                )
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "loss":
                    loss = float(value)
                elif key in ("part", "partition"):
                    if value.lower().endswith("s"):
                        value = value[:-1]
                    partition = float(value)
                elif key in ("crash", "crashes"):
                    crashes = int(value)
                elif key in ("over", "overload"):
                    overload = float(value)
                else:
                    raise ConfigurationError(
                        "unknown chaos argument %r in %r" % (key, chunk)
                    )
            except ValueError:
                raise ConfigurationError(
                    "cannot parse chaos argument %r in %r" % (pair, chunk)
                )
        level = cls(
            name=name,
            loss_probability=loss,
            partition_s=partition,
            crash_count=crashes,
            overload_factor=overload,
        )
        level.validate()
        return level


DEFAULT_GRID: Tuple[ChaosLevel, ...] = (
    ChaosLevel("clean"),
    ChaosLevel("light", loss_probability=0.15),
    ChaosLevel("moderate", loss_probability=0.30, partition_s=2.0),
    ChaosLevel("severe", loss_probability=0.45, partition_s=3.0, crash_count=1),
)
"""The stock failure-rate axis: a clean baseline plus three intensities."""


def parse_grid(spec: str) -> Tuple[ChaosLevel, ...]:
    """Parse a ``;``-separated fault grid (``clean; storm@loss=0.4,crash=1``)."""
    levels = [ChaosLevel.parse(chunk) for chunk in spec.split(";") if chunk.strip()]
    if not levels:
        raise ConfigurationError("fault grid spec %r contains no levels" % spec)
    names = [level.name for level in levels]
    if len(set(names)) != len(names):
        raise ConfigurationError("fault grid has duplicate level names %r" % names)
    return tuple(levels)


def grid_to_spec(grid: Sequence[ChaosLevel]) -> str:
    """Inverse of :func:`parse_grid`."""
    if not grid:
        raise ConfigurationError("an empty fault grid has no spec form")
    return "; ".join(level.to_spec() for level in grid)


def build_fault_plan(
    level: ChaosLevel,
    scale: ExperimentScale,
    num_nodes: int,
    restartable: bool = False,
) -> FaultPlan:
    """Deterministic fault schedule for one (level, scale, mesh) cell.

    Windows are placed relative to the nominal arrival span
    (``total_tuples / arrival_rate``) and kept inside its first ~80 % so
    the mesh has live traffic left to detect recoveries with:

    * loss burst  -- all links, ``[0.20, 0.55) * span``;
    * partition   -- first half of the mesh cut off at ``0.30 * span``,
      duration capped at half the span;
    * crashes     -- highest-id nodes, staggered starts from
      ``0.55 * span``, each outage capped at a quarter of the span;
    * overload    -- node 0's service times stretched by
      ``overload_factor`` over ``[0.25, 0.75) * span`` (node 0 so the
      surge never coincides with a crashed node).

    ``restartable`` spells the crashes with ``downtime_s`` equal to the
    legacy crash duration, so the outage window is *identical* and the
    only difference between the recovery-on and recovery-off cells is the
    rejoin protocol itself -- the apples-to-apples comparison the
    ``--recovery`` mode reports.
    """
    level.validate()
    if level.crash_count >= num_nodes:
        raise ConfigurationError(
            "cannot crash %d of %d nodes" % (level.crash_count, num_nodes)
        )
    span = scale.total_tuples / scale.arrival_rate
    events: List[FaultEvent] = []
    if level.loss_probability > 0:
        events.append(
            FaultEvent(
                kind=FaultKind.LOSS_BURST,
                start_s=round(0.20 * span, 6),
                duration_s=round(0.35 * span, 6),
                loss_probability=level.loss_probability,
            )
        )
    if level.partition_s > 0:
        events.append(
            FaultEvent(
                kind=FaultKind.PARTITION,
                start_s=round(0.30 * span, 6),
                duration_s=round(min(level.partition_s, 0.5 * span), 6),
                nodes=tuple(range(num_nodes // 2)),
            )
        )
    for index in range(level.crash_count):
        outage = round(min(1.5, 0.25 * span), 6)
        events.append(
            FaultEvent(
                kind=FaultKind.NODE_CRASH,
                start_s=round((0.55 + 0.08 * index) * span, 6),
                duration_s=outage,
                nodes=(num_nodes - 1 - index,),
                downtime_s=outage if restartable else 0.0,
            )
        )
    if level.overload_factor > 0:
        events.append(
            FaultEvent(
                kind=FaultKind.OVERLOAD,
                start_s=round(0.25 * span, 6),
                duration_s=round(0.50 * span, 6),
                nodes=(0,),
                slowdown_factor=level.overload_factor,
            )
        )
    plan = FaultPlan.from_events(events)
    plan.validate(num_nodes)
    return plan


# ----------------------------------------------------------------------
# rows
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosRow:
    """One cell of the chaos figure: (algorithm, fault level) at a scale."""

    scale: str
    algorithm: str
    num_nodes: int
    seed: int
    level: str
    loss_probability: float
    partition_s: float
    crash_count: int
    fault_events: int
    epsilon: float
    truth_pairs: int
    reported_pairs: int
    total_bytes: float
    bytes_lost: float
    data_messages: int
    messages_blocked: float
    local_arrivals_dropped: float
    failures_detected: float
    recoveries: float
    recovery_latency_mean_s: float
    recovery_latency_max_s: float
    resyncs: float
    worst_case_s: float
    duration_seconds: float
    recovery_enabled: bool
    restarts: float
    tuples_replayed: float
    rejoin_latency_s: float
    """Mean seconds from restart to LIVE across the cell's rejoins."""

    dead_letters: float
    """Reliable-channel sends whose retries were exhausted (the messages
    the ARQ gave up on; surfaced per-event as ``transport.dead_letter``)."""

    state_transfer_bytes: float = 0.0
    """Bytes of recovery anti-entropy traffic (requests + responses)."""

    transfer_bytes_saved: float = 0.0
    """Bytes the watermark-delta resync kept off the wire relative to
    shipping full snapshots (zero with ``delta_state_transfer`` off)."""

    transfer_fallbacks: float = 0.0
    """Delta resync responses downgraded to full snapshots because the
    serving peer's history no longer covered the claimed watermark."""

    overload_factor: float = 0.0
    """The level's service-time multiplier (0 = no overload fault)."""

    overload_enabled: bool = False
    """Whether the cell ran with overload protection armed."""

    shed_tuples: float = 0.0
    """Local arrivals dropped by node-level load shedding (still charged
    against the ground truth -- shedding shows up as lost recall)."""

    shed_messages: float = 0.0
    """Queued remote messages dropped by node-level shedding plus
    messages shed at bounded link send backlogs."""

    throttled_seconds: float = 0.0
    """Total node-seconds spent in THROTTLED across the mesh."""

    shedding_seconds: float = 0.0
    """Total node-seconds spent in SHEDDING across the mesh."""

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosRow":
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - names
        if unknown:
            raise ConfigurationError(
                "chaos row has unknown fields %s (stale file format?)"
                % ", ".join(sorted(unknown))
            )
        missing = names - set(payload)
        if missing:
            raise ConfigurationError(
                "chaos row is missing fields %s" % ", ".join(sorted(missing))
            )
        try:
            return cls(**payload)  # type: ignore[arg-type]
        except TypeError as error:
            raise ConfigurationError("malformed chaos row: %s" % error)


def worst_case_seconds(events: Iterable, end_time: float) -> float:
    """Total simulated seconds any policy spent in worst-case mode.

    Reconstructed from the hub's ``policy.worst_case_mode`` flip events:
    per (node, stream) the active intervals are summed, with intervals
    still open at the end of the run closed at ``end_time``.
    """
    opened: Dict[Tuple[object, object], float] = {}
    total = 0.0
    for event in events:
        if getattr(event, "name", None) != WORST_CASE_EVENT:
            continue
        key = (event.node, event.attrs.get("stream"))
        if event.attrs.get("active"):
            opened.setdefault(key, event.time)
        else:
            start = opened.pop(key, None)
            if start is not None:
                total += event.time - start
    for start in opened.values():
        total += max(0.0, end_time - start)
    return total


def worst_case_extractor(system, result) -> float:
    """Read the worst-case residency off the *live* system's hub.

    Registered as a :class:`~repro.parallel.RunRequest` extractor (by
    ``"module:function"`` ref, so pool workers can resolve it): the flip
    events live only in the in-memory telemetry hub, which never crosses
    the process boundary -- the scalar does, and is cached alongside the
    result.
    """
    return worst_case_seconds(system.telemetry.events(), result.duration_seconds)


WORST_CASE_EXTRACTORS = (
    ("worst_case_s", "repro.experiments.chaos:worst_case_extractor"),
)


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------


def run(
    scale: str = "default",
    algorithms: Sequence[Algorithm] = COMPARED_ALGORITHMS,
    grid: Sequence[ChaosLevel] = DEFAULT_GRID,
    num_nodes: int = 0,
    reliability: Optional[ReliabilitySettings] = None,
    recovery: Optional[RecoverySettings] = None,
    overload: Optional[OverloadSettings] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 0,
    cache: Optional[RunCache] = None,
    shards: int = 0,
) -> List[ChaosRow]:
    """Sweep ``algorithms`` x ``grid`` at one scale; one row per cell.

    Every cell reuses the scale's seed and workload, so the fault axis is
    the *only* thing varying across a row's cells.  The reliable control
    plane is on by default (faults without retransmission or failure
    detection just measure packet loss); telemetry is always on, with
    per-message tracing off, so the worst-case-mode timeline is complete
    without the event ring overflowing.

    ``recovery`` (enabled) switches every crash in the grid to a
    *restartable* crash with the same outage window and runs each cell
    with checkpoint/restart rejoin on -- the cells then also report
    restarts, replayed arrivals, and rejoin latency.

    ``overload`` (enabled) arms every cell's overload protection --
    bounded service queues, the degradation ladder, deterministic
    shedding -- so ``over=F`` levels measure graceful degradation
    instead of unbounded queue growth.

    ``jobs`` fans the cells over pool workers and ``cache`` skips cells
    already computed; rows come back in grid order either way, so the
    golden JSON is byte-identical across all three paths.  ``shards``
    additionally runs each cell under the sharded engine (also
    byte-identical, and invisible to the cache).
    """
    preset = get_scale(scale)
    if not algorithms:
        raise ConfigurationError("chaos sweep needs at least one algorithm")
    levels = tuple(grid)
    if not levels:
        raise ConfigurationError("chaos sweep needs at least one fault level")
    for level in levels:
        level.validate()
    mesh = num_nodes if num_nodes > 0 else preset.node_grid[-1]
    settings = (
        reliability
        if reliability is not None
        else ReliabilitySettings(enabled=True)
    )
    rejoin = recovery if recovery is not None and recovery.enabled else None
    protection = overload if overload is not None and overload.enabled else None
    requests: List[RunRequest] = []
    cells: List[Tuple[Algorithm, ChaosLevel, FaultPlan]] = []
    for algorithm in algorithms:
        for level in levels:
            plan = build_fault_plan(
                level, preset, mesh, restartable=rejoin is not None
            )
            config = system_config(
                preset,
                algorithm,
                mesh,
                faults=plan,
                reliability=settings,
                recovery=rejoin,
                overload=protection,
                telemetry=True,
                trace_messages=False,
            )
            requests.append(
                RunRequest(
                    config=config,
                    extractors=WORST_CASE_EXTRACTORS,
                    label="chaos %s %s/%s" % (scale, algorithm.value, level.name),
                )
            )
            cells.append((algorithm, level, plan))
    outcomes = run_many(
        requests, jobs=jobs, cache=cache, progress=progress, shards=shards
    )
    rows: List[ChaosRow] = []
    for (algorithm, level, plan), request, outcome in zip(
        cells, requests, outcomes
    ):
        config = request.config
        result = outcome.result
        worst = float(outcome.extras["worst_case_s"])
        reliability_counters = result.reliability
        faults = result.faults
        recovery_counters = result.recovery
        overload_counters = result.overload
        rows.append(
            ChaosRow(
                scale=preset.name,
                algorithm=algorithm.value,
                num_nodes=mesh,
                seed=config.seed,
                level=level.name,
                loss_probability=level.loss_probability,
                partition_s=level.partition_s,
                crash_count=level.crash_count,
                fault_events=len(plan.events),
                epsilon=result.epsilon,
                truth_pairs=result.truth_pairs,
                reported_pairs=result.reported_pairs,
                total_bytes=float(result.traffic.get("total_bytes", 0.0)),
                bytes_lost=float(result.traffic.get("bytes_lost", 0.0)),
                data_messages=result.data_messages,
                messages_blocked=float(faults.get("messages_blocked", 0.0)),
                local_arrivals_dropped=float(
                    faults.get("local_arrivals_dropped", 0.0)
                ),
                failures_detected=float(
                    reliability_counters.get("failures_detected", 0.0)
                ),
                recoveries=float(reliability_counters.get("recoveries", 0.0)),
                recovery_latency_mean_s=float(
                    reliability_counters.get("recovery_latency_mean_s", 0.0)
                ),
                recovery_latency_max_s=float(
                    reliability_counters.get("recovery_latency_max_s", 0.0)
                ),
                resyncs=float(reliability_counters.get("resyncs", 0.0)),
                worst_case_s=worst,
                duration_seconds=result.duration_seconds,
                recovery_enabled=rejoin is not None,
                restarts=float(recovery_counters.get("restarts", 0.0)),
                tuples_replayed=float(
                    recovery_counters.get("tuples_replayed", 0.0)
                ),
                rejoin_latency_s=float(
                    recovery_counters.get("rejoin_latency_mean_s", 0.0)
                ),
                dead_letters=float(
                    reliability_counters.get("delivery_failures", 0.0)
                ),
                state_transfer_bytes=float(
                    recovery_counters.get("state_transfer_bytes", 0.0)
                ),
                transfer_bytes_saved=float(
                    recovery_counters.get("state_transfer_bytes_saved", 0.0)
                ),
                transfer_fallbacks=float(
                    recovery_counters.get("state_transfer_fallbacks", 0.0)
                ),
                overload_factor=level.overload_factor,
                overload_enabled=protection is not None,
                shed_tuples=float(overload_counters.get("shed_tuples", 0.0)),
                shed_messages=float(
                    overload_counters.get("shed_messages", 0.0)
                    + overload_counters.get("link_messages_shed", 0.0)
                ),
                throttled_seconds=float(
                    overload_counters.get("throttled_seconds", 0.0)
                ),
                shedding_seconds=float(
                    overload_counters.get("shedding_seconds", 0.0)
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# serialization (canonical: the golden tests diff these bytes)
# ----------------------------------------------------------------------


def rows_to_payload(rows: Sequence[ChaosRow]) -> Dict[str, object]:
    return {
        "format_version": CHAOS_FORMAT_VERSION,
        "rows": [row.as_dict() for row in rows],
    }


def rows_from_payload(payload: Dict[str, object]) -> List[ChaosRow]:
    version = payload.get("format_version")
    if version != CHAOS_FORMAT_VERSION:
        raise ConfigurationError(
            "unsupported chaos result version %r (expected %d)"
            % (version, CHAOS_FORMAT_VERSION)
        )
    unknown = set(payload) - {"format_version", "rows"}
    if unknown:
        raise ConfigurationError(
            "chaos payload has unknown keys %s (stale file format?)"
            % ", ".join(sorted(unknown))
        )
    return [ChaosRow.from_dict(entry) for entry in payload.get("rows", [])]


def rows_to_json(rows: Sequence[ChaosRow]) -> str:
    """Canonical JSON: sorted keys, fixed indent, trailing newline."""
    return json.dumps(rows_to_payload(rows), indent=2, sort_keys=True) + "\n"


def rows_from_json(text: str) -> List[ChaosRow]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError("chaos results are not valid JSON: %s" % error)
    if not isinstance(payload, dict):
        raise ConfigurationError("chaos results must be a JSON object")
    return rows_from_payload(payload)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def format_result(rows: Sequence[ChaosRow]) -> str:
    return format_table(
        [
            "algo",
            "level",
            "rejoin",
            "eps",
            "kB sent",
            "kB lost",
            "blocked",
            "detects",
            "recov",
            "rec mean s",
            "worst-case s",
            "resyncs",
            "restarts",
            "replayed",
            "rejoin s",
            "dead ltrs",
            "xfer kB",
            "saved kB",
            "fallbk",
            "shed",
            "degr s",
        ],
        [
            (
                row.algorithm,
                row.level,
                "on" if row.recovery_enabled else "off",
                row.epsilon,
                row.total_bytes / 1000.0,
                row.bytes_lost / 1000.0,
                row.messages_blocked,
                row.failures_detected,
                row.recoveries,
                row.recovery_latency_mean_s,
                row.worst_case_s,
                row.resyncs,
                row.restarts,
                row.tuples_replayed,
                row.rejoin_latency_s,
                row.dead_letters,
                row.state_transfer_bytes / 1000.0,
                row.transfer_bytes_saved / 1000.0,
                row.transfer_fallbacks,
                row.shed_tuples + row.shed_messages,
                row.throttled_seconds + row.shedding_seconds,
            )
            for row in rows
        ],
    )


def format_recovery_comparison(
    baseline: Sequence[ChaosRow], recovered: Sequence[ChaosRow]
) -> str:
    """Per-cell epsilon reclaimed by the rejoin protocol.

    Pairs rows by (algorithm, level) and reports, for every cell that
    actually crashes a node, how much of the join error the recovery
    protocol won back (positive ``reclaimed`` = recovery helped).

    The per-run epsilons are *not* directly comparable: a legacy crash
    drops its local arrivals from the ground truth too (the oracle never
    observes them), so the no-recovery run is scored against a smaller
    truth.  Both cells are therefore re-measured here against the larger
    of the two truths -- the closest available stand-in for the full
    workload's pair count -- before differencing.
    """
    recovered_by_cell = {(row.algorithm, row.level): row for row in recovered}
    entries = []
    for row in baseline:
        match = recovered_by_cell.get((row.algorithm, row.level))
        if match is None or row.crash_count == 0:
            continue
        truth = max(row.truth_pairs, match.truth_pairs, 1)
        eps_off = abs(truth - row.reported_pairs) / truth
        eps_on = abs(truth - match.reported_pairs) / truth
        entries.append(
            (
                row.algorithm,
                row.level,
                eps_off,
                eps_on,
                eps_off - eps_on,
                match.restarts,
                match.tuples_replayed,
                match.rejoin_latency_s,
                match.state_transfer_bytes / 1000.0,
                match.transfer_bytes_saved / 1000.0,
            )
        )
    if not entries:
        return "no crash cells to compare (grid has no crash_count > 0 levels)"
    return format_table(
        [
            "algo",
            "level",
            "eps off",
            "eps on",
            "reclaimed",
            "restarts",
            "replayed",
            "rejoin s",
            "xfer kB",
            "saved kB",
        ],
        entries,
    )


def level_order(rows: Sequence[ChaosRow]) -> List[str]:
    """Grid levels in first-appearance order (the figure's x-axis)."""
    seen: List[str] = []
    for row in rows:
        if row.level not in seen:
            seen.append(row.level)
    return seen


def figure(rows: Sequence[ChaosRow]) -> str:
    """The accuracy-vs-failure-rate figure, as ASCII.

    Top panel: epsilon per algorithm across the fault grid (line chart,
    x = level index).  Bottom panel: bytes destroyed per level (grouped
    bars, one glyph per algorithm).
    """
    if not rows:
        raise ConfigurationError("nothing to plot")
    levels = level_order(rows)
    index = {name: i for i, name in enumerate(levels)}
    eps_series: Dict[str, List[Tuple[float, float]]] = {}
    lost_series: Dict[str, List[float]] = {}
    for row in rows:
        eps_series.setdefault(row.algorithm, []).append(
            (float(index[row.level]), row.epsilon)
        )
        lost_series.setdefault(row.algorithm, []).append(row.bytes_lost / 1000.0)
    lines = [
        "epsilon vs fault level (x: %s)"
        % ", ".join("%d=%s" % (i, name) for i, name in enumerate(levels)),
        "",
        line_chart(eps_series, y_label="epsilon"),
        "",
        "kilobytes destroyed by faults, per level",
        "",
        bar_chart(levels, lost_series, y_label="kB lost"),
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.chaos",
        description="accuracy-vs-failure-rate sweep under injected faults",
    )
    parser.add_argument(
        "scale",
        nargs="?",
        default="default",
        choices=["smoke", "bench", "default", "full"],
    )
    parser.add_argument(
        "--fault-grid",
        default="",
        metavar="SPEC",
        help="';'-separated levels, e.g. 'clean; storm@loss=0.4,part=3s,crash=1' "
        "(default: the stock clean/light/moderate/severe grid)",
    )
    parser.add_argument(
        "--algorithms",
        default="",
        metavar="A,B,...",
        help="comma-separated algorithm subset (default: BASE,DFT,DFTT,BLOOM,SKCH)",
    )
    parser.add_argument(
        "--nodes", type=int, default=0, help="mesh size (default: scale's largest)"
    )
    parser.add_argument(
        "--out", default="", metavar="FILE", help="persist the rows as JSON"
    )
    parser.add_argument(
        "--figure", default="", metavar="FILE", help="also write the ASCII figure"
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="comparison mode: run the grid twice -- restartable crashes "
        "with checkpoint/restart rejoin on vs the same outages without -- "
        "and report the epsilon each cell reclaims",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="checkpoint cadence for --recovery (default: the subsystem's)",
    )
    parser.add_argument(
        "--no-delta-transfer",
        action="store_true",
        help="with --recovery: resync rejoining nodes with full snapshots "
        "instead of watermark deltas (the pre-delta protocol)",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="arm overload protection in every cell: bounded service "
        "queues, the degradation ladder, deterministic shedding "
        "(pairs with over=F grid levels)",
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        default=0,
        metavar="N",
        help="per-node service-queue bound for --overload (default 64)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="pool workers for the sweep (default: REPRO_JOBS or 1; "
        "results are byte-identical at any N)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run each cell under the sharded engine with N worker "
        "processes (default: REPRO_SHARDS or serial; byte-identical "
        "at any N, shards x jobs clamped to the CPU count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reusing the run-result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help="run-result cache location (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--baseline",
        default="",
        metavar="FILE",
        help="regression-gate the sweep against previously saved rows",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="relative drift tolerance for --baseline (default: 0.15)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import ReproError
    from repro.experiments.persistence import load_chaos_rows, save_chaos_rows
    from repro.experiments.regression import compare_chaos

    args = build_parser().parse_args(argv)
    try:
        grid = parse_grid(args.fault_grid) if args.fault_grid else DEFAULT_GRID
        if args.algorithms:
            algorithms = tuple(
                Algorithm(name.strip().upper())
                for name in args.algorithms.split(",")
                if name.strip()
            )
        else:
            algorithms = COMPARED_ALGORITHMS
        progress = lambda text: print(text, file=sys.stderr)
        cache = None if args.no_cache else RunCache(args.cache_dir or None)
        protection = None
        if args.overload or args.queue_bound > 0:
            protection = OverloadSettings.for_queue_bound(
                args.queue_bound if args.queue_bound > 0 else 64
            )
        comparison = ""
        if args.recovery:
            overrides = {"enabled": True}
            if args.checkpoint_interval > 0:
                overrides["checkpoint_interval_s"] = args.checkpoint_interval
            if args.no_delta_transfer:
                overrides["delta_state_transfer"] = False
            rejoin = RecoverySettings(**overrides)
            baseline_rows = run(
                scale=args.scale,
                algorithms=algorithms,
                grid=grid,
                num_nodes=args.nodes,
                overload=protection,
                progress=lambda text: progress(text + " [no-recovery]"),
                jobs=args.jobs,
                cache=cache,
                shards=args.shards,
            )
            recovered_rows = run(
                scale=args.scale,
                algorithms=algorithms,
                grid=grid,
                num_nodes=args.nodes,
                recovery=rejoin,
                overload=protection,
                progress=lambda text: progress(text + " [recovery]"),
                jobs=args.jobs,
                cache=cache,
                shards=args.shards,
            )
            comparison = format_recovery_comparison(baseline_rows, recovered_rows)
            rows = baseline_rows + recovered_rows
            chart_rows = recovered_rows
        else:
            rows = run(
                scale=args.scale,
                algorithms=algorithms,
                grid=grid,
                num_nodes=args.nodes,
                overload=protection,
                progress=progress,
                jobs=args.jobs,
                cache=cache,
                shards=args.shards,
            )
            chart_rows = rows
        if cache is not None:
            print(cache.stats_line())
            cache.write_manifest({"sweep": "chaos", "scale": args.scale})
        print(format_result(rows))
        print()
        if comparison:
            print("epsilon reclaimed by checkpoint/restart recovery")
            print()
            print(comparison)
            print()
        chart = figure(chart_rows)
        print(chart)
        if args.out:
            save_chaos_rows(rows, args.out)
            print("\nsaved %d rows to %s" % (len(rows), args.out))
        if args.figure:
            with open(args.figure, "w") as handle:
                handle.write(chart + "\n")
            print("wrote figure to %s" % args.figure)
        if args.baseline:
            report = compare_chaos(
                load_chaos_rows(args.baseline), rows, tolerance=args.tolerance
            )
            print()
            print(report.format())
            if not report.passed:
                return 1
    except ValueError as error:
        # e.g. an unknown Algorithm name; argparse convention: exit 2.
        print("error: %s" % error, file=sys.stderr)
        return 2
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
