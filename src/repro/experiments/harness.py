"""Shared experiment scaffolding: scales and config builders.

The paper's testbed runs windows of 2^19 tuples over 10M-tuple streams on
twenty workstations.  A pure-Python reproduction sweeps many (algorithm,
N, kappa) combinations, so each experiment accepts a *scale* preset:

* ``smoke``   -- seconds; used by the integration tests;
* ``default`` -- a couple of minutes per figure; the benchmark suite;
* ``full``    -- the closest laptop-friendly approximation of the paper.

All scaled runs keep the paper's *ratios* (window vs domain vs stream
length, kappa grid relative to W) so the figure shapes are preserved.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.flow import FlowSettings
from repro.errors import ConfigurationError
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliabilitySettings
from repro.overload import OverloadSettings
from repro.recovery.settings import RecoverySettings
from repro.telemetry.settings import TelemetrySettings


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset for the Section 6 reproductions."""

    name: str
    window_size: int
    domain: int
    total_tuples: int
    arrival_rate: float
    node_grid: Tuple[int, ...]
    kappa_grid: Tuple[int, ...]
    signal_length: int
    """Window length used by the pure-DFT analyses (Figures 5 and 6)."""

    default_kappa: int
    """The 'kappa = 256 equivalent' at this scale (same W/kappa ratio)."""

    seed: int = 2007


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        window_size=128,
        domain=1024,
        total_tuples=2_000,
        arrival_rate=300.0,
        node_grid=(2, 4),
        kappa_grid=(2, 8, 32),
        signal_length=1024,
        default_kappa=16,
    ),
    "bench": ExperimentScale(
        name="bench",
        window_size=256,
        domain=2048,
        total_tuples=4_000,
        arrival_rate=250.0,
        node_grid=(4, 8),
        kappa_grid=(2, 4, 8, 16, 32, 64),
        signal_length=4096,
        default_kappa=32,
    ),
    "default": ExperimentScale(
        name="default",
        window_size=512,
        domain=4096,
        total_tuples=8_000,
        arrival_rate=250.0,
        node_grid=(4, 8, 12),
        kappa_grid=(2, 4, 8, 16, 32, 64, 128),
        signal_length=8192,
        default_kappa=64,
    ),
    "full": ExperimentScale(
        name="full",
        window_size=1024,
        domain=2**16,
        total_tuples=30_000,
        arrival_rate=250.0,
        node_grid=(2, 4, 8, 12, 16, 20),
        kappa_grid=(2, 4, 8, 16, 32, 64, 128, 256),
        signal_length=80_000,
        default_kappa=128,
    ),
}


def get_scale(scale: str = "default") -> ExperimentScale:
    """Look up a preset by name."""
    if scale not in SCALES:
        raise ConfigurationError(
            "unknown scale %r (choose from %s)" % (scale, sorted(SCALES))
        )
    return SCALES[scale]


def system_config(
    scale: ExperimentScale,
    algorithm: Algorithm,
    num_nodes: int,
    kappa: float = 0.0,
    workload_kind: WorkloadKind = WorkloadKind.ZIPF,
    budget_override: float = 0.0,
    arrival_rate: float = 0.0,
    total_tuples: int = 0,
    seed_offset: int = 0,
    telemetry: bool = False,
    telemetry_sample_interval_s: float = 1.0,
    trace_messages: bool = True,
    faults: Optional[FaultPlan] = None,
    reliability: Optional[ReliabilitySettings] = None,
    recovery: Optional[RecoverySettings] = None,
    overload: Optional[OverloadSettings] = None,
) -> SystemConfig:
    """One experiment run's configuration, derived from a scale preset.

    ``faults`` makes a fault schedule a first-class experiment knob (the
    chaos sweep threads a whole grid of plans through here); ``reliability``
    turns the control-plane ARQ / failure detector on for the run;
    ``recovery`` enables checkpoint/restart rejoin for crashed nodes (and
    requires ``reliability``); ``overload`` bounds the service queues and
    arms the degradation ladder.  All default to the paper's clean-WAN
    behaviour.
    """
    policy = PolicyConfig(
        algorithm=algorithm,
        kappa=kappa if kappa > 0 else float(scale.default_kappa),
        flow=FlowSettings(budget_override=budget_override),
    )
    workload = WorkloadConfig(
        kind=workload_kind,
        total_tuples=total_tuples if total_tuples > 0 else scale.total_tuples,
        domain=scale.domain,
        arrival_rate=arrival_rate if arrival_rate > 0 else scale.arrival_rate,
    )
    config = SystemConfig(
        num_nodes=num_nodes,
        window_size=scale.window_size,
        policy=policy,
        workload=workload,
        telemetry=TelemetrySettings(
            enabled=telemetry,
            sample_interval_s=telemetry_sample_interval_s,
            trace_messages=trace_messages,
        ),
        seed=scale.seed + seed_offset,
    )
    if faults is not None and not faults.empty:
        faults.validate(num_nodes)
        config = dataclasses.replace(config, faults=faults)
    if reliability is not None:
        config = dataclasses.replace(config, reliability=reliability)
    if recovery is not None:
        config = dataclasses.replace(config, recovery=recovery)
    if overload is not None:
        config = dataclasses.replace(config, overload=overload)
    return config


def run_grid(
    configs: Iterable[SystemConfig],
    jobs: int = 0,
    cache=None,
    progress: Optional[Callable[[str], None]] = None,
    labels: Optional[Sequence[str]] = None,
) -> List:
    """Run a grid of configurations through the parallel runner.

    The shared sweep primitive: every figure builds its full config list
    first, then runs it here -- ``jobs`` fans cells over processes,
    ``cache`` (a :class:`repro.parallel.RunCache`) skips cells already
    computed, and results always come back in config order, so serial,
    parallel, and cached sweeps are byte-identical.
    """
    from repro.parallel import run_configs

    return run_configs(configs, jobs=jobs, cache=cache, progress=progress, labels=labels)


COMPARED_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.BASE,
    Algorithm.DFT,
    Algorithm.DFTT,
    Algorithm.BLOOM,
    Algorithm.SKCH,
)
"""The five algorithms of the Section 6 comparisons (Figure 9/10/11)."""

FILTERED_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.DFT,
    Algorithm.DFTT,
    Algorithm.BLOOM,
    Algorithm.SKCH,
)
"""The four approximate algorithms (BASE is the exact comparator)."""
