"""Reliable delivery for control traffic over lossy links.

The DFT/DFTT control loop (coefficient updates, flow control, Bloom and
sketch snapshots) silently rots when the WAN drops its messages: peers
keep filtering on stale summaries with no signal that anything is wrong.
:class:`ReliableTransport` adds a thin ARQ layer *for control messages
only* -- data tuples stay best-effort, exactly as in the paper, because a
lost tuple costs one result while a lost summary poisons every future
forwarding decision.

Per destination, a :class:`ReliableChannel` keeps classic sliding-ARQ
state:

* the sender stamps consecutive sequence numbers, keeps unacked messages
  in flight, and retransmits on timeout with exponential backoff plus a
  deterministic seeded jitter (no thundering retransmit herds, and
  bit-identical runs for a fixed seed);
* the receiver acks everything (including duplicates -- the original ack
  may be the casualty), suppresses duplicates, and releases messages in
  sequence order so summary deltas never apply out of order;
* after ``max_retries`` unacked attempts the sender gives up and counts a
  delivery failure -- the failure detector, not the transport, owns
  suspecting the peer.

ACK messages are header-only (24 bytes) and themselves best-effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro._rng import ensure_rng
from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.net.simulator import Event, EventScheduler


@dataclass(frozen=True)
class ReliabilitySettings:
    """Knobs for the control-plane ARQ and the failure detector."""

    enabled: bool = False
    """Master switch.  Off (the default) leaves the wire protocol exactly
    as the paper has it -- no acks, no heartbeats, no degradation."""

    retransmit_timeout_s: float = 0.25
    """Initial ack deadline; roughly 2x the worst-case RTT of the paper's
    20-100 ms links."""

    backoff_factor: float = 2.0
    """Timeout multiplier per consecutive retransmission."""

    jitter_fraction: float = 0.1
    """Uniform multiplicative jitter in [1, 1 + fraction] on each timeout,
    drawn from a seeded generator (deterministic per run)."""

    max_retries: int = 5
    """Retransmissions before the sender declares a delivery failure."""

    heartbeat_interval_s: float = 0.5
    """Gap between HEARTBEAT probes to every peer."""

    suspect_timeout_s: float = 2.0
    """Silence (no message of any kind) after which a peer is suspected
    dead and the policies degrade for it."""

    staleness_budget_s: float = 5.0
    """Maximum tolerated age of a peer's summary before forwarding
    decisions stop trusting it (0 disables staleness degradation)."""

    degradation_mode: str = "broadcast"
    """What to do with tuples for stale/suspected peers: "broadcast"
    (BASE-style: send anyway, trading messages for recall) or "suppress"
    (drop the flow toward them, trading recall for messages)."""

    def validate(self) -> None:
        if self.retransmit_timeout_s <= 0:
            raise ConfigurationError("retransmit_timeout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be non-negative")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be positive")
        if self.suspect_timeout_s <= 0:
            raise ConfigurationError("suspect_timeout_s must be positive")
        if self.staleness_budget_s < 0:
            raise ConfigurationError("staleness_budget_s must be non-negative")
        if self.degradation_mode not in ("broadcast", "suppress"):
            raise ConfigurationError(
                "degradation_mode must be 'broadcast' or 'suppress', got %r"
                % (self.degradation_mode,)
            )


@dataclass
class _InFlight:
    """Sender-side state of one unacked message."""

    message: Message
    timer: Event
    attempts: int
    timeout_s: float


class ReliableChannel:
    """ARQ state toward one destination (sender) / from one source (receiver)."""

    def __init__(self) -> None:
        self.next_seq = 0
        self.in_flight: Dict[int, _InFlight] = {}
        self.next_expected = 0
        self.reorder_buffer: Dict[int, Message] = {}


class ReliableTransport:
    """One node's reliable-control-channel endpoint.

    ``send_fn`` is the raw network transmit (``Network.send`` in the real
    system; anything message-shaped in tests).  The transport never blocks:
    all waiting happens through scheduler timers.
    """

    def __init__(
        self,
        node_id: int,
        scheduler: EventScheduler,
        send_fn: Callable[[Message], object],
        settings: ReliabilitySettings,
        rng=None,
    ) -> None:
        settings.validate()
        self.node_id = node_id
        self.scheduler = scheduler
        self.send_fn = send_fn
        self.settings = settings
        self.rng = ensure_rng(rng)
        self._channels: Dict[int, ReliableChannel] = {}
        self.retransmits = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.duplicates_suppressed = 0
        self.delivery_failures = 0
        self.out_of_order_buffered = 0
        self.channel_resets = 0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub`; exhausted-retry
        dead letters are emitted as events when set."""
        self.telemetry_node = None
        self.key_source = None
        """Optional :class:`~repro.net.simulator.EventKeySource`; the
        owning node shares its source so retransmit timers get
        deterministic entity-local event keys (see repro.engine)."""

    def _channel(self, peer: int) -> ReliableChannel:
        if peer not in self._channels:
            self._channels[peer] = ReliableChannel()
        return self._channels[peer]

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Transmit ``message`` reliably (stamps the channel sequence number)."""
        channel = self._channel(message.destination)
        message.seq = channel.next_seq
        channel.next_seq += 1
        self._transmit(channel, message, attempts=0,
                       timeout_s=self.settings.retransmit_timeout_s)

    def _transmit(
        self, channel: ReliableChannel, message: Message, attempts: int, timeout_s: float
    ) -> None:
        deadline = timeout_s * (1.0 + self.settings.jitter_fraction * float(self.rng.random()))
        timer = self.scheduler.schedule_in(
            deadline,
            lambda m=message: self._on_timeout(m),
            key=(
                self.key_source.next_key() if self.key_source is not None else None
            ),
            home=self.node_id,
        )
        # Register the in-flight state *before* handing the message to the
        # wire: a zero-latency send_fn can deliver and ack synchronously.
        channel.in_flight[message.seq] = _InFlight(
            message=message, timer=timer, attempts=attempts, timeout_s=timeout_s
        )
        self.send_fn(message)

    def _on_timeout(self, message: Message) -> None:
        channel = self._channel(message.destination)
        state = channel.in_flight.pop(message.seq, None)
        if state is None:  # acked between scheduling and firing
            return
        if state.attempts >= self.settings.max_retries:
            self.delivery_failures += 1
            if self.telemetry is not None:
                # Dead-letter visibility: the message is gone for good; say
                # who it was for and what it carried so operators can tell a
                # lost Bloom snapshot from a lost DFT delta.
                self.telemetry.emit(
                    "transport.dead_letter",
                    category="transport",
                    node=self.telemetry_node,
                    peer=message.destination,
                    kind=message.kind.value,
                    attempts=state.attempts + 1,
                )
            return
        self.retransmits += 1
        self._transmit(
            channel,
            message,
            attempts=state.attempts + 1,
            timeout_s=state.timeout_s * self.settings.backoff_factor,
        )

    def on_ack(self, ack: Message) -> None:
        """An ACK arrived; stop retransmitting the covered message."""
        self.acks_received += 1
        channel = self._channel(ack.source)
        state = channel.in_flight.pop(ack.seq, None)
        if state is not None:
            state.timer.cancel()

    def unacked(self, peer: int) -> int:
        """Messages still awaiting an ack from ``peer``."""
        return len(self._channel(peer).in_flight)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def on_receive(self, message: Message) -> List[Message]:
        """Process a sequenced control message from the wire.

        Returns the messages releasable *in order* (possibly none, if the
        arrival left a sequence gap; possibly several, if it filled one).
        Always acks -- a duplicate usually means the previous ack died.
        """
        if message.seq is None:
            raise ConfigurationError("on_receive expects a sequenced message")
        self._send_ack(message)
        channel = self._channel(message.source)
        if message.seq < channel.next_expected or message.seq in channel.reorder_buffer:
            self.duplicates_suppressed += 1
            return []
        if message.seq > channel.next_expected:
            self.out_of_order_buffered += 1
            channel.reorder_buffer[message.seq] = message
            return []
        released = [message]
        channel.next_expected += 1
        while channel.next_expected in channel.reorder_buffer:
            released.append(channel.reorder_buffer.pop(channel.next_expected))
            channel.next_expected += 1
        return released

    def _send_ack(self, message: Message) -> None:
        ack = Message(
            kind=MessageKind.ACK,
            source=self.node_id,
            destination=message.source,
            seq=message.seq,
        )
        self.acks_sent += 1
        self.send_fn(ack)

    # ------------------------------------------------------------------
    # channel resets (crash recovery)
    # ------------------------------------------------------------------

    def reset_peer(self, peer: int) -> None:
        """Forget all ARQ state toward/from ``peer``.

        A restarted peer comes back with sequence numbers at zero; keeping
        our old channel would suppress everything it sends as duplicates
        and park everything we send in its reorder buffer forever.  Both
        sides of the recovery handshake (see repro.recovery) reset, so the
        conversation restarts from seq 0 in both directions.
        """
        channel = self._channels.pop(peer, None)
        if channel is None:
            return
        for state in channel.in_flight.values():
            state.timer.cancel()
        self.channel_resets += 1

    def reset(self) -> None:
        """Forget all ARQ state toward/from every peer (restart path)."""
        for peer in list(self._channels):
            self.reset_peer(peer)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        return {
            "retransmits": float(self.retransmits),
            "acks_sent": float(self.acks_sent),
            "acks_received": float(self.acks_received),
            "duplicates_suppressed": float(self.duplicates_suppressed),
            "delivery_failures": float(self.delivery_failures),
            "out_of_order_buffered": float(self.out_of_order_buffered),
            "channel_resets": float(self.channel_resets),
        }
