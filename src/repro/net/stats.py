"""Traffic accounting.

:class:`TrafficStats` tallies messages and bytes by category.  The split
between *net data* bytes (tuple bodies, headers) and *summary* bytes
(DFT coefficients, Bloom fragments, sketch fragments -- whether piggy-backed
or standalone) is what Figure 8 reports as the coefficient-update overhead
percentage.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.net.message import Message, MessageKind


@dataclass
class TrafficStats:
    """Mutable counters for simulated network traffic."""

    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    summary_bytes: int = 0
    net_data_bytes: int = 0
    summary_entries: int = 0
    messages_lost: int = 0
    bytes_lost: int = 0
    lost_by_kind: Counter = field(default_factory=Counter)

    def record(self, message: Message) -> None:
        """Account one sent message."""
        kind = message.kind.value
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += message.size_bytes()
        self.summary_bytes += message.summary_bytes()
        self.net_data_bytes += message.size_bytes() - message.summary_bytes()
        self.summary_entries += message.summary_entries

    def record_loss(self, message: Message) -> None:
        """Account one message dropped in transit.

        Lost messages were already :meth:`record`-ed when sent (their bytes
        occupied the link); these counters make the loss itself visible
        instead of leaving it implied by missing deliveries.
        """
        self.messages_lost += 1
        self.bytes_lost += message.size_bytes()
        self.lost_by_kind[message.kind.value] += 1

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_kind.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())

    def messages(self, kind: MessageKind) -> int:
        return self.messages_by_kind[kind.value]

    def data_messages(self) -> int:
        """Messages that move data between nodes (tuples + standalone summaries)."""
        return (
            self.messages_by_kind[MessageKind.TUPLE.value]
            + self.messages_by_kind[MessageKind.SUMMARY.value]
        )

    def summary_overhead_fraction(self) -> float:
        """Summary bytes as a fraction of net-data bytes (Figure 8's y-axis).

        Returns 0 when no net data has been transmitted.
        """
        if self.net_data_bytes == 0:
            return 0.0
        return self.summary_bytes / self.net_data_bytes

    def merge(self, other: "TrafficStats") -> None:
        """Fold another node's counters into this one (system-wide totals)."""
        self.messages_by_kind.update(other.messages_by_kind)
        self.bytes_by_kind.update(other.bytes_by_kind)
        self.summary_bytes += other.summary_bytes
        self.net_data_bytes += other.net_data_bytes
        self.summary_entries += other.summary_entries
        self.messages_lost += other.messages_lost
        self.bytes_lost += other.bytes_lost
        self.lost_by_kind.update(other.lost_by_kind)

    def iter_counters(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield ``(metric, labels, value)`` for every counter, sorted.

        The telemetry hub snapshots these into registry time series at
        sampling ticks, which is how :class:`TrafficStats` stays the
        always-on accumulator while the registry provides the history.
        """
        for kind in sorted(self.messages_by_kind):
            yield "repro_traffic_messages_total", {"kind": kind}, float(
                self.messages_by_kind[kind]
            )
        for kind in sorted(self.bytes_by_kind):
            yield "repro_traffic_bytes_total", {"kind": kind}, float(
                self.bytes_by_kind[kind]
            )
        for kind in sorted(self.lost_by_kind):
            yield "repro_traffic_lost_total", {"kind": kind}, float(
                self.lost_by_kind[kind]
            )
        yield "repro_traffic_summary_bytes_total", {}, float(self.summary_bytes)
        yield "repro_traffic_net_data_bytes_total", {}, float(self.net_data_bytes)
        yield "repro_traffic_summary_entries_total", {}, float(self.summary_entries)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for result reporting."""
        return {
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "summary_bytes": self.summary_bytes,
            "net_data_bytes": self.net_data_bytes,
            "summary_entries": self.summary_entries,
            "summary_overhead_fraction": self.summary_overhead_fraction(),
            "messages_lost": self.messages_lost,
            "bytes_lost": self.bytes_lost,
        }
