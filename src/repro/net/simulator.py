"""A deterministic discrete-event scheduler.

The scheduler is the clock of the simulated WAN.  Components schedule
callbacks at absolute or relative simulated times; :meth:`EventScheduler.run`
drains the event queue in time order.  Ties are broken by insertion order so
that runs are fully deterministic.

The design intentionally avoids coroutine-style processes: the node logic in
:mod:`repro.core.node` is reactive (it only acts when a tuple or message
arrives), so plain callbacks keep the control flow explicit and easy to
test.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``; ``sequence`` is a monotonically
    increasing insertion counter that makes simultaneous events fire in the
    order they were scheduled.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue event loop with a monotone simulated clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past is an error: the clock only moves forward.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%g; clock is already at t=%g" % (time, self._now)
            )
        event = Event(time=time, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got %g" % delay)
        return self.schedule_at(self._now + delay, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Runs until the queue is empty, the next event lies beyond ``until``
        (the clock is then advanced to ``until``), or ``max_events``
        callbacks have executed.  Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
                executed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._events_processed += 1
            return True
        return False
