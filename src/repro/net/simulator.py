"""A deterministic discrete-event scheduler.

The scheduler is the clock of the simulated WAN.  Components schedule
callbacks at absolute or relative simulated times; :meth:`EventScheduler.run`
drains the event queue in time order.  Ties are broken by insertion order so
that runs are fully deterministic.

The design intentionally avoids coroutine-style processes: the node logic in
:mod:`repro.core.node` is reactive (it only acts when a tuple or message
arrives), so plain callbacks keep the control flow explicit and easy to
test.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``; ``sequence`` is a monotonically
    increasing insertion counter that makes simultaneous events fire in the
    order they were scheduled.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    material: bool = field(default=True, compare=False)
    owner: Optional["EventScheduler"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


class EventScheduler:
    """Priority-queue event loop with a monotone simulated clock.

    Cancelled events are not left to rot in the heap: the scheduler
    counts them, reports :attr:`pending` as *live* events only, and
    compacts the heap whenever cancelled entries outnumber live ones --
    a retransmit-heavy reliable-transport run would otherwise grow the
    queue without bound.
    """

    COMPACTION_MIN_QUEUE = 64
    """Skip compaction below this queue length; rebuilding tiny heaps
    costs more than the dead entries do."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._material_now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_pending = 0
        self.compactions = 0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub`; when set,
        heap compactions are emitted as scheduler events."""

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def material_now(self) -> float:
        """Simulated time of the last *material* event processed.

        Observation-only events (telemetry sampling ticks, scheduled with
        ``material=False``) advance :attr:`now` but not this clock, so a
        run's reported duration is identical with telemetry on or off.
        """
        return self._material_now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._cancelled_pending > len(self._queue) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        before = len(self._queue)
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self.compactions += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "sched.compaction",
                category="scheduler",
                time=self._now,
                dropped=before - len(self._queue),
                remaining=len(self._queue),
            )

    def schedule_at(
        self, time: float, callback: Callable[[], None], material: bool = True
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past is an error: the clock only moves forward.
        ``material=False`` marks an observation-only event (telemetry
        sampling) that must not advance :attr:`material_now`.
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%g; clock is already at t=%g" % (time, self._now)
            )
        event = Event(
            time=time,
            sequence=next(self._sequence),
            callback=callback,
            material=material,
            owner=self,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self, delay: float, callback: Callable[[], None], material: bool = True
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got %g" % delay)
        return self.schedule_at(self._now + delay, callback, material=material)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Runs until the queue is empty, the next event lies beyond ``until``
        (the clock is then advanced to ``until``), or ``max_events``
        callbacks have executed.  Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = event.time
                if event.material:
                    self._material_now = event.time
                event.callback()
                executed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                self._now = until
                self._material_now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = event.time
            if event.material:
                self._material_now = event.time
            event.callback()
            self._events_processed += 1
            return True
        return False
