"""A deterministic discrete-event scheduler.

The scheduler is the clock of the simulated WAN.  Components schedule
callbacks at absolute or relative simulated times; :meth:`EventScheduler.run`
drains the event queue in time order.

Ordering contract.  Events order by ``(time, phase, rank, seq)``:

* **phase 0** -- events scheduled without an explicit key (all
  construction-time scheduling: workload arrivals, heartbeat ticks,
  telemetry samples, fault edges).  ``rank`` is 0 and ``seq`` is the
  scheduler's insertion counter, so phase-0 ties fire in the order they
  were scheduled -- the historical behavior.
* **phase 1** -- events scheduled with an explicit ``key=(rank, seq)``
  from an :class:`EventKeySource`.  The rank identifies the scheduling
  *entity* (a node, a link) and the seq is that entity's own monotone
  counter, so the key is a pure function of the entity's local history.

The phase-1 keys are what make the sharded execution engine
(:mod:`repro.engine`) possible: a key derived from global insertion
order cannot be reproduced when the event population is split across
processes, but an entity-local key can -- each entity lives in exactly
one shard and replays exactly its serial history.  The serial engine
orders by the same keys, so serial and sharded runs execute every
entity's events in the same order.

Events also carry a ``home``: the node the event belongs to, or ``None``
for run-global events (telemetry ticks, fault edges).  The serial engine
ignores it; the sharded engine prunes non-home events after replicated
construction and counts ``home=None`` events on one shard only.

The design intentionally avoids coroutine-style processes: the node logic in
:mod:`repro.core.node` is reactive (it only acts when a tuple or message
arrives), so plain callbacks keep the control flow explicit and easy to
test.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import SimulationError

EventKey = Tuple[int, int]
"""An entity-local ``(rank, seq)`` ordering key (see :class:`EventKeySource`)."""


class EventKeySource:
    """Deterministic ``(rank, seq)`` event keys for one scheduling entity.

    ``rank`` is the entity's canonical id in the run (node id for nodes;
    ``num_nodes + src * num_nodes + dst`` for links), ``seq`` a monotone
    per-entity counter.  Keys depend only on the entity's own scheduling
    history, never on global insertion order, which is what keeps them
    identical between the serial and the sharded engine.
    """

    __slots__ = ("rank", "_next")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self._next = 0

    def next_key(self) -> EventKey:
        key = (self.rank, self._next)
        self._next += 1
        return key


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, phase, rank, seq)`` -- see the module
    docstring for the phase/rank/seq contract.
    """

    time: float
    phase: int
    rank: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    material: bool = field(default=True, compare=False)
    home: Optional[int] = field(default=None, compare=False)
    owner: Optional["EventScheduler"] = field(default=None, compare=False, repr=False)

    @property
    def sort_key(self) -> Tuple[float, int, int, int]:
        return (self.time, self.phase, self.rank, self.seq)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.owner is not None:
            self.owner._note_cancelled()


class EventScheduler:
    """Priority-queue event loop with a monotone simulated clock.

    Cancelled events are not left to rot in the heap: the scheduler
    counts them, reports :attr:`pending` as *live* events only, and
    compacts the heap whenever cancelled entries outnumber live ones --
    a retransmit-heavy reliable-transport run would otherwise grow the
    queue without bound.
    """

    COMPACTION_MIN_QUEUE = 64
    """Skip compaction below this queue length; rebuilding tiny heaps
    costs more than the dead entries do."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._material_now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_pending = 0
        self.compactions = 0
        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub`; when set,
        heap compactions are emitted as scheduler events."""
        self.count_global_events = True
        """Whether ``home=None`` events increment :attr:`events_processed`.
        The sharded engine replicates global events on every shard and
        counts them on shard 0 only, so the merged total matches serial."""
        self.current_key: Optional[Tuple[float, int, int, int]] = None
        """Sort key of the currently executing event (``None`` outside the
        loop).  Telemetry stamps emissions with it to define a canonical
        cross-shard event order."""
        self._home_filtered = False
        """Set by :meth:`retain_events`: the queue was pruned to a home
        subset, so :meth:`pending_accountable` must filter rather than
        shortcut to :attr:`pending`."""

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def material_now(self) -> float:
        """Simulated time of the last *material* event processed.

        Observation-only events (telemetry sampling ticks, scheduled with
        ``material=False``) advance :attr:`now` but not this clock, so a
        run's reported duration is identical with telemetry on or off.
        """
        return self._material_now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_pending

    def pending_accountable(self) -> int:
        """Live queued events this scheduler is *accountable* for.

        Serial: identical to :attr:`pending`.  Sharded workers: home
        events plus -- on the one shard with ``count_global_events`` --
        the replicated run-global events, mirroring how
        :attr:`events_processed` counts.  Summing the value across
        shards therefore reproduces the serial pending count exactly.
        """
        if not self._home_filtered:
            return self.pending
        return sum(
            1
            for event in self._queue
            if not event.cancelled
            and (event.home is not None or self.count_global_events)
        )

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._cancelled_pending > len(self._queue) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        before = len(self._queue)
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self.compactions += 1
        if self.telemetry is not None:
            self.telemetry.emit(
                "sched.compaction",
                category="scheduler",
                time=self._now,
                dropped=before - len(self._queue),
                remaining=len(self._queue),
            )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        material: bool = True,
        key: Optional[EventKey] = None,
        home: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past is an error: the clock only moves forward.
        ``material=False`` marks an observation-only event (telemetry
        sampling) that must not advance :attr:`material_now`.  ``key``
        is an entity-local ``(rank, seq)`` from an
        :class:`EventKeySource` (phase 1); without one the event is
        phase 0 and ties break by insertion order.  ``home`` names the
        owning node (``None`` = run-global).
        """
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%g; clock is already at t=%g" % (time, self._now)
            )
        if key is None:
            event = Event(
                time=time,
                phase=0,
                rank=0,
                seq=next(self._sequence),
                callback=callback,
                material=material,
                home=home,
                owner=self,
            )
        else:
            event = Event(
                time=time,
                phase=1,
                rank=key[0],
                seq=key[1],
                callback=callback,
                material=material,
                home=home,
                owner=self,
            )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        material: bool = True,
        key: Optional[EventKey] = None,
        home: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got %g" % delay)
        return self.schedule_at(
            self._now + delay, callback, material=material, key=key, home=home
        )

    def enqueue_event(self, event: Event) -> None:
        """Insert a fully-formed event (the sharded engine's cross-shard
        arrival path: the key was minted at the source shard and must be
        preserved verbatim)."""
        if event.time < self._now:
            raise SimulationError(
                "cannot enqueue at t=%g; clock is already at t=%g"
                % (event.time, self._now)
            )
        event.owner = self
        heapq.heappush(self._queue, event)

    def retain_events(self, predicate: Callable[[Event], bool]) -> int:
        """Keep only events matching ``predicate``; returns removed count.

        The sharded engine's pruning step after replicated construction:
        every shard builds the full event population, then keeps its home
        nodes' events plus the run-global ones.  Cancelled entries are
        dropped regardless.
        """
        before = len(self._queue)
        self._queue = [
            event
            for event in self._queue
            if not event.cancelled and predicate(event)
        ]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self._home_filtered = True
        return before - len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` on an empty queue."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
        return self._queue[0].time if self._queue else None

    def _execute(self, event: Event) -> None:
        self._now = event.time
        if event.material:
            self._material_now = event.time
        self.current_key = event.sort_key
        event.callback()
        if event.home is not None or self.count_global_events:
            self._events_processed += 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Runs until the queue is empty, the next event lies beyond ``until``
        (the clock is then advanced to ``until``), or ``max_events``
        callbacks have executed.  Returns the simulated time at exit.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._execute(event)
                executed += 1
            if until is not None and self._now < until:
                self._now = until
                self._material_now = until
        finally:
            self._running = False
            self.current_key = None
        return self._now

    def run_window(self, until: float) -> int:
        """Execute every event with ``time < until``; return the count.

        The sharded engine's round body: strictly-less-than keeps round
        boundaries consistent across shards (an event at exactly the
        horizon belongs to the next round), and unlike :meth:`run` the
        clocks are *not* advanced to ``until`` on exhaustion -- the final
        ``material_now`` must reflect real events only, so the merged
        run duration equals the serial one.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.time >= until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._execute(event)
                executed += 1
        finally:
            self._running = False
            self.current_key = None
        return executed

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._execute(event)
            self.current_key = None
            return True
        return False
