"""Point-to-point links with WAN characteristics.

The paper's testbed imposes 20-100 ms latency per message and pauses the
sender for one second for every 90 kilobits transmitted, i.e. a 90 kbps
serialization rate.  :class:`Link` models exactly that: messages serialize
one after another at ``bandwidth_bps`` (FIFO -- a link busy with a large
message delays everything behind it) and then propagate with a latency drawn
uniformly from ``[latency_min_s, latency_max_s]``.

Delivery therefore happens at::

    depart = max(now, link_free_at) + size_bits / bandwidth_bps
    arrive = depart + latency

Latency is sampled per message, so reordering across *different* links is
possible while each link itself preserves FIFO order end-to-end when
``preserve_order`` is set (the default, matching TCP streams between node
pairs in the prototype).

Faults.  Beyond the static ``loss_probability`` of the spec, a link may be
wired to a :class:`~repro.net.faults.FaultInjector`, which can sever it
(outage/partition/crash), add drop probability (loss bursts) or add
propagation delay (latency spikes / gray failures).  Every dropped
message -- whatever killed it -- is counted in ``messages_lost`` and
``bytes_lost`` and reported to the optional ``on_drop`` observer, so the
loss is visible in traffic accounting instead of silently vanishing.
The sender always pays the serialization cost: losses happen in transit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro._rng import ensure_rng
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.simulator import EventScheduler


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters (paper defaults)."""

    bandwidth_bps: float = 90_000.0
    latency_min_s: float = 0.020
    latency_max_s: float = 0.100
    preserve_order: bool = True
    loss_probability: float = 0.0
    """Per-message drop probability (fault injection).  The sender still
    pays the serialization cost -- the loss happens in transit."""

    def validate(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.latency_min_s < 0 or self.latency_max_s < self.latency_min_s:
            raise ConfigurationError(
                "latency range [%g, %g] is invalid"
                % (self.latency_min_s, self.latency_max_s)
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError("loss_probability must lie in [0, 1)")

    def sample_latency(self, rng: np.random.Generator) -> float:
        """Draw one propagation latency."""
        if self.latency_max_s == self.latency_min_s:
            return self.latency_min_s
        return float(rng.uniform(self.latency_min_s, self.latency_max_s))


class Link:
    """A unidirectional link between two endpoints."""

    def __init__(
        self,
        scheduler: EventScheduler,
        spec: LinkSpec,
        deliver: Callable[[Message], None],
        rng=None,
        endpoints: Optional[Tuple[int, int]] = None,
        fault_injector=None,
        on_drop: Optional[Callable[[Message], None]] = None,
        on_deliver: Optional[Callable[[Message], None]] = None,
    ) -> None:
        spec.validate()
        self._scheduler = scheduler
        self._spec = spec
        self._deliver = deliver
        self._rng = ensure_rng(rng)
        self._endpoints = endpoints
        self._injector = fault_injector
        self._on_drop = on_drop
        self._on_deliver = on_deliver
        self._free_at = 0.0
        self._last_arrival = 0.0
        self.messages_sent = 0
        self.messages_lost = 0
        self.bytes_sent = 0
        self.bytes_lost = 0
        self.messages_shed = 0
        self.busy_seconds = 0.0
        self.backlog_bound_s = 0.0
        """Send-backlog cap in seconds of serialization delay; a message
        arriving while the backlog is at or past the cap is shed at the
        send buffer -- it never serializes (the sender pays nothing and
        ``_free_at`` does not advance).  0 (the default) is unbounded,
        the legacy semantics.  Set by the system from
        :class:`~repro.overload.OverloadSettings`."""
        self.key_source = None
        """Optional :class:`~repro.net.simulator.EventKeySource` minting
        deterministic arrival-event keys (the Network assigns one per
        link; bare test links fall back to insertion-order keys)."""
        self.router = None
        """Optional arrival router ``fn(arrival_time, key, message) ->
        bool``: the sharded engine intercepts arrivals whose destination
        lives in another shard.  Returning ``True`` means the router took
        the message; ``False`` falls through to local scheduling."""

    @property
    def spec(self) -> LinkSpec:
        return self._spec

    @property
    def free_at(self) -> float:
        """Simulated time at which the link finishes its current backlog."""
        return self._free_at

    def queue_depth_seconds(self) -> float:
        """Seconds of serialization backlog currently ahead of a new message."""
        return max(0.0, self._free_at - self._scheduler.now)

    def transmission_time(self, message: Message) -> float:
        """Serialization delay for ``message`` at the link bandwidth."""
        return message.size_bytes() * 8.0 / self._spec.bandwidth_bps

    def _drop(self, message: Message) -> None:
        self.messages_lost += 1
        self.bytes_lost += message.size_bytes()
        if self._on_drop is not None:
            self._on_drop(message)

    def send(self, message: Message) -> float:
        """Enqueue ``message``; returns its (nominal) delivery time.

        The sender is never blocked (the prototype's sockets buffer); the
        cost of congestion shows up as delivery delay, which is what the
        throughput experiments measure.
        """
        now = self._scheduler.now
        if (
            self.backlog_bound_s > 0.0
            and self._free_at - now >= self.backlog_bound_s
        ):
            # Shed before serialization *and* before any RNG draw, so a
            # bounded link's jitter/loss streams stay pure functions of
            # the messages that actually occupy it.
            self.messages_shed += 1
            message.created_at = now
            self._drop(message)
            return now
        tx_time = self.transmission_time(message)
        depart = max(now, self._free_at) + tx_time
        self.busy_seconds += tx_time
        self._free_at = depart
        latency = self._spec.sample_latency(self._rng)
        if self._injector is not None and self._endpoints is not None:
            latency += self._injector.extra_latency(*self._endpoints)
        arrival = depart + latency
        if self._spec.preserve_order and arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        message.created_at = now
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes()
        if self._injector is not None and self._endpoints is not None:
            if self._injector.link_blocked(*self._endpoints):
                self._injector.note_blocked()
                self._drop(message)
                return arrival  # serialized, paid for, never delivered
            burst = self._injector.extra_loss(*self._endpoints)
            if burst > 0.0 and self._rng.random() < burst:
                self._injector.note_blocked()
                self._drop(message)
                return arrival
        if (
            self._spec.loss_probability > 0.0
            and self._rng.random() < self._spec.loss_probability
        ):
            self._drop(message)
            return arrival
        key = self.key_source.next_key() if self.key_source is not None else None
        if self.router is not None and self.router(arrival, key, message):
            return arrival
        home = self._endpoints[1] if self._endpoints is not None else None
        self._scheduler.schedule_at(
            arrival, lambda m=message: self._arrive(m), key=key, home=home
        )
        return arrival

    def _arrive(self, message: Message) -> None:
        """Delivery-time hand-off; a destination that crashed mid-flight
        swallows the message (its process is not there to receive it)."""
        if (
            self._injector is not None
            and self._endpoints is not None
            and self._injector.node_down(self._endpoints[1])
        ):
            self._injector.note_blocked()
            self._drop(message)
            return
        if self._on_deliver is not None:
            self._on_deliver(message)
        self._deliver(message)
