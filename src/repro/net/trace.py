"""Optional message tracing.

A :class:`MessageTrace` attached to a :class:`~repro.net.topology.Network`
records every transmitted message into a bounded ring buffer -- the
debugging view a developer reaches for when a policy misroutes.  Tracing
is off by default; enabling it costs one record append per send.

Each record also carries the message's *outcome*: ``"sent"`` while in
flight, then ``"delivered"`` or ``"dropped"`` once the network learns its
fate -- so a trace distinguishes lost messages on its own instead of
requiring a cross-reference against ``TrafficStats.lost_by_kind``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind

OUTCOME_SENT = "sent"
OUTCOME_DELIVERED = "delivered"
OUTCOME_DROPPED = "dropped"


@dataclass
class TraceRecord:
    """One transmitted message, as seen at send time.

    ``outcome`` starts as ``"sent"`` and is resolved in place when the
    delivery (or drop) happens; a record still reading ``"sent"`` after
    the run drained belongs to a message swallowed with the run's end.
    """

    time: float
    source: int
    destination: int
    kind: str
    size_bytes: int
    summary_entries: int
    message_id: int
    outcome: str = OUTCOME_SENT


class MessageTrace:
    """Bounded ring buffer of :class:`TraceRecord`."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque()
        self._by_id: Dict[int, TraceRecord] = {}
        self.total_recorded = 0

    def record(self, time: float, message: Message) -> None:
        """Append one message (called by the network's send path)."""
        if len(self._records) == self.capacity:
            evicted = self._records.popleft()
            # Retransmissions reuse a message id; only forget the mapping
            # when it still points at the record being evicted.
            if self._by_id.get(evicted.message_id) is evicted:
                del self._by_id[evicted.message_id]
        record = TraceRecord(
            time=time,
            source=message.source,
            destination=message.destination,
            kind=message.kind.value,
            size_bytes=message.size_bytes(),
            summary_entries=message.summary_entries,
            message_id=message.message_id,
        )
        self._records.append(record)
        self._by_id[message.message_id] = record
        self.total_recorded += 1

    def _resolve(self, message_id: int, outcome: str) -> None:
        record = self._by_id.get(message_id)
        if record is not None:
            record.outcome = outcome

    def mark_delivered(self, message_id: int) -> None:
        """Resolve a traced message as delivered (called at arrival time)."""
        self._resolve(message_id, OUTCOME_DELIVERED)

    def mark_dropped(self, message_id: int) -> None:
        """Resolve a traced message as lost in transit."""
        self._resolve(message_id, OUTCOME_DROPPED)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records that fell off the ring buffer."""
        return self.total_recorded - len(self._records)

    def filter(
        self,
        source: Optional[int] = None,
        destination: Optional[int] = None,
        kind: Optional[MessageKind] = None,
        since: float = 0.0,
        outcome: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Records matching every given criterion, in send order."""
        selected = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if destination is not None and record.destination != destination:
                continue
            if kind is not None and record.kind != kind.value:
                continue
            if record.time < since:
                continue
            if outcome is not None and record.outcome != outcome:
                continue
            selected.append(record)
        return selected

    def counts_by_kind(self) -> Counter:
        """Message counts per kind over the retained window."""
        return Counter(record.kind for record in self._records)

    def counts_by_outcome(self) -> Counter:
        """Message counts per outcome (sent / delivered / dropped)."""
        return Counter(record.outcome for record in self._records)

    def tail(self, count: int = 20) -> List[TraceRecord]:
        """The most recent ``count`` records."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return list(self._records)[-count:]
