"""Optional message tracing.

A :class:`MessageTrace` attached to a :class:`~repro.net.topology.Network`
records every transmitted message into a bounded ring buffer -- the
debugging view a developer reaches for when a policy misroutes.  Tracing
is off by default; enabling it costs one record append per send.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageKind


@dataclass(frozen=True)
class TraceRecord:
    """One transmitted message, as seen at send time."""

    time: float
    source: int
    destination: int
    kind: str
    size_bytes: int
    summary_entries: int
    message_id: int


class MessageTrace:
    """Bounded ring buffer of :class:`TraceRecord`."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        self.capacity = capacity
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, time: float, message: Message) -> None:
        """Append one message (called by the network's send path)."""
        self._records.append(
            TraceRecord(
                time=time,
                source=message.source,
                destination=message.destination,
                kind=message.kind.value,
                size_bytes=message.size_bytes(),
                summary_entries=message.summary_entries,
                message_id=message.message_id,
            )
        )
        self.total_recorded += 1

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records that fell off the ring buffer."""
        return self.total_recorded - len(self._records)

    def filter(
        self,
        source: Optional[int] = None,
        destination: Optional[int] = None,
        kind: Optional[MessageKind] = None,
        since: float = 0.0,
    ) -> List[TraceRecord]:
        """Records matching every given criterion, in send order."""
        selected = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if destination is not None and record.destination != destination:
                continue
            if kind is not None and record.kind != kind.value:
                continue
            if record.time < since:
                continue
            selected.append(record)
        return selected

    def counts_by_kind(self) -> Counter:
        """Message counts per kind over the retained window."""
        return Counter(record.kind for record in self._records)

    def tail(self, count: int = 20) -> List[TraceRecord]:
        """The most recent ``count`` records."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return list(self._records)[-count:]
