"""Full-mesh network topology.

Section 3: "the communications architecture is such that every node is able
to converse with every other node" -- there is no central coordinator.
:class:`Network` wires one :class:`~repro.net.link.Link` per ordered
endpoint pair and exposes a simple ``send`` facade that also performs
traffic accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple

import numpy as np

from repro._rng import ensure_rng, spawn
from repro.errors import ConfigurationError, SimulationError
from repro.net.link import Link, LinkSpec
from repro.net.message import Message
from repro.net.simulator import EventKeySource, EventScheduler
from repro.net.stats import TrafficStats


class Endpoint(Protocol):
    """Anything that can receive messages from the network."""

    def on_message(self, message: Message) -> None:  # pragma: no cover - protocol
        ...


class Network:
    """A full mesh of point-to-point links between registered endpoints."""

    def __init__(
        self,
        scheduler: EventScheduler,
        spec: Optional[LinkSpec] = None,
        rng=None,
        fault_injector=None,
    ) -> None:
        self._scheduler = scheduler
        self._spec = spec if spec is not None else LinkSpec()
        self._rng = ensure_rng(rng)
        self._endpoints: Dict[int, Endpoint] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self.fault_injector = fault_injector
        """Optional :class:`repro.net.faults.FaultInjector`; every link
        created after assignment consults it (the system wires it before
        any link exists)."""

        self.stats = TrafficStats()
        self.per_sender_stats: Dict[int, TrafficStats] = {}
        self.trace = None
        """Optional :class:`repro.net.trace.MessageTrace`; assign to enable."""

        self.telemetry = None
        """Optional :class:`repro.telemetry.TelemetryHub`; assign to enable
        per-message metrics and send/deliver/drop events."""

        self._num_nodes: Optional[int] = None
        self._link_rngs: Dict[Tuple[int, int], np.random.Generator] = {}

        self.link_backlog_bound_s = 0.0
        """Per-link send-backlog cap applied to every link created after
        assignment (the system wires it before any link exists); 0 keeps
        backlogs unbounded.  See :class:`~repro.overload.OverloadSettings`."""

        self.link_router_factory: Optional[
            Callable[[int, int], Optional[Callable[..., bool]]]
        ] = None
        """Optional ``(source, destination) -> router`` hook consulted for
        every link (existing and lazily created).  The sharded engine
        installs one that diverts arrivals bound for off-shard nodes into
        the round outbox; ``None`` for a pair means deliver locally."""
        self._shard_outbox: Optional[list] = None
        """The sharded engine's outbound buffer for the current round;
        ``None`` on the serial network."""
        self.kind_order: Dict[str, tuple] = {}
        """Each message kind's first-send rank ``(event key, send seq)``.
        Counter key order is first-occurrence order, and it shows in
        reported dicts (``messages_by_kind``); the sharded merge uses
        these globally comparable ranks to rebuild serial's order."""
        self.loss_order: Dict[str, tuple] = {}
        """First-loss ranks, same scheme, for ``lost_by_kind``."""
        self._send_seq = 0

    def prepare(self, num_nodes: int) -> None:
        """Pre-spawn every directed link's RNG and fix the key-rank space.

        Without this, each lazily-created link spawned the *next* child of
        the network generator, so a link's jitter/loss stream depended on
        the global order in which links first carried traffic.  Keying the
        children by ``(source, destination)`` up front makes every link's
        stream a pure function of its endpoints -- a placement-invariant
        property the sharded engine requires (each shard creates only the
        links its nodes touch, in its own order) and a determinism
        improvement in its own right.  The system calls this once at
        construction; bare test networks keep the legacy lazy spawn.
        """
        self._num_nodes = num_nodes
        children = spawn(self._rng, num_nodes * num_nodes)
        for source in range(num_nodes):
            for destination in range(num_nodes):
                self._link_rngs[(source, destination)] = children[
                    source * num_nodes + destination
                ]

    @property
    def scheduler(self) -> EventScheduler:
        return self._scheduler

    @property
    def spec(self) -> LinkSpec:
        return self._spec

    def register(self, node_id: int, endpoint: Endpoint) -> None:
        """Attach an endpoint; links to existing endpoints are created lazily."""
        if node_id in self._endpoints:
            raise ConfigurationError("node id %d already registered" % node_id)
        self._endpoints[node_id] = endpoint
        self.per_sender_stats[node_id] = TrafficStats()

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._endpoints))

    def link(self, source: int, destination: int) -> Link:
        """The (lazily created) unidirectional link ``source -> destination``."""
        key = (source, destination)
        if key not in self._links:
            if source not in self._endpoints or destination not in self._endpoints:
                raise SimulationError(
                    "link %d->%d references unregistered endpoint" % key
                )
            endpoint = self._endpoints[destination]
            rng = self._link_rngs.pop(key, None)
            if rng is None:
                if self._num_nodes is not None:
                    raise SimulationError(
                        "link %d->%d outside the prepared %d-node mesh"
                        % (source, destination, self._num_nodes)
                    )
                rng = spawn(self._rng, 1)[0]
            link = Link(
                self._scheduler,
                self._spec,
                deliver=endpoint.on_message,
                rng=rng,
                endpoints=key,
                fault_injector=self.fault_injector,
                on_drop=self._record_loss,
                on_deliver=self._record_delivery,
            )
            link.backlog_bound_s = self.link_backlog_bound_s
            if self._num_nodes is not None:
                link.key_source = EventKeySource(
                    self._num_nodes + source * self._num_nodes + destination
                )
            if self.link_router_factory is not None:
                link.router = self.link_router_factory(source, destination)
            self._links[key] = link
        return self._links[key]

    _PRE_RUN_KEY = (float("-inf"), -1, -1, -1)
    """Rank for sends outside event execution (construction time), which
    precede every scheduled event.  Construction replays identically on
    every shard, so the shard-local sequence number is a valid tiebreak."""

    def _first_seen(self, orders: Dict[str, tuple], kind: str) -> None:
        if kind not in orders:
            key = self._scheduler.current_key
            orders[kind] = (
                key if key is not None else self._PRE_RUN_KEY,
                self._send_seq,
            )
        self._send_seq += 1

    def _record_loss(self, message: Message) -> None:
        self._first_seen(self.loss_order, message.kind.value)
        self.stats.record_loss(message)
        sender_stats = self.per_sender_stats.get(message.source)
        if sender_stats is not None:
            sender_stats.record_loss(message)
        if self.trace is not None:
            self.trace.mark_dropped(message.message_id)
        if self.telemetry is not None:
            self.telemetry.on_message_drop(self._scheduler.now, message)

    def _record_delivery(self, message: Message) -> None:
        if self.trace is not None:
            self.trace.mark_delivered(message.message_id)
        if self.telemetry is not None:
            self.telemetry.on_message_deliver(self._scheduler.now, message)

    def send(self, message: Message) -> float:
        """Transmit ``message`` over the mesh; returns its delivery time."""
        if message.source == message.destination:
            raise SimulationError("a node does not message itself")
        link = self.link(message.source, message.destination)
        arrival = link.send(message)
        self._first_seen(self.kind_order, message.kind.value)
        self.stats.record(message)
        self.per_sender_stats[message.source].record(message)
        if self.trace is not None:
            self.trace.record(self._scheduler.now, message)
        if self.telemetry is not None:
            self.telemetry.on_message_send(self._scheduler.now, message)
        return arrival

    def iter_links(self):
        """Iterate ``((source, destination), link)`` over links that exist.

        Links are lazy, so only pairs that have carried traffic appear.
        Ordered by endpoint pair for deterministic consumers (samplers,
        the dashboard's busiest-links table).
        """
        return iter(sorted(self._links.items()))

    def link_stats(self) -> Dict[Tuple[int, int], Tuple[int, int, int, int, int]]:
        """Per-directed-link ``(messages, bytes, messages_lost, bytes_lost,
        messages_shed)``.

        Only links that have carried traffic appear (links are lazy).
        The analysis helpers build traffic matrices from this.
        """
        return {
            pair: (
                link.messages_sent,
                link.bytes_sent,
                link.messages_lost,
                link.bytes_lost,
                link.messages_shed,
            )
            for pair, link in self._links.items()
        }

    def total_messages_shed(self) -> int:
        """Messages shed at bounded send backlogs, across all links."""
        return sum(link.messages_shed for link in self._links.values())

    def unshipped_count(self) -> int:
        """Scheduled deliveries not yet in any event queue.

        Always 0 on the serial network; the sharded engine's network
        wrapper reports its outbound-round buffer so the pending-events
        gauge stays byte-identical between engines (a cross-shard message
        is one future event whether it sits in a heap or an outbox).
        """
        if self._shard_outbox is not None:
            return len(self._shard_outbox)
        return 0

    def backlog_seconds(self, source: int, destination: int) -> float:
        """Current serialization backlog on the given directed link."""
        key = (source, destination)
        if key not in self._links:
            return 0.0
        return self._links[key].queue_depth_seconds()

    def total_backlog_seconds(self) -> float:
        """Sum of serialization backlogs across all links (congestion gauge)."""
        return sum(link.queue_depth_seconds() for link in self._links.values())
