"""Message types and the byte-level size model.

Sizes matter twice in the reproduction: serialization delay on 90 kbps
links (throughput, Figure 11) and the coefficient-overhead percentage
(Figure 8).  Rather than pickling real objects we model message sizes from
first principles, mirroring what the C++ prototype would put on the wire:

* every message carries a fixed header (source, destination, kind,
  sequence number, timestamps);
* a forwarded tuple carries its key and payload;
* a summary update carries one complex coefficient (two IEEE-754 doubles)
  plus a coefficient index per entry, or the equivalently-sized Bloom /
  sketch fragment (the experiments size all summaries identically, as the
  paper does).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

HEADER_BYTES = 24
"""Fixed per-message framing: ids, kind, sequence number, send timestamp."""

TUPLE_KEY_BYTES = 8
"""The joining attribute, a 64-bit integer."""

TUPLE_PAYLOAD_BYTES = 40
"""Non-key tuple payload (the paper joins trade / packet records)."""

SUMMARY_COEFFICIENT_BYTES = 20
"""One summary entry: complex coefficient (16 bytes) + 4-byte index.

Bloom-filter fragments and sketch fragments are sized identically so the
summary-size axis of Figure 10(a) is comparable across algorithms, exactly
as Section 6 prescribes ("we adjust the size of the Bloom filters, sketches
and DFT coefficients to be the same").
"""

_message_ids = itertools.count()


class MessageKind(enum.Enum):
    """Wire-level message categories, used for traffic accounting."""

    TUPLE = "tuple"
    """A forwarded stream tuple (possibly with piggy-backed summary deltas)."""

    SUMMARY = "summary"
    """A standalone summary-update message (no tuple aboard)."""

    RESULT = "result"
    """A reported join-result tuple."""

    CONTROL = "control"
    """Query dissemination and other control-plane traffic."""

    ACK = "ack"
    """Reliable-channel acknowledgement (header-only; see repro.net.reliable)."""

    HEARTBEAT = "heartbeat"
    """Liveness probe for the failure detector (header-only)."""

    STATE_TRANSFER = "state_transfer"
    """Recovery anti-entropy traffic (see repro.recovery): requests are
    header-only (watermark-delta claims ride the fixed framing, like
    ``seq``); responses carry summary entries like any summary -- the
    full snapshot's entries, or the honest, smaller delta footprint when
    the watermark-delta protocol applies (the serving node still pauses
    for the full-snapshot size; see repro.recovery.delta)."""


@dataclass
class Message:
    """A simulated network message.

    ``summary_entries`` counts piggy-backed summary coefficients (or filter
    fragments); their bytes are accounted to the *summary* category even when
    they ride on a TUPLE message, which is how Figure 8 separates overhead
    from net data.
    """

    kind: MessageKind
    source: int
    destination: int
    payload: Any = None
    summary_entries: int = 0
    message_id: int = field(default_factory=lambda: next(_message_ids))
    created_at: Optional[float] = None
    seq: Optional[int] = None
    """Reliable-channel sequence number (None for best-effort traffic);
    on ACK messages, the sequence number being acknowledged.  Rides in the
    fixed header, so it adds no modeled bytes."""

    def tuple_bytes(self) -> int:
        """Bytes attributable to the tuple/result/control body."""
        if self.kind in (MessageKind.TUPLE, MessageKind.RESULT):
            return TUPLE_KEY_BYTES + TUPLE_PAYLOAD_BYTES
        if self.kind == MessageKind.CONTROL:
            return TUPLE_KEY_BYTES
        return 0

    def summary_bytes(self) -> int:
        """Bytes attributable to summary content (piggy-backed or standalone)."""
        return self.summary_entries * SUMMARY_COEFFICIENT_BYTES

    def size_bytes(self) -> int:
        """Total on-the-wire size."""
        return HEADER_BYTES + self.tuple_bytes() + self.summary_bytes()
