"""Deterministic fault injection for the simulated WAN.

The paper's protocols are evaluated on an emulated WAN whose links are
*reliable*; real 20-100 ms / 90 kbps paths are not.  This module injects
the classic WAN fault classes against the :class:`~repro.net.simulator.
EventScheduler` so the control loop's robustness can be measured:

* **loss burst** -- extra per-message drop probability on selected links;
* **link outage** -- selected directed links black-hole everything;
* **partition** -- a node group is cut off from the rest (both ways);
* **latency spike** -- extra propagation delay (a gray failure);
* **node crash/restart** -- a node goes dark: its local arrivals are
  discarded and messages to or from it are dropped until it restarts;
* **overload** -- a node's service times are multiplied by a slowdown
  factor (equivalently: its input surges past its capacity), exercising
  the :mod:`repro.overload` degradation ladder.

A :class:`FaultPlan` is a static, validated set of :class:`FaultEvent`
windows -- pure data, no randomness -- so an identical seed plus an
identical plan reproduces a run bit-for-bit.  The :class:`FaultInjector`
schedules the activation/deactivation edges and answers point queries
from :class:`~repro.net.link.Link` and the node runtime.

Plans can be written inline, loaded from JSON, or spelled as compact
preset specs (``partition@t=10s,d=5s``); see :meth:`FaultPlan.parse`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.simulator import EventScheduler


class FaultKind(enum.Enum):
    """The injectable fault classes."""

    LOSS_BURST = "loss_burst"
    LINK_OUTAGE = "link_outage"
    PARTITION = "partition"
    LATENCY_SPIKE = "latency_spike"
    NODE_CRASH = "node_crash"
    OVERLOAD = "overload"


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: a kind active on ``[start_s, start_s + duration_s)``.

    ``nodes`` selects crash targets (NODE_CRASH) or one side of the cut
    (PARTITION); ``links`` selects directed links (LINK_OUTAGE, and
    optionally LOSS_BURST / LATENCY_SPIKE -- empty means every link).
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    nodes: Tuple[int, ...] = ()
    links: Tuple[Tuple[int, int], ...] = ()
    loss_probability: float = 0.0
    extra_latency_s: float = 0.0
    downtime_s: float = 0.0
    """NODE_CRASH only: when positive, the crash is *restartable* -- the
    outage lasts ``downtime_s`` (overriding ``duration_s``) and the node
    rejoins through the :mod:`repro.recovery` protocol instead of
    silently resuming with its pre-crash state."""

    slowdown_factor: float = 0.0
    """OVERLOAD only: multiplier (> 1) applied to the listed nodes'
    service times while the window is active."""

    @property
    def restartable(self) -> bool:
        """Whether this crash restarts through the recovery protocol."""
        return self.kind is FaultKind.NODE_CRASH and self.downtime_s > 0

    @property
    def end_s(self) -> float:
        if self.restartable:
            return self.start_s + self.downtime_s
        return self.start_s + self.duration_s

    def validate(self, num_nodes: Optional[int] = None) -> None:
        if self.start_s < 0:
            raise ConfigurationError("fault start_s must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("fault duration_s must be positive")
        if self.kind is FaultKind.NODE_CRASH and not self.nodes:
            raise ConfigurationError("NODE_CRASH requires at least one node")
        if self.kind is FaultKind.PARTITION and not self.nodes:
            raise ConfigurationError("PARTITION requires a non-empty node group")
        if self.kind is FaultKind.LINK_OUTAGE and not self.links:
            raise ConfigurationError("LINK_OUTAGE requires at least one link")
        if self.kind is FaultKind.LOSS_BURST and not (
            0.0 < self.loss_probability <= 1.0
        ):
            raise ConfigurationError("LOSS_BURST requires loss_probability in (0, 1]")
        if self.kind is FaultKind.LATENCY_SPIKE and self.extra_latency_s <= 0:
            raise ConfigurationError("LATENCY_SPIKE requires extra_latency_s > 0")
        if self.kind is FaultKind.OVERLOAD:
            if not self.nodes:
                raise ConfigurationError("OVERLOAD requires at least one node")
            if self.slowdown_factor <= 1.0:
                raise ConfigurationError("OVERLOAD requires slowdown_factor > 1")
        elif self.slowdown_factor:
            raise ConfigurationError("slowdown_factor is only valid for OVERLOAD")
        if self.downtime_s < 0:
            raise ConfigurationError("fault downtime_s must be non-negative")
        if self.downtime_s > 0 and self.kind is not FaultKind.NODE_CRASH:
            raise ConfigurationError("downtime_s is only valid for NODE_CRASH")
        for source, destination in self.links:
            if source == destination:
                raise ConfigurationError("fault link %d->%d is a self-loop" % (source, destination))
        if num_nodes is not None:
            for node in self.nodes:
                if not 0 <= node < num_nodes:
                    raise ConfigurationError(
                        "fault references node %d outside [0, %d)" % (node, num_nodes)
                    )
            for source, destination in self.links:
                if not (0 <= source < num_nodes and 0 <= destination < num_nodes):
                    raise ConfigurationError(
                        "fault references link %d->%d outside [0, %d)"
                        % (source, destination, num_nodes)
                    )
            if self.kind is FaultKind.PARTITION and len(set(self.nodes)) >= num_nodes:
                raise ConfigurationError(
                    "PARTITION group must leave at least one node on the other side"
                )

    def affects_link(self, source: int, destination: int) -> bool:
        """Whether this event's link selector covers ``source -> destination``."""
        if self.kind is FaultKind.PARTITION:
            return (source in self.nodes) != (destination in self.nodes)
        if self.kind is FaultKind.NODE_CRASH:
            return source in self.nodes or destination in self.nodes
        if self.kind is FaultKind.OVERLOAD:
            return False
        if not self.links:
            return True
        return (source, destination) in self.links

    def to_spec(self) -> str:
        """Render this event in the compact grammar :meth:`FaultPlan.parse`
        reads (``kind@t=...,d=...,...``); the round trip is exact."""
        parts = ["t=%r" % self.start_s, "d=%r" % self.duration_s]
        if self.downtime_s:
            parts.append("downtime=%r" % self.downtime_s)
        if self.nodes:
            parts.append("nodes=%s" % "+".join(str(n) for n in self.nodes))
        for source, destination in self.links:
            parts.append("link=%d-%d" % (source, destination))
        if self.loss_probability:
            parts.append("p=%r" % self.loss_probability)
        if self.extra_latency_s:
            parts.append("extra=%r" % self.extra_latency_s)
        if self.slowdown_factor:
            parts.append("factor=%r" % self.slowdown_factor)
        return "%s@%s" % (self.kind.value, ",".join(parts))

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.nodes:
            payload["nodes"] = list(self.nodes)
        if self.links:
            payload["links"] = [list(pair) for pair in self.links]
        if self.loss_probability:
            payload["loss_probability"] = self.loss_probability
        if self.extra_latency_s:
            payload["extra_latency_s"] = self.extra_latency_s
        if self.downtime_s:
            payload["downtime_s"] = self.downtime_s
        if self.slowdown_factor:
            payload["slowdown_factor"] = self.slowdown_factor
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultEvent":
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError) as error:
            raise ConfigurationError("fault event needs a valid 'kind': %s" % error)
        try:
            event = cls(
                kind=kind,
                start_s=float(payload["start_s"]),
                duration_s=float(payload["duration_s"]),
                nodes=tuple(int(n) for n in payload.get("nodes", ())),
                links=tuple(
                    (int(pair[0]), int(pair[1])) for pair in payload.get("links", ())
                ),
                loss_probability=float(payload.get("loss_probability", 0.0)),
                extra_latency_s=float(payload.get("extra_latency_s", 0.0)),
                downtime_s=float(payload.get("downtime_s", 0.0)),
                slowdown_factor=float(payload.get("slowdown_factor", 0.0)),
            )
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise ConfigurationError("malformed fault event %r: %s" % (payload, error))
        event.validate()
        return event


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault windows (empty by default)."""

    events: Tuple[FaultEvent, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.events

    def validate(self, num_nodes: Optional[int] = None) -> None:
        for event in self.events:
            event.validate(num_nodes)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [event.as_dict() for event in self.events]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to the JSON array :meth:`from_json` reads back."""
        return json.dumps(self.as_dicts(), indent=indent, sort_keys=True)

    def to_spec(self) -> str:
        """Render the whole plan in the compact :meth:`parse` grammar.

        Only defined for non-empty plans (the grammar has no spelling for
        "no faults"; an empty plan is just the absence of a spec).
        """
        if not self.events:
            raise ConfigurationError("an empty fault plan has no spec form")
        return "; ".join(event.to_spec() for event in self.events)

    @classmethod
    def from_events(cls, events: Sequence[FaultEvent]) -> "FaultPlan":
        return cls(events=tuple(events))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a JSON array of event objects (the :meth:`as_dicts` shape)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError("fault plan is not valid JSON: %s" % error)
        if not isinstance(payload, list):
            raise ConfigurationError("fault plan JSON must be a list of events")
        return cls.from_events([FaultEvent.from_dict(item) for item in payload])

    @classmethod
    def parse(cls, spec: str, num_nodes: Optional[int] = None) -> "FaultPlan":
        """Parse a compact spec string (``;``-separated preset events).

        Each event is ``kind@key=value,...`` with seconds accepted as bare
        numbers or with an ``s`` suffix:

        * ``partition@t=10s,d=5s[,nodes=0+1]`` -- cut the listed group (or
          the first half of the mesh) off from the rest;
        * ``outage@t=5,d=2,link=0-1[,link=1-0]`` -- black-hole links;
        * ``crash@t=10,d=5,node=2`` -- crash node 2, restart 5 s later;
        * ``crash@t=10,node=2,downtime=5`` -- restartable crash: node 2
          is down 5 s, then rejoins via checkpoint recovery;
        * ``latency@t=5,d=3,extra=0.5`` -- +500 ms on every link;
        * ``loss@t=5,d=3,p=0.3`` -- 30 % extra drop chance on every link;
        * ``overload@t=5,d=3,node=2,factor=4`` -- node 2's service times
          are 4x for 3 s (an arrival surge past its capacity).
        """
        events = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if chunk:
                events.append(_parse_event_spec(chunk, num_nodes))
        if not events:
            raise ConfigurationError("fault plan spec %r contains no events" % spec)
        plan = cls.from_events(events)
        plan.validate(num_nodes)
        return plan


_SPEC_KINDS = {
    "loss": FaultKind.LOSS_BURST,
    "loss_burst": FaultKind.LOSS_BURST,
    "outage": FaultKind.LINK_OUTAGE,
    "link_outage": FaultKind.LINK_OUTAGE,
    "partition": FaultKind.PARTITION,
    "latency": FaultKind.LATENCY_SPIKE,
    "latency_spike": FaultKind.LATENCY_SPIKE,
    "crash": FaultKind.NODE_CRASH,
    "node_crash": FaultKind.NODE_CRASH,
    "overload": FaultKind.OVERLOAD,
}

_DEFAULT_DURATION_S = 5.0


def _parse_seconds(value: str) -> float:
    text = value.strip().lower()
    if text.endswith("s"):
        text = text[:-1]
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError("cannot parse %r as seconds" % value)


def _parse_event_spec(chunk: str, num_nodes: Optional[int]) -> FaultEvent:
    name, _, arg_text = chunk.partition("@")
    kind = _SPEC_KINDS.get(name.strip().lower())
    if kind is None:
        raise ConfigurationError(
            "unknown fault kind %r (expected one of %s)"
            % (name, ", ".join(sorted(set(_SPEC_KINDS))))
        )
    start = None
    duration = _DEFAULT_DURATION_S
    nodes: List[int] = []
    links: List[Tuple[int, int]] = []
    loss = 0.0
    extra_latency = 0.0
    downtime = 0.0
    factor = 0.0
    for pair in filter(None, (p.strip() for p in arg_text.split(","))):
        key, eq, value = pair.partition("=")
        if not eq:
            raise ConfigurationError("malformed fault argument %r in %r" % (pair, chunk))
        key = key.strip().lower()
        if key == "t":
            start = _parse_seconds(value)
        elif key == "d":
            duration = _parse_seconds(value)
        elif key == "node":
            nodes.append(_parse_int(value, chunk))
        elif key == "nodes":
            nodes.extend(_parse_int(v, chunk) for v in value.split("+"))
        elif key == "link":
            ends = value.split("-")
            if len(ends) != 2:
                raise ConfigurationError("link spec %r must be 'src-dst'" % value)
            links.append((_parse_int(ends[0], chunk), _parse_int(ends[1], chunk)))
        elif key == "p":
            loss = _parse_float(value, chunk)
        elif key == "extra":
            extra_latency = _parse_seconds(value)
        elif key == "downtime":
            downtime = _parse_seconds(value)
        elif key == "factor":
            factor = _parse_float(value, chunk)
        else:
            raise ConfigurationError("unknown fault argument %r in %r" % (key, chunk))
    if start is None:
        raise ConfigurationError("fault spec %r is missing its start time t=" % chunk)
    if kind is FaultKind.PARTITION and not nodes:
        if num_nodes is None:
            raise ConfigurationError(
                "partition spec %r needs nodes=... when the mesh size is unknown" % chunk
            )
        nodes = list(range(num_nodes // 2))
    if kind is FaultKind.LOSS_BURST and loss == 0.0:
        loss = 0.5
    if kind is FaultKind.LATENCY_SPIKE and extra_latency == 0.0:
        extra_latency = 0.5
    if kind is FaultKind.OVERLOAD and factor == 0.0:
        factor = 4.0
    event = FaultEvent(
        kind=kind,
        start_s=start,
        duration_s=duration,
        nodes=tuple(nodes),
        links=tuple(links),
        loss_probability=loss,
        extra_latency_s=extra_latency,
        downtime_s=downtime,
        slowdown_factor=factor,
    )
    event.validate(num_nodes)
    return event


def _parse_int(value: str, context: str) -> int:
    try:
        return int(value.strip())
    except ValueError:
        raise ConfigurationError("cannot parse %r as a node id in %r" % (value, context))


def _parse_float(value: str, context: str) -> float:
    try:
        return float(value.strip())
    except ValueError:
        raise ConfigurationError("cannot parse %r as a number in %r" % (value, context))


def load_fault_plan(source: str, num_nodes: Optional[int] = None) -> FaultPlan:
    """Resolve ``source`` into a plan: a JSON/spec file path or a spec string.

    A path ending in ``.json`` (or whose contents start with ``[``) is
    parsed as JSON; anything else goes through :meth:`FaultPlan.parse`.
    """
    from pathlib import Path

    path = Path(source)
    try:
        is_file = path.is_file()
    except OSError:
        is_file = False
    if is_file:
        text = path.read_text()
        if source.endswith(".json") or text.lstrip().startswith("["):
            plan = FaultPlan.from_json(text)
        else:
            plan = FaultPlan.parse(text, num_nodes)
        plan.validate(num_nodes)
        return plan
    return FaultPlan.parse(source, num_nodes)


class FaultInjector:
    """Executes a :class:`FaultPlan` against a scheduler and answers
    point-in-time queries from the network layer.

    Activation and deactivation are plain scheduled events, so the whole
    fault timeline participates in the simulator's deterministic ordering.
    Queries are O(active events) -- plans are small by construction.
    """

    def __init__(self, plan: FaultPlan, num_nodes: int) -> None:
        plan.validate(num_nodes)
        self.plan = plan
        self.num_nodes = num_nodes
        self._active: List[FaultEvent] = []
        self._scheduler: Optional[EventScheduler] = None
        self.messages_blocked = 0
        self.activations: Dict[str, int] = {}
        self.timeline: List[Tuple[float, str, str]] = []
        """Observed ``(time, kind, "start"|"end")`` edges, in firing order."""

    def install(self, scheduler: EventScheduler) -> None:
        """Schedule every activation/deactivation edge of the plan."""
        for event in self.plan.events:
            scheduler.schedule_at(event.start_s, lambda e=event: self._activate(e))
            scheduler.schedule_at(event.end_s, lambda e=event: self._deactivate(e))
        self._scheduler = scheduler

    def _activate(self, event: FaultEvent) -> None:
        self._active.append(event)
        self.activations[event.kind.value] = self.activations.get(event.kind.value, 0) + 1
        self.timeline.append((self._scheduler.now, event.kind.value, "start"))

    def _deactivate(self, event: FaultEvent) -> None:
        self._active.remove(event)
        self.timeline.append((self._scheduler.now, event.kind.value, "end"))

    # ------------------------------------------------------------------
    # point queries (called from Link.send / delivery / the node runtime)
    # ------------------------------------------------------------------

    @property
    def active_events(self) -> Tuple[FaultEvent, ...]:
        return tuple(self._active)

    def node_down(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently crashed."""
        return any(
            event.kind is FaultKind.NODE_CRASH and node_id in event.nodes
            for event in self._active
        )

    def restartable_down(self, node_id: int) -> bool:
        """Whether ``node_id`` is down under a *restartable* crash.

        Restartable crashes (``downtime_s > 0``) take the recovery path:
        local arrivals are logged for replay instead of being discarded.
        """
        return any(
            event.restartable and node_id in event.nodes for event in self._active
        )

    def link_blocked(self, source: int, destination: int) -> bool:
        """Whether the directed link is severed (outage, partition, crash)."""
        for event in self._active:
            if event.kind in (
                FaultKind.LINK_OUTAGE,
                FaultKind.PARTITION,
                FaultKind.NODE_CRASH,
            ) and event.affects_link(source, destination):
                return True
        return False

    def extra_loss(self, source: int, destination: int) -> float:
        """Additional drop probability currently applied to the link."""
        survival = 1.0
        for event in self._active:
            if event.kind is FaultKind.LOSS_BURST and event.affects_link(
                source, destination
            ):
                survival *= 1.0 - event.loss_probability
        return 1.0 - survival

    def service_factor(self, node_id: int) -> float:
        """Multiplier currently applied to ``node_id``'s service times.

        The product over active OVERLOAD windows covering the node;
        1.0 when none are active.
        """
        factor = 1.0
        for event in self._active:
            if event.kind is FaultKind.OVERLOAD and node_id in event.nodes:
                factor *= event.slowdown_factor
        return factor

    def extra_latency(self, source: int, destination: int) -> float:
        """Additional propagation delay currently applied to the link."""
        return sum(
            event.extra_latency_s
            for event in self._active
            if event.kind is FaultKind.LATENCY_SPIKE
            and event.affects_link(source, destination)
        )

    def note_blocked(self) -> None:
        """Called by the link layer when a message died to an active fault."""
        self.messages_blocked += 1

    def summary(self) -> Dict[str, float]:
        """Flat counters for result reporting."""
        counters: Dict[str, float] = {
            "fault_events": float(len(self.plan.events)),
            "messages_blocked": float(self.messages_blocked),
        }
        for kind, count in sorted(self.activations.items()):
            counters["activations_%s" % kind] = float(count)
        return counters
