"""Simulated wide-area network substrate.

The paper evaluates on twenty Sun workstations with software-emulated WAN
characteristics: 20-100 ms of latency per message and a 90 kbps bandwidth
cap per link.  This package provides a deterministic discrete-event
simulator with the same model:

* :class:`~repro.net.simulator.EventScheduler` -- the event loop.
* :class:`~repro.net.link.Link` -- a point-to-point link with latency,
  serialization delay and FIFO queueing.
* :class:`~repro.net.message.Message` -- typed messages with a byte-level
  size model used for bandwidth and overhead accounting.
* :class:`~repro.net.topology.Network` -- a full mesh of links between
  registered endpoints.
* :class:`~repro.net.stats.TrafficStats` -- per-category byte/message
  counters (Figure 8 overhead accounting).
* :class:`~repro.net.faults.FaultInjector` -- deterministic link/node
  fault schedules (outages, partitions, loss bursts, latency spikes,
  crashes) for robustness experiments.
* :class:`~repro.net.reliable.ReliableTransport` -- optional control-plane
  ARQ (sequence numbers, acks, retransmission with backoff) over the
  best-effort links.
"""

from repro.net.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    load_fault_plan,
)
from repro.net.link import Link, LinkSpec
from repro.net.message import (
    Message,
    MessageKind,
    SUMMARY_COEFFICIENT_BYTES,
    TUPLE_PAYLOAD_BYTES,
)
from repro.net.reliable import ReliabilitySettings, ReliableChannel, ReliableTransport
from repro.net.simulator import Event, EventScheduler
from repro.net.stats import TrafficStats
from repro.net.topology import Endpoint, Network

__all__ = [
    "Event",
    "EventScheduler",
    "Link",
    "LinkSpec",
    "Message",
    "MessageKind",
    "Network",
    "Endpoint",
    "TrafficStats",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan",
    "ReliabilitySettings",
    "ReliableChannel",
    "ReliableTransport",
    "SUMMARY_COEFFICIENT_BYTES",
    "TUPLE_PAYLOAD_BYTES",
]
