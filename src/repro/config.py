"""Experiment and system configuration.

Three frozen dataclasses describe a complete run:

* :class:`PolicyConfig` -- which forwarding algorithm runs at the nodes and
  its knobs (compression factor, flow budget, summary cadence);
* :class:`WorkloadConfig` -- what data arrives, how fast, and how
  geographically skewed its placement is;
* :class:`SystemConfig` -- how many nodes, window sizes, the WAN link
  model, and the node service-time model.

Everything is serializable to plain dictionaries (``as_dict``) so results
can echo the exact configuration that produced them.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.correlation import SimilarityMeasure
from repro.core.flow import FlowSettings
from repro.errors import ConfigurationError
from repro.net.faults import FaultPlan
from repro.net.link import LinkSpec
from repro.net.reliable import ReliabilitySettings
from repro.overload.settings import OverloadSettings
from repro.recovery.settings import RecoverySettings
from repro.telemetry.settings import TelemetrySettings


class Algorithm(enum.Enum):
    """The forwarding algorithms compared in Section 6."""

    BASE = "BASE"
    ROUND_ROBIN = "RR"
    DFT = "DFT"
    DFTT = "DFTT"
    BLOOM = "BLOOM"
    SKCH = "SKCH"


class WorkloadKind(enum.Enum):
    """The four workloads of Section 6, plus user-supplied trace replay."""

    UNIFORM = "UNI"
    ZIPF = "ZIPF"
    FINANCIAL = "FIN"
    NETWORK = "NWRK"
    REPLAY = "REPLAY"


class WindowKind(enum.Enum):
    """Window definitions of Section 2 supported by the runtime.

    The algorithms are agnostic to the definition (the paper evaluates
    with tuple-count windows, as do our experiments); the runtime also
    supports time-based windows end-to-end.  DFT summaries always cover
    the most recent ``window_size`` tuples -- for a time window that is an
    approximation whose quality degrades only if the window population
    wanders far from ``window_size``.
    """

    COUNT = "count"
    TIME = "time"
    LANDMARK = "landmark"


@dataclass(frozen=True)
class PolicyConfig:
    """Per-node forwarding-policy parameters."""

    algorithm: Algorithm = Algorithm.DFTT
    flow: FlowSettings = field(default_factory=FlowSettings)
    similarity: SimilarityMeasure = SimilarityMeasure.DISTRIBUTION
    kappa: float = 256.0
    """Compression factor: the summary budget is max(1, W / kappa) entries."""

    summary_refresh_interval: int = 32
    """Local arrivals between summary delta recomputations/broadcasts."""

    delta_tolerance: float = 0.05
    """Relative change below which a DFT coefficient is not re-sent."""

    bloom_hashes: int = 4
    sketch_ratio: int = 5
    sketch_variant: str = "plain"
    """"plain" (AGMS, every counter per update) or "fast" (Fast-AGMS /
    count-sketch structure, one counter per row per update)."""
    explore_probability: float = 0.05
    """DFTT/BLOOM: chance of probing one extra peer beyond the evidence."""

    def validate(self) -> None:
        if self.kappa < 1:
            raise ConfigurationError("kappa must be >= 1")
        if self.summary_refresh_interval < 1:
            raise ConfigurationError("summary_refresh_interval must be >= 1")
        if self.delta_tolerance < 0:
            raise ConfigurationError("delta_tolerance must be non-negative")
        if self.bloom_hashes < 1:
            raise ConfigurationError("bloom_hashes must be >= 1")
        if self.sketch_ratio < 1:
            raise ConfigurationError("sketch_ratio must be >= 1")
        if self.sketch_variant not in ("plain", "fast"):
            raise ConfigurationError(
                "sketch_variant must be 'plain' or 'fast', got %r"
                % (self.sketch_variant,)
            )
        if not 0.0 <= self.explore_probability <= 1.0:
            raise ConfigurationError("explore_probability must lie in [0, 1]")

    def summary_budget(self, window_size: int) -> int:
        """Summary entries per broadcast: W / kappa, at least 1."""
        return max(1, int(window_size / self.kappa))

    def with_overrides(self, **changes) -> "PolicyConfig":
        """Functional update (used by calibration searches)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class WorkloadConfig:
    """Data and arrival-process parameters."""

    kind: WorkloadKind = WorkloadKind.ZIPF
    total_tuples: int = 20_000
    domain: int = 2**13
    alpha: float = 0.4
    arrival_rate: float = 400.0
    """System-wide tuple arrivals per simulated second (both streams)."""

    skew: float = 0.85
    spread: float = 0.35
    """Geographic placement parameters (see GeographicPartitioner)."""

    trace_path: str = ""
    """REPLAY workloads: path to the key trace (text or .npy); see
    :mod:`repro.streams.replay`.  Keys must fit inside ``domain``."""

    permute_zipf_ranks: bool = True
    """Shuffle the ZIPF rank-to-key mapping so popularity is spread across
    the key domain.  Every node then owns its *own* hot keys (balanced
    load, geographically pinned attributes) -- the regime the paper calls
    "geographic skew in the joining attributes".  Without it the hottest
    keys all live in one node's range and load collapses onto that node."""

    def validate(self) -> None:
        if self.total_tuples < 1:
            raise ConfigurationError("total_tuples must be >= 1")
        if self.domain < 2:
            raise ConfigurationError("domain must be >= 2")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 0.0 <= self.skew <= 1.0:
            raise ConfigurationError("skew must lie in [0, 1]")
        if not 0.0 <= self.spread < 1.0:
            raise ConfigurationError("spread must lie in [0, 1)")
        if self.kind is WorkloadKind.REPLAY and not self.trace_path:
            raise ConfigurationError("REPLAY workloads require trace_path")
        if self.kind is not WorkloadKind.REPLAY and self.trace_path:
            raise ConfigurationError("trace_path is only valid for REPLAY")

    def with_overrides(self, **changes) -> "WorkloadConfig":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated run."""

    num_nodes: int = 4
    window_size: int = 512
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    link: LinkSpec = field(default_factory=lambda: LinkSpec(bandwidth_bps=math.inf))
    """Links carry latency only by default; bandwidth is sender-paced below,
    mirroring the paper's emulation (the *sender* pauses per 90 kilobits)."""

    sender_paced_bps: float = 90_000.0
    cpu_seconds_per_tuple: float = 0.0002
    cpu_seconds_per_probe: float = 0.00005
    summary_flush_multiple: float = 8.0
    """A standalone summary goes to a peer not contacted for this multiple
    of the node's mean inter-arrival time (Figure 7's dynamic period)."""

    shadow_window_size: Optional[int] = None
    """Per-origin capacity of the remote-copy shadow windows (defaults to
    window_size, aligning a copy's lifetime with its origin window)."""

    num_queries: int = 1
    """Concurrent independent join queries (Section 3's multi-query
    setting).  Each query joins its own R/S stream pair; all queries share
    the nodes, their service capacity, and the WAN links, so they contend
    for exactly the resources the paper's throughput analysis is about.
    The workload's total_tuples and arrival_rate are split evenly."""

    window_kind: "WindowKind" = None  # type: ignore[assignment]
    """COUNT (default) or TIME windows; see :class:`WindowKind`."""

    window_seconds: float = 0.0
    """Span of TIME windows in simulated seconds (required for TIME)."""

    landmark_key: int = 0
    """LANDMARK windows: observing this joining-attribute value resets the
    window (Section 2's "until a specific tuple is observed").  The window
    is additionally capped at window_size tuples between landmarks."""

    reliability: ReliabilitySettings = field(default_factory=ReliabilitySettings)
    """Control-plane ARQ + failure detector (disabled by default: the
    paper's wire protocol, bit-for-bit)."""

    faults: FaultPlan = field(default_factory=FaultPlan)
    """Deterministic fault schedule (empty by default: a healthy WAN)."""

    telemetry: TelemetrySettings = field(default_factory=TelemetrySettings)
    """Metrics/tracing/dashboard knobs (off by default; see
    :mod:`repro.telemetry`)."""

    recovery: RecoverySettings = field(default_factory=RecoverySettings)
    """Checkpoint/restart recovery knobs (off by default; see
    :mod:`repro.recovery`).  Requires the reliable transport."""

    overload: OverloadSettings = field(default_factory=OverloadSettings)
    """Bounded queues / load-shedding knobs (off by default: queues grow
    without bound, the pre-overload semantics; see :mod:`repro.overload`)."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.window_kind is None:
            object.__setattr__(self, "window_kind", WindowKind.COUNT)

    def validate(self) -> None:
        if self.num_nodes < 2:
            raise ConfigurationError("num_nodes must be >= 2")
        if self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        if self.sender_paced_bps <= 0:
            raise ConfigurationError("sender_paced_bps must be positive")
        if self.cpu_seconds_per_tuple < 0 or self.cpu_seconds_per_probe < 0:
            raise ConfigurationError("CPU costs must be non-negative")
        if self.summary_flush_multiple <= 0:
            raise ConfigurationError("summary_flush_multiple must be positive")
        if self.shadow_window_size is not None and self.shadow_window_size < 1:
            raise ConfigurationError("shadow_window_size must be >= 1")
        if self.num_queries < 1:
            raise ConfigurationError("num_queries must be >= 1")
        if self.workload.total_tuples < self.num_queries:
            raise ConfigurationError("need at least one tuple per query")
        if self.window_kind is WindowKind.TIME and self.window_seconds <= 0:
            raise ConfigurationError("TIME windows require window_seconds > 0")
        if self.window_kind is not WindowKind.TIME and self.window_seconds:
            raise ConfigurationError("window_seconds is only valid for TIME windows")
        if self.window_kind is WindowKind.LANDMARK and not (
            1 <= self.landmark_key <= self.workload.domain
        ):
            raise ConfigurationError(
                "LANDMARK windows require landmark_key inside the key domain"
            )
        if self.window_kind is not WindowKind.LANDMARK and self.landmark_key:
            raise ConfigurationError(
                "landmark_key is only valid for LANDMARK windows"
            )
        self.policy.validate()
        self.workload.validate()
        self.link.validate()
        self.reliability.validate()
        self.faults.validate(self.num_nodes)
        self.telemetry.validate()
        self.recovery.validate()
        self.overload.validate()
        if self.recovery.enabled and not self.reliability.enabled:
            raise ConfigurationError(
                "recovery requires the reliable transport (reliability.enabled):"
                " the rejoin protocol's state transfer rides the ARQ channel"
            )

    @property
    def effective_shadow_window(self) -> int:
        return self.shadow_window_size or self.window_size

    def with_overrides(self, **changes) -> "SystemConfig":
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        """Flat, JSON-friendly echo of the configuration.

        Overload keys appear only when the subsystem is enabled, so runs
        with the default settings echo byte-identically to builds that
        predate it.
        """
        payload: Dict[str, object] = {
            "num_nodes": self.num_nodes,
            "window_size": self.window_size,
            "algorithm": self.policy.algorithm.value,
            "kappa": self.policy.kappa,
            "similarity": self.policy.similarity.value,
            "budget_fraction": self.policy.flow.budget_fraction,
            "budget_override": self.policy.flow.budget_override,
            "workload": self.workload.kind.value,
            "total_tuples": self.workload.total_tuples,
            "domain": self.workload.domain,
            "alpha": self.workload.alpha,
            "arrival_rate": self.workload.arrival_rate,
            "skew": self.workload.skew,
            "spread": self.workload.spread,
            "reliability_enabled": self.reliability.enabled,
            "fault_events": len(self.faults.events),
            "telemetry_enabled": self.telemetry.enabled,
            "recovery_enabled": self.recovery.enabled,
            "checkpoint_interval_s": self.recovery.checkpoint_interval_s,
            "delta_state_transfer": self.recovery.delta_state_transfer,
            "seed": self.seed,
        }
        if self.overload.enabled:
            payload["overload_enabled"] = True
            payload["queue_bound"] = self.overload.queue_bound
            payload["shed_watermark"] = self.overload.shed_watermark
            payload["throttle_watermark"] = self.overload.throttle_watermark
        return payload
