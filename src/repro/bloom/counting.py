"""Counting Bloom filter.

The sliding window deletes tuples, so the BLOOM baseline uses *counting*
filters (Section 6: "a counting Bloom filter is constructed at each
site").  Each position holds a small counter; insertion increments the k
probed counters, deletion decrements them, and membership requires all k
to be positive.  Counters saturate at ``max_count`` instead of
overflowing (the classical 4-bit counter treatment), at the cost of
possible false negatives after saturation -- tracked so tests can assert
it never happens at the experiment scales.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError
from repro.sketches.hashing import FourWiseHashFamily


class CountingBloomFilter:
    """Bloom filter with per-position counters supporting deletion."""

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        max_count: int = 15,
        hashes: Optional[FourWiseHashFamily] = None,
        rng=None,
    ) -> None:
        if num_counters < 1:
            raise SummaryError("num_counters must be >= 1")
        if num_hashes < 1:
            raise SummaryError("num_hashes must be >= 1")
        if max_count < 1:
            raise SummaryError("max_count must be >= 1")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self.max_count = max_count
        self._hashes = hashes if hashes is not None else FourWiseHashFamily(
            2, rng=ensure_rng(rng)
        )
        self._counters = np.zeros(num_counters, dtype=np.int32)
        self.items = 0
        self.saturations = 0

    def spawn_compatible(self) -> "CountingBloomFilter":
        """Empty filter sharing this filter's hash functions."""
        return CountingBloomFilter(
            self.num_counters, self.num_hashes, self.max_count, hashes=self._hashes
        )

    def _positions(self, key: int) -> np.ndarray:
        raw = self._hashes.raw(key)
        h1, h2 = int(raw[0]), int(raw[1]) | 1
        return (h1 + np.arange(self.num_hashes, dtype=np.int64) * h2) % self.num_counters

    def add(self, key: int) -> None:
        positions = self._positions(key)
        saturated = self._counters[positions] >= self.max_count
        self.saturations += int(saturated.sum())
        self._counters[positions] = np.minimum(
            self._counters[positions] + 1, self.max_count
        )
        self.items += 1

    def remove(self, key: int) -> None:
        """Delete one previously-added key (sliding-window eviction).

        Saturated counters are *sticky*: once a counter hit ``max_count``
        its true value is unknown, so it is never decremented (the classic
        4-bit-counter treatment).  This preserves the no-false-negative
        guarantee at the cost of permanent false positives in hot cells.
        """
        positions = self._positions(key)
        counters = self._counters[positions]
        if ((counters == 0) & (counters < self.max_count)).any():
            raise SummaryError("removing key %d that was never added" % key)
        decrementable = counters < self.max_count
        self._counters[positions[decrementable]] -= 1
        self.items -= 1

    def update(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: int) -> bool:
        return bool((self._counters[self._positions(key)] > 0).all())

    def count_estimate(self, key: int) -> int:
        """Upper bound on the key's window multiplicity (min probed counter)."""
        return int(self._counters[self._positions(key)].min())

    def fill_ratio(self) -> float:
        """Fraction of non-zero counters."""
        return float((self._counters > 0).mean())

    def false_positive_rate(self) -> float:
        """Estimated FP probability from the current fill ratio."""
        return self.fill_ratio() ** self.num_hashes

    def snapshot(self) -> np.ndarray:
        """Copy of the counter array (what gets shipped to remote sites)."""
        return self._counters.copy()

    def load_snapshot(self, counters: np.ndarray) -> None:
        """Replace state with a received snapshot (remote-filter table)."""
        arr = np.asarray(counters, dtype=np.int32)
        if arr.shape != self._counters.shape:
            raise SummaryError("snapshot shape mismatch")
        self._counters = arr.copy()
        self.items = -1  # unknown: the snapshot does not carry it

    def checkpoint_state(self) -> dict:
        """Exact snapshot for repro.recovery (unlike :meth:`snapshot`,
        carries ``items``/``saturations`` so restore is an identity)."""
        from repro.recovery.checkpoint import encode_array

        return {
            "counters": encode_array(self._counters),
            "items": self.items,
            "saturations": self.saturations,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state` on a same-shape filter."""
        from repro.recovery.checkpoint import decode_array

        counters = decode_array(state["counters"])
        if counters.shape != self._counters.shape:
            raise SummaryError("checkpoint shape mismatch")
        self._counters = counters
        self.items = int(state["items"])
        self.saturations = int(state["saturations"])

    def serialized_entries(self, counters_per_entry: int = 40) -> int:
        """Summary entries on the wire (4-bit counters, 20-byte entries)."""
        return max(1, math.ceil(self.num_counters / counters_per_entry))
