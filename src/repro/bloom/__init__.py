"""Bloom filters (standard and counting).

Re-implementation of the summaries behind the paper's BLOOM baseline
(Broder & Mitzenmacher [5]): each node maintains a *counting* Bloom filter
of the joining attributes in its window (counters support the deletions a
sliding window needs), ships it to remote sites, and remote sites test
arriving tuples for membership before forwarding.
"""

from repro.bloom.counting import CountingBloomFilter
from repro.bloom.standard import BloomFilter, optimal_num_hashes

__all__ = ["BloomFilter", "CountingBloomFilter", "optimal_num_hashes"]
