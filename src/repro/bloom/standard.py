"""Standard (bit) Bloom filter.

Membership testing with no false negatives and a tunable false-positive
rate.  Hash positions come from the classic double-hashing scheme
``position_i = (h1 + i * h2) mod m`` (Kirsch & Mitzenmacher), with h1/h2
drawn from an explicit 4-wise independent family so runs are deterministic
under a seed.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

from repro._rng import ensure_rng
from repro.errors import SummaryError
from repro.sketches.hashing import FourWiseHashFamily


def optimal_num_hashes(num_bits: int, expected_items: int) -> int:
    """The k minimizing false positives: ``(m/n) ln 2``, at least 1."""
    if num_bits < 1 or expected_items < 1:
        raise SummaryError("num_bits and expected_items must be >= 1")
    return max(1, round(num_bits / expected_items * math.log(2)))


class BloomFilter:
    """Fixed-size bit-array Bloom filter."""

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        hashes: Optional[FourWiseHashFamily] = None,
        rng=None,
    ) -> None:
        if num_bits < 1:
            raise SummaryError("num_bits must be >= 1")
        if num_hashes < 1:
            raise SummaryError("num_hashes must be >= 1")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        # Two hash rows feed double hashing for any number of probes.
        self._hashes = hashes if hashes is not None else FourWiseHashFamily(
            2, rng=ensure_rng(rng)
        )
        if self._hashes.rows < 2:
            raise SummaryError("double hashing needs a 2-row hash family")
        self._bits = np.zeros(num_bits, dtype=bool)
        self.items_added = 0

    def spawn_compatible(self) -> "BloomFilter":
        """Empty filter sharing this filter's hash functions."""
        return BloomFilter(self.num_bits, self.num_hashes, hashes=self._hashes)

    def _positions(self, key: int) -> np.ndarray:
        raw = self._hashes.raw(key)
        h1, h2 = int(raw[0]), int(raw[1]) | 1  # odd step hits all positions
        probes = (h1 + np.arange(self.num_hashes, dtype=np.int64) * h2) % self.num_bits
        return probes

    def add(self, key: int) -> None:
        self._bits[self._positions(key)] = True
        self.items_added += 1

    def update(self, keys: Iterable[int]) -> None:
        for key in keys:
            self.add(key)

    def __contains__(self, key: int) -> bool:
        return bool(self._bits[self._positions(key)].all())

    def fill_ratio(self) -> float:
        """Fraction of set bits (the false-positive driver)."""
        return float(self._bits.mean())

    def false_positive_rate(self) -> float:
        """Estimated FP probability from the current fill ratio."""
        return self.fill_ratio() ** self.num_hashes

    def serialized_entries(self, bits_per_entry: int = 160) -> int:
        """Summary entries this filter occupies on the wire.

        Entries are the common summary currency (one entry = one
        20-byte = 160-bit coefficient slot), so all algorithms' summaries
        can be sized identically as Section 6 requires.
        """
        return max(1, math.ceil(self.num_bits / bits_per_entry))
