"""Knobs for the checkpoint/restart recovery subsystem.

Everything is timed on the *simulated* clock and validated up front, in
the same style as :class:`~repro.net.reliable.ReliabilitySettings`.  The
master switch defaults off: a run without recovery is bit-for-bit the
pre-recovery simulator (crashed sites stay silent and lose their
arrivals, exactly as :mod:`repro.core.node` documents).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoverySettings:
    """Checkpoint cadence and rejoin-protocol timers."""

    enabled: bool = False
    """Master switch.  Off (the default) keeps legacy crash semantics:
    a crashed site loses its local arrivals outright and resumes silent
    with whatever state it had."""

    checkpoint_interval_s: float = 1.0
    """Simulated seconds between durable per-node state snapshots."""

    restore_delay_s: float = 0.05
    """Time to load the latest checkpoint from durable storage after the
    outage ends (models local disk read + deserialization)."""

    catchup_timeout_s: float = 2.0
    """Maximum time spent in CATCHING_UP waiting for peer state
    transfers; on expiry the node goes LIVE *degraded* (its remote
    summaries refill only through the normal broadcast cadence)."""

    transfer_timeout_s: float = 0.4
    """Initial deadline for one peer's STATE_TRANSFER response before
    the request is retried."""

    transfer_backoff: float = 2.0
    """Timeout multiplier per consecutive state-transfer retry."""

    max_transfer_retries: int = 3
    """State-transfer request retries per peer before giving up on it."""

    replay_log_capacity: int = 65_536
    """Arrivals logged locally during an outage for replay at rejoin;
    beyond this the oldest logged arrivals are dropped (counted)."""

    delta_state_transfer: bool = True
    """Resync via watermark deltas: a rejoining node tells each peer
    which summary versions its checkpoint restored (with content
    digests), and the peer ships only what changed since -- falling
    back to the full snapshot when its history no longer covers the
    claimed version.  Off reproduces PR 5's full-snapshot transfers
    byte for byte."""

    delta_history_limit: int = 64
    """Past snapshot versions each serving node keeps per summary slot
    for delta computation; claims older than the ring trigger the
    full-snapshot fallback."""

    def validate(self) -> None:
        if self.checkpoint_interval_s <= 0:
            raise ConfigurationError("checkpoint_interval_s must be positive")
        if self.restore_delay_s < 0:
            raise ConfigurationError("restore_delay_s must be non-negative")
        if self.catchup_timeout_s <= 0:
            raise ConfigurationError("catchup_timeout_s must be positive")
        if self.transfer_timeout_s <= 0:
            raise ConfigurationError("transfer_timeout_s must be positive")
        if self.transfer_backoff < 1.0:
            raise ConfigurationError("transfer_backoff must be >= 1")
        if self.max_transfer_retries < 0:
            raise ConfigurationError("max_transfer_retries must be non-negative")
        if self.replay_log_capacity < 1:
            raise ConfigurationError("replay_log_capacity must be >= 1")
        if self.delta_history_limit < 1:
            raise ConfigurationError("delta_history_limit must be >= 1")
