"""The explicit rejoin state machine.

One machine per node tracks where that node stands in the recovery
protocol::

    LIVE --crash--> DOWN --restart--> RESTORING --restored--> CATCHING_UP
                                                                |      |
                                                     synced ----+      +---- timeout
                                                       v                       v
                                                      LIVE              LIVE (degraded)

A crash in *any* up phase returns to DOWN (a node can die again while it
is still rejoining).  Every other trigger is only legal from exactly one
phase; anything else raises :class:`~repro.errors.SimulationError`,
because an out-of-order trigger means the coordination logic in the node
or the system scheduler is broken -- not a condition to paper over.

The machine is pure bookkeeping: it holds no timers and sends no
messages (the node owns those), which is what makes its transition table
unit-testable in isolation.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple


class RecoveryPhase(enum.Enum):
    """Where a node stands in the crash/rejoin protocol."""

    LIVE = "live"
    DOWN = "down"
    RESTORING = "restoring"
    CATCHING_UP = "catching_up"


_TRANSITIONS: Dict[Tuple[RecoveryPhase, str], RecoveryPhase] = {
    (RecoveryPhase.LIVE, "crash"): RecoveryPhase.DOWN,
    (RecoveryPhase.RESTORING, "crash"): RecoveryPhase.DOWN,
    (RecoveryPhase.CATCHING_UP, "crash"): RecoveryPhase.DOWN,
    (RecoveryPhase.DOWN, "restart"): RecoveryPhase.RESTORING,
    (RecoveryPhase.RESTORING, "restored"): RecoveryPhase.CATCHING_UP,
    (RecoveryPhase.CATCHING_UP, "synced"): RecoveryPhase.LIVE,
    (RecoveryPhase.CATCHING_UP, "timeout"): RecoveryPhase.LIVE,
}

TRIGGERS: Tuple[str, ...] = ("crash", "restart", "restored", "synced", "timeout")
"""Every trigger the machine understands, in protocol order."""


class RecoveryMachine:
    """Transition table, degraded flag, and rejoin-latency bookkeeping."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.phase = RecoveryPhase.LIVE
        self.degraded = False
        """Whether the last rejoin timed out before every peer resynced
        (the node is serving, but on summaries it refilled the slow way)."""

        self.history: List[Tuple[float, str, RecoveryPhase]] = []
        """Every applied transition: (time, trigger, resulting phase)."""

        self._restart_at: Optional[float] = None
        self.rejoin_latencies: List[float] = []
        """Per completed rejoin: seconds from restart to (re-)LIVE."""

    def can_apply(self, trigger: str) -> bool:
        """Whether ``trigger`` is legal in the current phase."""
        return (self.phase, trigger) in _TRANSITIONS

    def apply(self, trigger: str, now: float) -> RecoveryPhase:
        """Fire one transition; raises on anything the table forbids."""
        from repro.errors import SimulationError

        key = (self.phase, trigger)
        if key not in _TRANSITIONS:
            raise SimulationError(
                "node %d: recovery trigger %r is invalid in phase %s"
                % (self.node_id, trigger, self.phase.value)
            )
        self.phase = _TRANSITIONS[key]
        self.history.append((now, trigger, self.phase))
        if trigger == "crash":
            self._restart_at = None
        elif trigger == "restart":
            self._restart_at = now
        elif trigger in ("synced", "timeout"):
            self.degraded = trigger == "timeout"
            if self._restart_at is not None:
                self.rejoin_latencies.append(now - self._restart_at)
                self._restart_at = None
        return self.phase

    @property
    def is_live(self) -> bool:
        return self.phase is RecoveryPhase.LIVE

    @property
    def is_serving(self) -> bool:
        """Whether the node processes work (LIVE or CATCHING_UP)."""
        return self.phase in (RecoveryPhase.LIVE, RecoveryPhase.CATCHING_UP)

    def counters(self) -> Dict[str, float]:
        counters: Dict[str, float] = {
            "transitions": float(len(self.history)),
            "rejoins_completed": float(len(self.rejoin_latencies)),
        }
        if self.rejoin_latencies:
            counters["rejoin_latency_mean_s"] = sum(self.rejoin_latencies) / len(
                self.rejoin_latencies
            )
            counters["rejoin_latency_max_s"] = max(self.rejoin_latencies)
        return counters
