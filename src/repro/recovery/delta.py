"""Watermark-delta codec for peer state transfer.

PR 5's anti-entropy resync ships *full* per-query summary snapshots to a
rejoining node.  On large windows the snapshot dominates resync traffic,
yet the rejoining node restored most of that state from its checkpoint
moments ago -- only the entries that changed since the checkpoint
watermark actually need the wire.  This module provides the pieces the
node-level protocol (``JoinProcessingNode._process_state_transfer``)
composes:

* a canonical, bit-exact payload encoding (:func:`encode_payload` /
  :func:`decode_payload`) shared by checkpoints and digests;
* :func:`payload_digest`, the content fingerprint a requester sends so
  the serving peer can verify they agree on the base state byte for
  byte before shipping a delta;
* a versioned delta codec (:func:`encode_delta` / :func:`apply_delta`)
  with the contract ``apply_delta(base, encode_delta(base, target))``
  reproduces ``target`` *bit for bit* -- comparisons are bitwise, so
  ``-0.0`` vs ``0.0`` and NaN payloads round-trip exactly;
* :func:`delta_wire_entries`, the honest wire cost of a delta in the
  simulator's 20-byte summary-entry unit (never above the full
  snapshot's cost);
* :class:`SummaryHistory`, the serving side's bounded ring of past
  snapshot versions -- a requester whose watermark fell off the ring
  gets the full-snapshot fallback.

Everything is deterministic: no randomness, sorted iteration orders,
and sha256 digests over the canonical encoding.
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.net.message import SUMMARY_COEFFICIENT_BYTES

DELTA_FORMAT_VERSION = 1
"""Bump on any change to the delta blob layout; apply refuses mismatches."""

_INDEX_BYTES = 4
"""Wire cost of one changed-cell index / removed-key reference."""


# ----------------------------------------------------------------------
# canonical payload encoding (shared by checkpoints and digests)
# ----------------------------------------------------------------------


def _pack_complex(value: complex) -> str:
    return struct.pack("<dd", value.real, value.imag).hex()


def _unpack_complex(encoded: str) -> complex:
    real, imag = struct.unpack("<dd", bytes.fromhex(encoded))
    return complex(real, imag)


def encode_payload(payload: Any) -> List[object]:
    """JSON-safe, canonical, bit-exact encoding of a summary payload.

    Supports the two remote-state shapes the policies keep: numpy
    counter arrays (Bloom, sketch) and ``{bin: complex}`` coefficient
    maps (DFT).  Map entries are sorted by key so the encoding -- and
    therefore :func:`payload_digest` -- is independent of dict insertion
    order.
    """
    if isinstance(payload, np.ndarray):
        from repro.recovery.checkpoint import encode_array

        return ["array", encode_array(payload)]
    if isinstance(payload, dict):
        return [
            "map",
            [[int(key), _pack_complex(complex(payload[key]))] for key in sorted(payload)],
        ]
    raise ConfigurationError(
        "cannot encode summary payload of type %s" % type(payload).__name__
    )


def decode_payload(encoded: List[object]) -> Any:
    """Inverse of :func:`encode_payload`."""
    if not isinstance(encoded, (list, tuple)) or len(encoded) != 2:
        raise ConfigurationError("malformed encoded summary payload %r" % (encoded,))
    kind, body = encoded
    if kind == "array":
        from repro.recovery.checkpoint import decode_array

        return decode_array(body)
    if kind == "map":
        return {int(key): _unpack_complex(value) for key, value in body}
    raise ConfigurationError("unknown encoded summary payload kind %r" % (kind,))


def payload_digest(payload: Any) -> str:
    """Content fingerprint of a payload over its canonical encoding.

    Truncated sha256 (16 bytes, hex): enough to make an accidental
    collision between two summary states a non-event, short enough that
    a handful of digests ride a request without modeling cost.
    """
    canonical = json.dumps(
        encode_payload(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:32]


# ----------------------------------------------------------------------
# delta codec
# ----------------------------------------------------------------------


def _bitwise_changed(base: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Flat indices of cells whose *bytes* differ (not value equality:
    ``-0.0 == 0.0`` and ``NaN != NaN`` would both corrupt bit-exactness)."""
    flat_base = np.ascontiguousarray(base).reshape(-1)
    flat_target = np.ascontiguousarray(target).reshape(-1)
    if flat_base.size == 0:
        return np.zeros(0, dtype=np.int64)
    base_bytes = flat_base.view(np.uint8).reshape(flat_base.size, flat_base.itemsize)
    target_bytes = flat_target.view(np.uint8).reshape(
        flat_target.size, flat_target.itemsize
    )
    return np.flatnonzero((base_bytes != target_bytes).any(axis=1))


def encode_delta(base: Any, target: Any) -> Optional[Dict[str, object]]:
    """Encode the change from ``base`` to ``target``; ``None`` when the
    two states are not delta-compatible (different types, dtypes, or
    shapes) and the caller must ship the full snapshot instead."""
    if isinstance(base, np.ndarray) and isinstance(target, np.ndarray):
        if base.dtype != target.dtype or base.shape != target.shape:
            return None
        changed = _bitwise_changed(base, target)
        values = np.ascontiguousarray(target).reshape(-1)[changed]
        return {
            "version": DELTA_FORMAT_VERSION,
            "kind": "array",
            "dtype": str(target.dtype),
            "shape": list(target.shape),
            "changed": [int(index) for index in changed],
            "values": values.tobytes().hex(),
        }
    if isinstance(base, dict) and isinstance(target, dict):
        changed = []
        for key in sorted(target):
            packed = _pack_complex(complex(target[key]))
            if key not in base or _pack_complex(complex(base[key])) != packed:
                changed.append([int(key), packed])
        removed = sorted(int(key) for key in base if key not in target)
        return {
            "version": DELTA_FORMAT_VERSION,
            "kind": "map",
            "changed": changed,
            "removed": removed,
        }
    return None


def apply_delta(base: Any, blob: Dict[str, object]) -> Any:
    """Reconstruct the target state: ``apply_delta(b, encode_delta(b, t))``
    equals ``t`` bit for bit.  Raises :class:`ConfigurationError` on an
    unknown blob version/kind or a base that does not match the blob."""
    version = blob.get("version")
    if version != DELTA_FORMAT_VERSION:
        raise ConfigurationError(
            "state-transfer delta version %r does not match runtime version %d"
            % (version, DELTA_FORMAT_VERSION)
        )
    kind = blob.get("kind")
    if kind == "array":
        if not isinstance(base, np.ndarray):
            raise ConfigurationError("array delta applied to non-array base")
        if str(base.dtype) != blob["dtype"] or list(base.shape) != list(blob["shape"]):
            raise ConfigurationError(
                "array delta (%s%r) does not match base (%s%r)"
                % (blob["dtype"], tuple(blob["shape"]), base.dtype, base.shape)
            )
        result = np.ascontiguousarray(base).reshape(-1).copy()
        changed = np.asarray(blob["changed"], dtype=np.int64)
        if changed.size:
            values = np.frombuffer(bytes.fromhex(blob["values"]), dtype=result.dtype)
            result[changed] = values
        return result.reshape(tuple(blob["shape"]))
    if kind == "map":
        if not isinstance(base, dict):
            raise ConfigurationError("map delta applied to non-map base")
        merged = dict(base)
        for key in blob["removed"]:
            merged.pop(int(key), None)
        for key, packed in blob["changed"]:
            merged[int(key)] = _unpack_complex(packed)
        return {key: merged[key] for key in sorted(merged)}
    raise ConfigurationError("unknown state-transfer delta kind %r" % (kind,))


def delta_wire_entries(blob: Dict[str, object], full_entries: int) -> int:
    """Honest wire size of a delta, in 20-byte summary entries.

    Arrays ship a changed-cell presence bitmap (one bit per cell) plus
    the changed cells at their pro-rata share of the full snapshot's
    wire bytes; maps ship changed coefficients as ordinary 20-byte
    entries plus 4-byte removed-key references.  Clamped to the full
    snapshot's cost: a delta never models *more* bytes than simply
    resending everything, because a real implementation would do exactly
    that instead.
    """
    if blob["kind"] == "array":
        total_cells = 1
        for extent in blob["shape"]:
            total_cells *= int(extent)
        if total_cells == 0 or full_entries == 0:
            return 0
        bytes_per_cell = full_entries * SUMMARY_COEFFICIENT_BYTES / total_cells
        wire_bytes = math.ceil(total_cells / 8.0) + len(blob["changed"]) * bytes_per_cell
    elif blob["kind"] == "map":
        wire_bytes = (
            len(blob["changed"]) * SUMMARY_COEFFICIENT_BYTES
            + len(blob["removed"]) * _INDEX_BYTES
        )
    else:
        raise ConfigurationError("unknown state-transfer delta kind %r" % blob["kind"])
    entries = int(math.ceil(wire_bytes / float(SUMMARY_COEFFICIENT_BYTES)))
    return min(full_entries, entries)


# ----------------------------------------------------------------------
# serving-side snapshot history
# ----------------------------------------------------------------------


class SummaryHistory:
    """Bounded ring of past snapshot payloads, keyed by version.

    Recorded by the :class:`~repro.core.summaries.SummaryOutbox` at
    broadcast time, consulted when serving a delta state transfer: a
    requester claiming version ``v`` gets a delta against the recorded
    view at ``v`` -- provided the ring still holds it *and* the digest
    matches.  Only full-state numpy snapshots (Bloom filters, sketch
    counters) are recorded; DFT coefficient maps are incremental merges
    whose receiver-side state depends on which broadcasts were actually
    delivered, so they always resync via full snapshots.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError("summary history limit must be >= 1")
        self.limit = limit
        self._views: Dict[Tuple[str, object], "OrderedDict[int, np.ndarray]"] = {}

    def record(self, update) -> None:
        """Remember one outgoing update's payload, if it is a snapshot."""
        if not update.full_state or not isinstance(update.payload, np.ndarray):
            return
        slot = self._views.setdefault((update.algorithm, update.stream), OrderedDict())
        slot[update.version] = update.payload
        slot.move_to_end(update.version)
        while len(slot) > self.limit:
            slot.popitem(last=False)

    def view(self, algorithm: str, stream, version: int) -> Optional[np.ndarray]:
        """The recorded payload at ``version``, or ``None`` if truncated."""
        slot = self._views.get((algorithm, stream))
        if slot is None:
            return None
        return slot.get(version)

    def clear(self) -> None:
        """Forget everything (a restarted node is a fresh incarnation:
        its version counter rolled back to the checkpoint, so stale
        views could collide with re-used version numbers)."""
        self._views.clear()
