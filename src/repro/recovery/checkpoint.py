"""Versioned, deterministic, byte-stable checkpoint blobs.

A checkpoint is a plain nested dictionary of JSON-safe values.  Numpy
arrays are encoded as ``{"dtype", "shape", "data"}`` with the raw buffer
hex-dumped, so restoring reproduces the array *bit for bit* (no float
round trip through decimal).  The blob is the canonical sorted-keys JSON
encoding of that dictionary -- the same state always produces the same
bytes, which is what the rerun-identity tests pin.

The codec knows nothing about policies or nodes; components expose
``checkpoint_state()`` / ``restore_state()`` pairs that speak plain
dictionaries, and :meth:`repro.core.node.JoinProcessingNode.take_checkpoint`
assembles them into one blob per node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.streams.tuples import StreamId, StreamTuple

CHECKPOINT_VERSION = 2
"""Bump on any change to the blob layout; restore refuses mismatches.

Version 2 added the per-query ``remote`` section: the freshest remote
summaries known at checkpoint time, which the watermark-delta state
transfer uses as the resync base (see :mod:`repro.recovery.delta`).
"""


def encode_array(array: np.ndarray) -> Dict[str, object]:
    """Bit-exact, JSON-safe encoding of a numpy array."""
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.tobytes().hex(),
    }


def decode_array(payload: Dict[str, object]) -> np.ndarray:
    """Inverse of :func:`encode_array` (returns a fresh writable array)."""
    flat = np.frombuffer(
        bytes.fromhex(payload["data"]), dtype=np.dtype(payload["dtype"])
    )
    return flat.reshape(tuple(payload["shape"])).copy()


def encode_tuple(item: StreamTuple) -> List[object]:
    """Positional, JSON-safe encoding of one stream tuple."""
    return [
        item.stream.value,
        item.key,
        item.origin_node,
        item.arrival_index,
        item.payload,
        item.tuple_id,
        item.timestamp,
        item.query_id,
    ]


def decode_tuple(payload: List[object]) -> StreamTuple:
    """Inverse of :func:`encode_tuple` (preserves the tuple identity)."""
    return StreamTuple(
        stream=StreamId(payload[0]),
        key=payload[1],
        origin_node=payload[2],
        arrival_index=payload[3],
        payload=payload[4],
        tuple_id=payload[5],
        timestamp=payload[6],
        query_id=payload[7],
    )


def window_state(window) -> Dict[str, object]:
    """Checkpoint one :class:`~repro.streams.window.SlidingWindow`."""
    state: Dict[str, object] = {
        "tuples": [encode_tuple(item) for item in window],
        "total_appended": window.total_appended,
    }
    resets = getattr(window, "resets", None)
    if resets is not None:
        state["resets"] = resets
    return state


def restore_window(window, state: Dict[str, object]) -> None:
    """Inverse of :func:`window_state` onto an identically-built window."""
    window.restore(
        [decode_tuple(item) for item in state["tuples"]],
        int(state["total_appended"]),
    )
    if "resets" in state:
        window.resets = int(state["resets"])


def encode_blob(state: Dict[str, object]) -> bytes:
    """The canonical byte encoding: compact sorted-keys JSON."""
    return json.dumps(state, sort_keys=True, separators=(",", ":")).encode("ascii")


def decode_blob(blob: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_blob`, checking the format version."""
    state = json.loads(blob.decode("ascii"))
    version = state.get("version")
    if version != CHECKPOINT_VERSION:
        raise SimulationError(
            "checkpoint version %r does not match runtime version %d"
            % (version, CHECKPOINT_VERSION)
        )
    return state


@dataclass(frozen=True)
class Checkpoint:
    """One durable per-node snapshot: the blob plus its watermark."""

    node_id: int
    taken_at: float
    blob: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.blob)

    def state(self) -> Dict[str, object]:
        return decode_blob(self.blob)


class CheckpointStore:
    """The simulated durable store: latest checkpoint per node.

    Only the newest snapshot is retained (the protocol never reads
    older ones), but the cumulative byte count of every write is kept --
    that is the checkpoint I/O cost the experiments report.
    """

    def __init__(self) -> None:
        self._latest: Dict[int, Checkpoint] = {}
        self.checkpoints_taken = 0
        self.bytes_written = 0

    def save(self, node_id: int, taken_at: float, blob: bytes) -> Checkpoint:
        checkpoint = Checkpoint(node_id=node_id, taken_at=taken_at, blob=blob)
        self._latest[node_id] = checkpoint
        self.checkpoints_taken += 1
        self.bytes_written += len(blob)
        return checkpoint

    def latest(self, node_id: int) -> Optional[Checkpoint]:
        return self._latest.get(node_id)
