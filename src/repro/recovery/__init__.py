"""Checkpoint/restart recovery: crashed nodes rejoin instead of dying.

Three pieces, composed by the node and the system:

* :mod:`repro.recovery.settings` -- the knobs
  (:class:`RecoverySettings`), off by default;
* :mod:`repro.recovery.checkpoint` -- the deterministic, byte-stable
  blob codec and the simulated durable store;
* :mod:`repro.recovery.machine` -- the explicit
  DOWN -> RESTORING -> CATCHING_UP -> LIVE rejoin state machine;
* :mod:`repro.recovery.delta` -- the watermark-delta state-transfer
  codec (ship only what changed since the restored checkpoint).

See ``docs/recovery.md`` for the protocol walkthrough.
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointStore,
    decode_array,
    decode_blob,
    decode_tuple,
    encode_array,
    encode_blob,
    encode_tuple,
    restore_window,
    window_state,
)
from repro.recovery.delta import (
    DELTA_FORMAT_VERSION,
    SummaryHistory,
    apply_delta,
    decode_payload,
    delta_wire_entries,
    encode_delta,
    encode_payload,
    payload_digest,
)
from repro.recovery.machine import TRIGGERS, RecoveryMachine, RecoveryPhase
from repro.recovery.settings import RecoverySettings

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "DELTA_FORMAT_VERSION",
    "RecoveryMachine",
    "RecoveryPhase",
    "RecoverySettings",
    "SummaryHistory",
    "TRIGGERS",
    "apply_delta",
    "decode_array",
    "decode_blob",
    "decode_payload",
    "decode_tuple",
    "delta_wire_entries",
    "encode_array",
    "encode_blob",
    "encode_delta",
    "encode_payload",
    "encode_tuple",
    "payload_digest",
    "restore_window",
    "window_state",
]
