"""Deterministic random-number plumbing.

All stochastic components of the library accept an explicit
:class:`numpy.random.Generator`.  Experiments create one *root* generator
from a seed and derive independent child generators for each component
(stream generators, network latency, forwarding decisions, ...) with
:func:`spawn`.  Children are derived with ``Generator.spawn`` when available
and via ``SeedSequence`` otherwise, so results are reproducible bit-for-bit
for a given seed regardless of call ordering between components.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` produces a generator seeded from fresh OS entropy, an ``int``
    seeds a new generator, and an existing generator is returned unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    try:
        return list(rng.spawn(count))
    except AttributeError:  # numpy < 1.25: spawn via the bit generator's seed seq
        seed_seq = rng.bit_generator._seed_seq  # noqa: SLF001 - numpy-sanctioned
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def child(rng: np.random.Generator) -> np.random.Generator:
    """Derive a single child generator (convenience over :func:`spawn`)."""
    return spawn(rng, 1)[0]
