"""Command-line interface: run one distributed-join experiment.

Usage::

    python -m repro --algorithm DFTT --nodes 8 --workload ZIPF \
        --tuples 8000 --window 512 --kappa 64 --seed 7

Prints the headline metrics (epsilon, messages per result tuple,
throughput, overhead) and, with ``--verbose``, the per-node diagnostics.

The figure/table reproductions are reachable both directly
(``python -m repro.experiments.report``, ``python -m
repro.experiments.chaos``) and through the ``experiments`` subcommand::

    python -m repro experiments report smoke --only fig9
    python -m repro experiments chaos smoke --fault-grid "clean; storm@loss=0.4"

Both sweep CLIs accept ``--jobs N`` (or ``REPRO_JOBS``) to fan cells
over pool workers and ``--no-cache`` / ``--cache-dir`` to control the
run-result cache; output is byte-identical at any jobs/cache setting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WindowKind,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.flow import FlowSettings
from repro.core.system import DistributedJoinSystem
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate distributed stream joins (ICDCS 2007 reproduction)",
    )
    parser.add_argument(
        "--algorithm",
        default="DFTT",
        choices=[a.value for a in Algorithm],
        help="forwarding algorithm (default: DFTT)",
    )
    parser.add_argument("--nodes", type=int, default=6, help="number of nodes")
    parser.add_argument("--window", type=int, default=256, help="window size (tuples)")
    parser.add_argument(
        "--window-seconds",
        type=float,
        default=0.0,
        help="use time-based windows of this many simulated seconds",
    )
    parser.add_argument(
        "--workload",
        default="ZIPF",
        choices=[w.value for w in WorkloadKind],
        help="workload kind (default: ZIPF)",
    )
    parser.add_argument("--tuples", type=int, default=6000, help="total tuples")
    parser.add_argument("--domain", type=int, default=4096, help="key domain size")
    parser.add_argument("--alpha", type=float, default=0.4, help="Zipf skew")
    parser.add_argument("--rate", type=float, default=250.0, help="arrivals per second")
    parser.add_argument("--kappa", type=float, default=16.0, help="compression factor")
    parser.add_argument(
        "--budget",
        type=float,
        default=0.0,
        help="flow budget T_i override (default: log2 N)",
    )
    parser.add_argument("--skew", type=float, default=0.85, help="geographic skew")
    parser.add_argument("--loss", type=float, default=0.0, help="message loss rate")
    parser.add_argument(
        "--fault-plan",
        default="",
        metavar="PLAN",
        help="fault schedule: a JSON file, a spec file, or an inline spec "
        "like 'partition@t=10s,d=5s' or 'crash@t=8,d=2,node=1;loss@t=12,d=3,p=0.4'",
    )
    parser.add_argument(
        "--reliable",
        action="store_true",
        help="enable the control-plane ARQ, heartbeats, and graceful degradation",
    )
    parser.add_argument(
        "--retransmit-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="initial ack deadline for reliable control messages (implies --reliable)",
    )
    parser.add_argument(
        "--staleness-budget",
        type=float,
        default=-1.0,
        metavar="SECONDS",
        help="max tolerated summary age before degradation, 0 to disable "
        "(implies --reliable)",
    )
    parser.add_argument(
        "--degradation",
        default="",
        choices=["", "broadcast", "suppress"],
        help="what to do with tuples for stale/suspected peers (implies --reliable)",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="enable checkpoint/restart recovery: restartable crashes "
        "(crash@...,downtime=D) rejoin via snapshot restore, arrival "
        "replay, and peer state transfer (implies --reliable)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="simulated seconds between durable per-node checkpoints "
        "(implies --recovery; default 1.0)",
    )
    parser.add_argument(
        "--no-delta-transfer",
        action="store_true",
        help="resync rejoining nodes with full snapshots instead of "
        "watermark deltas (the pre-delta state-transfer protocol)",
    )
    parser.add_argument(
        "--overload",
        action="store_true",
        help="enable overload protection: bounded service queues, the "
        "NORMAL/THROTTLED/SHEDDING degradation ladder, and deterministic "
        "priority-ordered load shedding",
    )
    parser.add_argument(
        "--queue-bound",
        type=int,
        default=0,
        metavar="N",
        help="hard per-node service-queue bound in work items "
        "(implies --overload; default 64)",
    )
    parser.add_argument(
        "--link-backlog-bound",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="shed messages once a link's send backlog exceeds this many "
        "seconds of serialization (implies --overload; 0 = unbounded)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the telemetry subsystem (metrics, events, traces)",
    )
    parser.add_argument(
        "--telemetry-export",
        default="",
        metavar="DIR",
        help="write all telemetry export formats (JSONL, Chrome trace, "
        "Prometheus text, CSV, manifest) into DIR (implies --telemetry)",
    )
    parser.add_argument(
        "--telemetry-sample",
        type=float,
        default=None,
        metavar="SECONDS",
        help="registry sampling interval in simulated seconds "
        "(implies --telemetry; default 1.0)",
    )
    parser.add_argument(
        "--dashboard",
        action="store_true",
        help="render the ASCII live dashboard to stderr during the run "
        "(implies --telemetry)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition the simulated nodes across N worker processes "
        "with conservative time synchronization; results are "
        "byte-identical to serial (REPRO_SHARDS; 0 = serial)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument("--verbose", action="store_true", help="per-node diagnostics")
    parser.add_argument(
        "--profile",
        type=int,
        default=0,
        metavar="N",
        help="profile the run: per-kernel wall/CPU accounting plus the "
        "top-N cProfile entries by cumulative time (0 disables)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> SystemConfig:
    """Translate parsed CLI arguments into a :class:`SystemConfig`."""
    from repro.net.faults import FaultPlan, load_fault_plan
    from repro.net.link import LinkSpec
    from repro.net.reliable import ReliabilitySettings
    import dataclasses
    import math

    from repro.errors import ConfigurationError

    if args.retransmit_timeout < 0:
        raise ConfigurationError("--retransmit-timeout must be positive")
    window_kind = WindowKind.TIME if args.window_seconds > 0 else WindowKind.COUNT
    faults = (
        load_fault_plan(args.fault_plan, args.nodes)
        if args.fault_plan
        else FaultPlan()
    )
    from repro.recovery import RecoverySettings

    recovery_on = args.recovery or args.checkpoint_interval > 0
    recovery_overrides = {"enabled": True}
    if args.checkpoint_interval > 0:
        recovery_overrides["checkpoint_interval_s"] = args.checkpoint_interval
    if args.no_delta_transfer:
        recovery_overrides["delta_state_transfer"] = False
    recovery = (
        dataclasses.replace(RecoverySettings(), **recovery_overrides)
        if recovery_on
        else RecoverySettings()
    )
    reliable = (
        args.reliable
        or args.retransmit_timeout > 0
        or args.staleness_budget >= 0
        or bool(args.degradation)
        or recovery_on
    )
    overrides = {"enabled": True}
    if args.retransmit_timeout > 0:
        overrides["retransmit_timeout_s"] = args.retransmit_timeout
    if args.staleness_budget >= 0:
        overrides["staleness_budget_s"] = args.staleness_budget
    if args.degradation:
        overrides["degradation_mode"] = args.degradation
    reliability = (
        dataclasses.replace(ReliabilitySettings(), **overrides)
        if reliable
        else ReliabilitySettings()
    )
    from repro.overload import OverloadSettings

    if args.queue_bound < 0:
        raise ConfigurationError("--queue-bound must be positive")
    if args.link_backlog_bound < 0:
        raise ConfigurationError("--link-backlog-bound must be non-negative")
    overload_on = (
        args.overload or args.queue_bound > 0 or args.link_backlog_bound > 0
    )
    if not overload_on:
        overload = OverloadSettings()
    elif args.queue_bound > 0:
        # Watermarks scale with the bound so --queue-bound alone always
        # yields a valid hysteresis ladder.
        overload = OverloadSettings.for_queue_bound(
            args.queue_bound, link_backlog_bound_s=args.link_backlog_bound
        )
    else:
        overload = dataclasses.replace(
            OverloadSettings(),
            enabled=True,
            link_backlog_bound_s=args.link_backlog_bound,
        )
    from repro.telemetry import TelemetrySettings

    telemetry_on = (
        args.telemetry
        or bool(args.telemetry_export)
        or args.telemetry_sample is not None
        or args.dashboard
    )
    telemetry_overrides = {"enabled": True, "dashboard": args.dashboard}
    if args.telemetry_sample is not None:
        # An explicit bad value (0, negative) flows through to
        # TelemetrySettings.validate() and exits 2 like any config error.
        telemetry_overrides["sample_interval_s"] = args.telemetry_sample
    telemetry = (
        dataclasses.replace(TelemetrySettings(), **telemetry_overrides)
        if telemetry_on
        else TelemetrySettings()
    )
    return SystemConfig(
        num_nodes=args.nodes,
        window_size=args.window,
        window_kind=window_kind,
        window_seconds=args.window_seconds,
        policy=PolicyConfig(
            algorithm=Algorithm(args.algorithm),
            kappa=args.kappa,
            flow=FlowSettings(budget_override=args.budget),
        ),
        workload=WorkloadConfig(
            kind=WorkloadKind(args.workload),
            total_tuples=args.tuples,
            domain=args.domain,
            alpha=args.alpha,
            arrival_rate=args.rate,
            skew=args.skew,
        ),
        link=LinkSpec(
            bandwidth_bps=math.inf,
            loss_probability=args.loss,
        ),
        reliability=reliability,
        faults=faults,
        telemetry=telemetry,
        recovery=recovery,
        overload=overload,
        seed=args.seed,
    )


EXPERIMENT_COMMANDS = ("chaos", "report")


def experiments_main(argv: Sequence[str]) -> int:
    """Dispatch ``repro experiments <name> ...`` to the harness CLIs."""
    help_requested = bool(argv) and argv[0] in ("-h", "--help")
    if not argv or help_requested:
        print(
            "usage: repro experiments {%s} [args...]\n\n"
            "  chaos   accuracy-vs-failure-rate sweep under injected faults\n"
            "  report  every table/figure reproduction in one run\n\n"
            "both accept --jobs N (parallel workers; REPRO_JOBS), --shards N\n"
            "(sharded engine per cell; REPRO_SHARDS), --no-cache, and\n"
            "--cache-dir DIR (run-result cache; REPRO_CACHE_DIR)"
            % ",".join(EXPERIMENT_COMMANDS),
            file=sys.stdout if help_requested else sys.stderr,
        )
        return 0 if help_requested else 2
    name, rest = argv[0], list(argv[1:])
    if name == "chaos":
        from repro.experiments.chaos import main as chaos_main

        return chaos_main(rest)
    if name == "report":
        from repro.experiments.report import main as report_main

        return report_main(rest)
    print(
        "error: unknown experiment command %r (choose from %s)"
        % (name, ", ".join(EXPERIMENT_COMMANDS)),
        file=sys.stderr,
    )
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "experiments":
        return experiments_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    profile_report = ""
    profiler = None
    try:
        from repro.engine import resolve_shards

        shards = resolve_shards(args.shards)
        if shards > 1 and args.dashboard:
            # The dashboard renders one process's live state; keep
            # telemetry on but fall back to the post-run exports.
            print(
                "warning: --dashboard needs the serial engine; "
                "disabled under --shards %d" % shards,
                file=sys.stderr,
            )
            args.telemetry = True
            args.dashboard = False
        config = config_from_args(args)
        config.validate()
        if args.profile > 0:
            from repro.profiling import KernelProfiler

            profiler = KernelProfiler()
        system = DistributedJoinSystem(config, profiler=profiler, shards=shards)
        stream_writer = None
        if shards > 1 and args.telemetry_export:
            # Worker-side events never pass through parent sinks; the
            # merged ring is exported wholesale after the run instead
            # (byte-identical to the streamed file up to ring capacity).
            pass
        elif args.telemetry_export and system.telemetry is not None:
            # The JSONL log is streamed during the run (the manifest is a
            # pure function of the configuration, so it can head the file
            # before the first event); export_all below skips it.
            from pathlib import Path

            from repro.telemetry import (
                EXPORT_FILENAMES,
                JsonlStreamWriter,
                build_manifest,
            )

            directory = Path(args.telemetry_export)
            directory.mkdir(parents=True, exist_ok=True)
            stream_writer = JsonlStreamWriter(
                directory / EXPORT_FILENAMES["jsonl"],
                manifest=build_manifest(config),
            )
            system.telemetry.add_event_sink(stream_writer.on_event)
        try:
            if args.profile > 0:
                from repro.profiling import profile_call

                result, profile_report = profile_call(system.run, top=args.profile)
            else:
                result = system.run()
        finally:
            if stream_writer is not None:
                stream_writer.close()
        export_paths = {}
        if args.telemetry_export:
            from repro.telemetry import export_all

            export_paths = export_all(
                system.telemetry,
                args.telemetry_export,
                manifest=result.manifest,
                profiler=profiler,
                skip=("jsonl",) if stream_writer is not None else (),
            )
            if stream_writer is not None:
                export_paths["jsonl"] = stream_writer.path
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    if args.json:
        payload = {
            "config": result.config,
            "metrics": result.summary(),
            "messages_by_kind": result.messages_by_kind,
        }
        if result.reliability:
            payload["reliability"] = result.reliability
        if result.faults:
            payload["faults"] = result.faults
        if result.recovery:
            payload["recovery"] = result.recovery
        if result.overload:
            payload["overload"] = result.overload
        if result.profile:
            payload["profile"] = result.profile
        if result.telemetry:
            payload["telemetry"] = result.telemetry
        if export_paths:
            payload["telemetry_exports"] = {
                kind: str(path) for kind, path in sorted(export_paths.items())
            }
        if args.verbose:
            payload["node_diagnostics"] = {
                str(node): diag for node, diag in result.node_diagnostics.items()
            }
        print(json.dumps(payload, indent=2, default=float))
        if profile_report:
            print(profile_report, file=sys.stderr)
        return 0

    print("algorithm        %s" % result.config["algorithm"])
    print("nodes            %s" % result.config["num_nodes"])
    print("workload         %s (%s tuples)" % (
        result.config["workload"], result.config["total_tuples"]))
    print("epsilon          %.4f" % result.epsilon)
    print("exact pairs      %d" % result.truth_pairs)
    print("reported pairs   %d" % result.reported_pairs)
    print("msgs/result      %.3f" % result.messages_per_result_tuple)
    print("msgs/arrival     %.3f" % result.messages_per_arrival)
    print("throughput       %.1f results/s" % result.throughput)
    print("summary overhead %.2f%%" % (100 * result.summary_overhead_fraction))
    print("simulated time   %.1f s" % result.duration_seconds)
    if result.faults:
        print("messages lost    %d (%d to faults)" % (
            result.messages_lost, int(result.faults.get("messages_blocked", 0))))
    elif result.messages_lost:
        print("messages lost    %d" % result.messages_lost)
    if result.reliability:
        print("retransmits      %d (%d delivery failures)" % (
            result.retransmits, int(result.reliability.get("delivery_failures", 0))))
        print("failures seen    %d (%d recoveries)" % (
            result.failures_detected, int(result.reliability.get("recoveries", 0))))
    if result.recovery:
        print("checkpoints      %d (%d bytes durable)" % (
            int(result.recovery.get("checkpoints_taken", 0)),
            int(result.recovery.get("checkpoint_bytes", 0))))
        print("restarts         %d (%d arrivals replayed, %d clean / %d degraded rejoins)" % (
            int(result.recovery.get("restarts", 0)),
            int(result.recovery.get("tuples_replayed", 0)),
            int(result.recovery.get("rejoins_clean", 0)),
            int(result.recovery.get("rejoins_degraded", 0))))
        if result.recovery.get("rejoin_latency_mean_s"):
            print("rejoin latency   %.3f s mean, %.3f s max" % (
                result.recovery.get("rejoin_latency_mean_s", 0.0),
                result.recovery.get("rejoin_latency_max_s", 0.0)))
        if result.recovery.get("state_transfer_bytes"):
            print("state transfer   %d bytes (%d saved by deltas, %d fallbacks)" % (
                int(result.recovery.get("state_transfer_bytes", 0)),
                int(result.recovery.get("state_transfer_bytes_saved", 0)),
                int(result.recovery.get("state_transfer_fallbacks", 0))))
    if result.overload:
        print("overload shed    %d tuples, %d messages (%d at links)" % (
            int(result.overload.get("shed_tuples", 0)),
            int(result.overload.get("shed_messages", 0)),
            int(result.overload.get("link_messages_shed", 0))))
        print("degradation      %d transitions, %.2f s throttled, %.2f s shedding" % (
            int(result.overload.get("mode_transitions", 0)),
            result.overload.get("throttled_seconds", 0.0),
            result.overload.get("shedding_seconds", 0.0)))
    if result.telemetry:
        print("telemetry        %d events, %d samples, %d instruments" % (
            int(result.telemetry.get("events_emitted", 0)),
            int(result.telemetry.get("samples_taken", 0)),
            int(result.telemetry.get("instruments", 0))))
    for kind in sorted(export_paths):
        print("exported %-8s %s" % (kind, export_paths[kind]))
    if args.verbose:
        for node, diagnostics in sorted(result.node_diagnostics.items()):
            print("node %d:" % node)
            for key, value in sorted(diagnostics.items()):
                print("  %-28s %g" % (key, value))
    if profiler is not None:
        print()
        print(profiler.format())
        print()
        print(profile_report, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
