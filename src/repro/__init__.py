"""repro: approximate data stream joins in distributed systems.

A from-scratch reproduction of Kriakov, Delis & Kollios (ICDCS 2007):
sliding-window equijoins over streams partitioned across N nodes, with
inter-node communication throttled per node-pair using statistics derived
from incrementally-updated DFTs of the joining attributes.

Quickstart::

    from repro import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
    from repro import run_experiment

    config = SystemConfig(
        num_nodes=6,
        window_size=256,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=16),
        workload=WorkloadConfig(total_tuples=5_000),
        seed=7,
    )
    result = run_experiment(config)
    print(result.epsilon, result.messages_per_result_tuple)

The packages underneath are usable on their own: :mod:`repro.dft`
(sliding DFTs, reconstruction), :mod:`repro.sketches` (AGMS),
:mod:`repro.bloom` (counting Bloom filters), :mod:`repro.net` (the
discrete-event WAN), :mod:`repro.streams` (workloads and windows), and
:mod:`repro.experiments` (the per-figure harnesses).
"""

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.flow import FlowController, FlowSettings
from repro.core.correlation import SimilarityMeasure
from repro.core.results import RunResult
from repro.core.system import DistributedJoinSystem, run_experiment
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    ReproError,
    SimulationError,
    SummaryError,
    WindowError,
)
from repro.telemetry.settings import TelemetrySettings

__version__ = "1.0.0"

__all__ = [
    "Algorithm",
    "PolicyConfig",
    "SystemConfig",
    "WorkloadConfig",
    "WorkloadKind",
    "SimilarityMeasure",
    "FlowController",
    "FlowSettings",
    "RunResult",
    "TelemetrySettings",
    "DistributedJoinSystem",
    "run_experiment",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SummaryError",
    "WindowError",
    "CalibrationError",
    "__version__",
]
