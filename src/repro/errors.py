"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment or system was configured with inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class WindowError(ReproError):
    """A sliding-window operation violated the window's invariants."""


class SummaryError(ReproError):
    """A stream summary (DFT / sketch / Bloom filter) was misused."""


class CalibrationError(ReproError):
    """An operating-point calibration search failed to converge."""
