"""The process-pool experiment runner.

Experiment cells are independent, seed-deterministic simulations -- the
shared-nothing shape that fans out perfectly.  :func:`run_many` takes a
list of :class:`RunRequest` cells, dispatches the uncached ones over a
``ProcessPoolExecutor`` (spawn context, ``REPRO_*`` environment
propagated to every worker), and merges results back **in submission
order**, so every downstream artifact -- figure rows, chaos tables,
golden JSON, regression gates -- is byte-identical to the serial path.

Three invariants make parallel == serial == cached:

* a run is a pure function of its config (no wall clock, no hostname,
  no process id ever enters a :class:`~repro.core.results.RunResult`);
* every cell starts from clean global state -- :func:`execute_cell`
  resets the tuple-id sequence and asserts both it and RNG construction
  are fresh, extending the per-run reset to subprocess workers;
* results are ordered by submission index, never completion order.

``--jobs`` resolution: an explicit positive value wins, else the
``REPRO_JOBS`` environment variable, else 1 (serial, the default --
``jobs=1`` never touches multiprocessing at all, so existing callers
are bit-for-bit unaffected).

``--shards`` composes with ``--jobs``: each cell may itself run under
the sharded engine (``shards`` worker processes per simulation -- see
:mod:`repro.engine`).  Because sharded execution is byte-identical to
serial, cache keys deliberately ignore the shard count: a cell computed
serially is a cache hit for the same cell at any ``--shards``, and vice
versa.  :func:`clamp_jobs` keeps ``shards x jobs`` within the machine's
CPU count.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.results import RunResult
from repro.errors import ConfigurationError, SimulationError
from repro.parallel.cache import ExtractorSpec, RunCache

Progress = Callable[[str], None]

_simulations = 0


def simulations_run() -> int:
    """Simulations executed *in this process* since the last reset.

    The cache-hit tests pin this: a warm sweep at ``jobs=1`` must leave
    the counter untouched.  Worker processes keep their own counts.
    """
    return _simulations


def reset_simulation_counter() -> None:
    global _simulations
    _simulations = 0


def resolve_jobs(jobs: int = 0) -> int:
    """Worker count: explicit ``jobs`` > ``REPRO_JOBS`` > 1 (serial)."""
    if jobs < 0:
        raise ConfigurationError("jobs must be positive, got %d" % jobs)
    if jobs:
        return jobs
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError("REPRO_JOBS must be an integer, got %r" % raw)
    if value < 1:
        raise ConfigurationError("REPRO_JOBS must be >= 1, got %d" % value)
    return value


def clamp_jobs(jobs: int, shards: int) -> int:
    """Keep ``shards x jobs`` processes within the CPU count.

    Each pool worker running a sharded cell spawns ``shards`` engine
    workers of its own; oversubscribing the machine only adds scheduler
    thrash.  When the product exceeds ``os.cpu_count()``, the pool side
    is clamped (with a warning) -- shards win because they change the
    latency of every cell, jobs only the throughput of the sweep.
    """
    if shards <= 1 or jobs <= 1:
        return jobs
    cpus = os.cpu_count() or 1
    if shards * jobs <= cpus:
        return jobs
    clamped = max(1, cpus // shards)
    print(
        "warning: clamping --jobs %d to %d (%d shards x %d jobs would "
        "oversubscribe %d CPUs)" % (jobs, clamped, shards, jobs, cpus),
        file=sys.stderr,
    )
    return clamped


@dataclass(frozen=True)
class RunRequest:
    """One cell of a sweep.

    ``extractors`` name values that must be read off the *live* system
    (e.g. the chaos sweep's worst-case-mode residency, reconstructed
    from telemetry events) as ``(name, "module:function")`` pairs; the
    string form crosses the process boundary where a closure cannot.
    Each function is called as ``fn(system, result)`` and must return a
    picklable value.
    """

    config: SystemConfig
    extractors: ExtractorSpec = ()
    label: str = ""
    shards: int = 0
    """Shard count for the cell's own engine (0 = resolve from
    ``REPRO_SHARDS``, 1 = serial).  Never part of the cache key --
    sharded runs are byte-identical to serial."""


@dataclass(frozen=True)
class RunOutcome:
    """One cell's result plus its extracted extras."""

    result: RunResult
    extras: Dict[str, object] = field(default_factory=dict)
    cached: bool = False


def _resolve_extractor(ref: str):
    module_name, _, attribute = ref.partition(":")
    if not module_name or not attribute:
        raise ConfigurationError(
            "extractor ref %r must look like 'module:function'" % ref
        )
    target = import_module(module_name)
    for part in attribute.split("."):
        target = getattr(target, part)
    return target


def execute_cell(
    config: SystemConfig, extractors: ExtractorSpec = (), shards: int = 0
) -> Tuple[RunResult, Dict[str, object]]:
    """Run one simulation from clean global state; the pool entrypoint.

    Serial callers and subprocess workers share this function, so the
    determinism guards run everywhere: the tuple-id sequence is reset
    (and asserted fresh) and RNG construction is asserted to be a pure
    function of the seed.  A cached and a freshly computed cell are then
    equal field for field, and every artifact derived from either is
    byte-identical.

    ``shards`` (explicit or via ``REPRO_SHARDS``) runs the cell under
    the sharded engine.  Sweeps mix mesh sizes, so the count is clamped
    to the cell's node count rather than rejected -- a 2-node cell in a
    ``--shards 4`` sweep simply runs at 2 shards, with identical output.
    """
    from repro._rng import ensure_rng
    from repro.core.system import DistributedJoinSystem
    from repro.engine import resolve_shards
    from repro.streams.tuples import peek_next_tuple_ids, reset_tuple_ids

    global _simulations
    reset_tuple_ids()
    if peek_next_tuple_ids() != 0:
        raise SimulationError(
            "tuple-id sequence did not reset to zero before a cell"
        )
    state_a = ensure_rng(config.seed).bit_generator.state
    state_b = ensure_rng(config.seed).bit_generator.state
    if state_a != state_b:
        raise SimulationError(
            "RNG construction is not a pure function of the seed; "
            "worker state would leak between cells"
        )
    system = DistributedJoinSystem(
        config, shards=min(resolve_shards(shards), config.num_nodes)
    )
    result = system.run()
    _simulations += 1
    extras = {
        name: _resolve_extractor(ref)(system, result)
        for name, ref in extractors
    }
    return result, extras


# -- worker environment ------------------------------------------------


def _repro_env() -> Dict[str, str]:
    return {
        key: value
        for key, value in os.environ.items()
        if key.startswith("REPRO_")
    }


def _worker_init(env: Dict[str, str]) -> None:
    """Mirror the parent's ``REPRO_*`` environment exactly.

    Spawned workers inherit the environment at fork-server/spawn time,
    which can predate parent-side changes (tests monkeypatching
    ``REPRO_NAIVE_KERNELS``, a harness exporting ``REPRO_CACHE_SALT``);
    the initializer re-synchronizes so worker cells resolve the same
    knobs the parent would.
    """
    for key in [key for key in os.environ if key.startswith("REPRO_")]:
        if key not in env:
            del os.environ[key]
    os.environ.update(env)


def _pool(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_worker_init,
        initargs=(_repro_env(),),
    )


# -- the runner --------------------------------------------------------


def run_many(
    requests: Iterable[RunRequest],
    jobs: int = 0,
    cache: Optional[RunCache] = None,
    progress: Optional[Progress] = None,
    shards: int = 0,
) -> List[RunOutcome]:
    """Execute every request; outcomes come back in submission order.

    The cache is consulted (and written) in the parent only: hit/miss
    counters stay complete regardless of ``jobs``, workers never race on
    entry files, and a fully warm sweep dispatches zero work -- it does
    not even build a pool.

    ``shards`` is the default shard count for cells that do not carry
    their own (``RunRequest.shards == 0``); ``shards x jobs`` is clamped
    to the CPU count.  Cache keys ignore shards entirely.
    """
    from repro.engine import resolve_shards

    jobs = resolve_jobs(jobs)
    shards = resolve_shards(shards)
    jobs = clamp_jobs(jobs, shards)
    requests = list(requests)
    outcomes: List[Optional[RunOutcome]] = [None] * len(requests)
    pending: List[Tuple[int, RunRequest, Optional[str]]] = []
    for index, request in enumerate(requests):
        key = None
        if cache is not None:
            key = cache.key_for(request.config, request.extractors)
            entry = cache.lookup(key)
            if entry is not None:
                outcomes[index] = RunOutcome(
                    result=entry["result"],
                    extras=dict(entry.get("extras", {})),
                    cached=True,
                )
                if progress is not None:
                    progress(
                        (request.label or "cell %d" % index) + " [cached]"
                    )
                continue
        pending.append((index, request, key))
    if pending and (jobs == 1 or len(pending) == 1):
        for index, request, key in pending:
            if progress is not None:
                progress(request.label or "cell %d" % index)
            result, extras = execute_cell(
                request.config, request.extractors, request.shards or shards
            )
            outcomes[index] = RunOutcome(result=result, extras=extras)
            if cache is not None:
                cache.store(key, result, extras)
    elif pending:
        with _pool(min(jobs, len(pending))) as pool:
            futures = []
            for index, request, key in pending:
                if progress is not None:
                    progress(request.label or "cell %d" % index)
                futures.append(
                    (
                        index,
                        key,
                        pool.submit(
                            execute_cell,
                            request.config,
                            request.extractors,
                            request.shards or shards,
                        ),
                    )
                )
            for index, key, future in futures:
                result, extras = future.result()
                outcomes[index] = RunOutcome(result=result, extras=extras)
                if cache is not None:
                    cache.store(key, result, extras)
    return outcomes  # type: ignore[return-value]


def run_configs(
    configs: Iterable[SystemConfig],
    jobs: int = 0,
    cache: Optional[RunCache] = None,
    progress: Optional[Progress] = None,
    labels: Optional[Sequence[str]] = None,
    shards: int = 0,
) -> List[RunResult]:
    """Plain config grid -> results, in order (the figure-sweep shape)."""
    configs = list(configs)
    if labels is not None and len(labels) != len(configs):
        raise ConfigurationError(
            "got %d labels for %d configs" % (len(labels), len(configs))
        )
    requests = [
        RunRequest(config=config, label=labels[index] if labels else "")
        for index, config in enumerate(configs)
    ]
    return [
        outcome.result
        for outcome in run_many(
            requests, jobs=jobs, cache=cache, progress=progress, shards=shards
        )
    ]


def cached_run(
    config: SystemConfig, cache: Optional[RunCache] = None
) -> RunResult:
    """One cell through the cache; the calibration probes' runner.

    Keys match :func:`run_many`'s extractor-free requests, so a cell a
    figure sweep computed is reusable by a calibration probe and vice
    versa.
    """
    if cache is None:
        result, _extras = execute_cell(config)
        return result
    key = cache.key_for(config)
    entry = cache.lookup(key)
    if entry is not None:
        return entry["result"]
    result, _extras = execute_cell(config)
    cache.store(key, result, {})
    return result


def map_tasks(
    fn: Callable,
    payloads: Iterable[object],
    jobs: int = 0,
    progress: Optional[Progress] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[object]:
    """Fan a top-level function over payloads; results in order.

    For cells that are more than one simulation (the Figure 9/11
    calibration bisections), ``fn`` must be module-level (spawn pickles
    it by reference) and payloads/returns must be picklable.  ``jobs=1``
    calls ``fn`` inline -- the exact serial code path.
    """
    jobs = resolve_jobs(jobs)
    payloads = list(payloads)
    if labels is not None and len(labels) != len(payloads):
        raise ConfigurationError(
            "got %d labels for %d payloads" % (len(labels), len(payloads))
        )

    def note(index: int) -> None:
        if progress is not None:
            progress(labels[index] if labels else "task %d" % index)

    if jobs == 1 or len(payloads) <= 1:
        results = []
        for index, payload in enumerate(payloads):
            note(index)
            results.append(fn(payload))
        return results
    with _pool(min(jobs, len(payloads))) as pool:
        futures = []
        for index, payload in enumerate(payloads):
            note(index)
            futures.append(pool.submit(fn, payload))
        return [future.result() for future in futures]
