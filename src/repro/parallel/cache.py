"""The on-disk run-result cache.

A run is a pure function of its :class:`~repro.config.SystemConfig`
(see docs/architecture.md, "Determinism"), which makes experiment cells
memoizable: the cache keys each cell by a canonical hash of its fully
resolved configuration and stores the pickled
:class:`~repro.core.results.RunResult` under ``.repro-cache/``.  A sweep
rerun then recomputes only the cells whose configuration -- or whose
*code* -- changed.

Two conventions keep the key honest:

* **Canonical encoding.**  The fingerprint walks the entire config
  dataclass tree (policy, workload, link, faults, reliability,
  telemetry, recovery -- not the flat ``as_dict`` echo) into plain JSON
  types and serializes with sorted keys and fixed separators, the same
  codec discipline :mod:`repro.recovery.checkpoint` uses for its
  byte-stable blobs.
* **Code-version salt.**  ``repro.__version__`` is static between
  releases, so the salt instead hashes every ``.py`` source file in the
  package (plus the kernel mode, since ``REPRO_NAIVE_KERNELS`` changes
  which code runs).  Any source edit therefore invalidates the whole
  cache -- conservative by design: a stale hit would silently mask a
  regression in the golden-pinned sweeps.  ``REPRO_CACHE_SALT`` appends
  an operator-chosen token for manual invalidation.

Cache entries are written atomically (temp file + ``os.replace``) so
concurrent workers and interrupted runs can never leave a torn entry;
anything unreadable is treated as a miss and deleted.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

CACHE_SCHEMA_VERSION = 1
"""Bump when the entry payload layout changes; old entries become misses."""

DEFAULT_CACHE_DIR = ".repro-cache"
"""Where entries live unless ``REPRO_CACHE_DIR`` or ``--cache-dir`` says
otherwise."""

ExtractorSpec = Tuple[Tuple[str, str], ...]
"""``(name, "module:function")`` pairs; part of the key because extras
are stored alongside the result."""


def canonical_value(value: object) -> object:
    """Recursively coerce a config value into plain JSON types.

    Dataclasses become field dicts, enums their values, tuples lists.
    Anything else (a live object, a generator) is a configuration that
    cannot be fingerprinted -- fail loudly rather than hash its repr.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: canonical_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        "cannot fingerprint a %s for the run cache" % type(value).__name__
    )


def canonical_config_dict(config) -> Dict[str, object]:
    """The full config tree as sorted-key-JSON-ready plain types."""
    tree = canonical_value(config)
    if not isinstance(tree, dict):
        raise ConfigurationError("config must be a dataclass, got %r" % (config,))
    return tree


_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file: the cache's code salt.

    Computed once per process.  ``math.inf`` link bandwidths and similar
    are irrelevant here -- this hashes the *source text*, so any edit
    anywhere in the package (kernels, policies, experiments) invalidates
    every cached cell.
    """
    global _code_version
    if _code_version is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _dirnames, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, package_root).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        digest.update(repro.__version__.encode("utf-8"))
        _code_version = digest.hexdigest()
    return _code_version


def config_fingerprint(config, extractors: ExtractorSpec = ()) -> str:
    """The cache key for one cell: sha256 over the canonical payload."""
    from repro.telemetry.manifest import kernel_mode

    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_version(),
        "salt": os.environ.get("REPRO_CACHE_SALT", ""),
        "kernel_mode": kernel_mode(),
        "config": canonical_config_dict(config),
        "extractors": [[name, ref] for name, ref in extractors],
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunCache:
    """Pickled ``(result, extras)`` entries keyed by config fingerprint.

    Counters are per-instance and per-process: the experiment runner
    checks the cache in the *parent* before dispatching work, so a
    sweep's hit/miss tally is complete there regardless of ``--jobs``.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------

    def key_for(self, config, extractors: ExtractorSpec = ()) -> str:
        return config_fingerprint(config, extractors)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".pkl")

    # -- lookup / store ------------------------------------------------

    def lookup(self, key: str) -> Optional[Dict[str, object]]:
        """The stored entry for ``key``, or ``None`` (counted as a miss).

        A torn or stale-format entry is deleted and reported as a miss:
        recomputing a cell is always safe, serving bad bytes never is.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(entry, dict) or "result" not in entry:
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, key: str, result, extras: Dict[str, object]) -> None:
        """Atomically persist one cell (temp file + rename)."""
        path = self._path(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(
                    {"result": result, "extras": dict(extras)},
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.stores += 1

    # -- reporting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def stats_line(self) -> str:
        """The one-line summary the CLIs print (and CI greps)."""
        return "cache hits=%d misses=%d stores=%d dir=%s" % (
            self.hits,
            self.misses,
            self.stores,
            self.directory,
        )

    def write_manifest(self, extra: Optional[Dict[str, object]] = None) -> str:
        """Persist the sweep-level cache manifest next to the entries.

        Cache provenance deliberately lives *here*, not inside
        ``RunResult.manifest`` -- a cached and a fresh result must pickle
        identically, so nothing about how a result was obtained may enter
        the result itself.
        """
        os.makedirs(self.directory, exist_ok=True)
        payload: Dict[str, object] = {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": code_version(),
            "directory": self.directory,
        }
        payload.update(self.stats())
        if extra:
            payload.update(extra)
        path = os.path.join(self.directory, "cache-manifest.json")
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -- crossing process boundaries -----------------------------------

    def spec(self) -> str:
        """A plain-string handle workers rebuild the cache from."""
        return self.directory

    @classmethod
    def from_spec(cls, spec: Optional[str]) -> Optional["RunCache"]:
        return None if spec is None else cls(spec)


def resolve_cache(
    no_cache: bool = False, cache_dir: str = ""
) -> Optional[RunCache]:
    """CLI glue: ``--no-cache`` / ``--cache-dir`` into a cache (or None)."""
    if no_cache:
        return None
    return RunCache(cache_dir or None)
