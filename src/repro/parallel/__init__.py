"""Parallel experiment execution and the deterministic run-result cache.

============================  =========================================
module                        provides
============================  =========================================
:mod:`repro.parallel.pool`    ``run_many`` / ``run_configs`` /
                              ``map_tasks`` -- spawn-context process
                              pool with submission-order merge;
                              ``resolve_jobs`` (``--jobs`` /
                              ``REPRO_JOBS``); ``execute_cell`` with
                              worker-side determinism guards
:mod:`repro.parallel.cache`   ``RunCache`` -- pickled ``RunResult``
                              entries under ``.repro-cache/`` keyed by
                              a canonical config fingerprint plus a
                              code-version salt
============================  =========================================

The contract: for the same requests and seeds, ``jobs=N`` output is
byte-identical to ``jobs=1`` output, and a cached result is
byte-identical to a freshly computed one.  See docs/performance.md,
"Parallel sweeps and the result cache".
"""

from repro.parallel.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    RunCache,
    canonical_config_dict,
    code_version,
    config_fingerprint,
    resolve_cache,
)
from repro.parallel.pool import (
    RunOutcome,
    RunRequest,
    cached_run,
    execute_cell,
    map_tasks,
    reset_simulation_counter,
    clamp_jobs,
    resolve_jobs,
    run_configs,
    run_many,
    simulations_run,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "RunCache",
    "RunOutcome",
    "RunRequest",
    "cached_run",
    "canonical_config_dict",
    "code_version",
    "config_fingerprint",
    "execute_cell",
    "map_tasks",
    "reset_simulation_counter",
    "resolve_cache",
    "clamp_jobs",
    "resolve_jobs",
    "run_configs",
    "run_many",
    "simulations_run",
]
