"""Result-latency tracking.

The motivating applications (arbitrage, intrusion tracking) care how
*quickly* a join result surfaces after the pair physically exists -- i.e.
after its later member arrived somewhere in the system.  The tracker
keeps exact running aggregates (count/mean/max) plus a fixed-size
deterministic sample for percentile estimates, so memory stays O(1)
regardless of result volume and runs stay reproducible.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError

_KNUTH_MULTIPLIER = 2654435761
"""Multiplicative-hash constant; spreads replacement slots deterministically."""


class LatencyTracker:
    """Streaming latency statistics with a bounded sample."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def record(self, latency: float) -> None:
        """Add one latency observation (negative values are clamped to 0;
        they can only arise from floating-point jitter at zero)."""
        value = max(0.0, float(latency))
        self.count += 1
        self.total += value
        self.maximum = max(self.maximum, value)
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            slot = (self.count * _KNUTH_MULTIPLIER) % self.capacity
            self._samples[slot] = value

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) from the retained sample."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must lie in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def merge(self, other: "LatencyTracker") -> None:
        """Fold another tracker's statistics into this one."""
        self.count += other.count
        self.total += other.total
        self.maximum = max(self.maximum, other.maximum)
        for value in other._samples:
            if len(self._samples) < self.capacity:
                self._samples.append(value)
            else:
                slot = (self.count + len(self._samples)) % self.capacity
                self._samples[slot] = value

    def snapshot(self) -> dict:
        """Flat summary for result reporting."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }
