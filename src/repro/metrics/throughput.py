"""Throughput accounting.

The paper measures throughput as "the number of joining tuples reported
per second".  :class:`ThroughputSeries` buckets reported results into
one-second bins of simulated time, from which both the steady-state rate
and the full time series (for saturation analysis) are available.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Tuple


class ThroughputSeries:
    """Per-second result counts over simulated time."""

    def __init__(self) -> None:
        self._buckets: Counter = Counter()
        self.total = 0
        self.last_time = 0.0

    def record(self, time: float, count: int = 1) -> None:
        if count <= 0:
            return
        self._buckets[int(time)] += count
        self.total += count
        self.last_time = max(self.last_time, time)

    def series(self) -> List[Tuple[int, int]]:
        """Sorted ``(second, results)`` pairs (empty seconds omitted)."""
        return sorted(self._buckets.items())

    def mean_rate(self, duration: float) -> float:
        """Results per second over ``duration`` seconds of simulated time."""
        if duration <= 0:
            return 0.0
        return self.total / duration

    def peak_rate(self) -> int:
        """Busiest single second."""
        return max(self._buckets.values()) if self._buckets else 0

    def sustained_rate(self, top_fraction: float = 0.5) -> float:
        """Mean over the busiest ``top_fraction`` of active seconds.

        A saturation-oriented statistic: start-up and drain-down seconds
        do not dilute it.
        """
        if not self._buckets:
            return 0.0
        counts = sorted(self._buckets.values(), reverse=True)
        keep = max(1, int(len(counts) * top_fraction))
        return sum(counts[:keep]) / keep
