"""Metrics: the three axes of Section 6.

* epsilon-error -- fraction of true result tuples not reported (Eq. 1);
* messages per result tuple -- data-plane messages divided by results;
* throughput -- result tuples per simulated second.
"""

from repro.metrics.accounting import ResultCollector
from repro.metrics.error import epsilon_error
from repro.metrics.throughput import ThroughputSeries

__all__ = ["ResultCollector", "epsilon_error", "ThroughputSeries"]
