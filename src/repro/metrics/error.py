"""The epsilon-error of Equation 1.

epsilon = (|Psi| - |Psi_hat|) / |Psi| -- the fraction of the exact
materialized result set the approximate answer failed to report.  The
approximate set is always (a deduplicated subset of) the exact one in this
system, so epsilon lies in [0, 1]; defensive clamping guards the
floating-point edge and the |Psi| = 0 corner (no results to miss means no
error).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def epsilon_error(truth_pairs: int, reported_pairs: int) -> float:
    """Equation 1, clamped into [0, 1]."""
    if truth_pairs < 0 or reported_pairs < 0:
        raise ConfigurationError("pair counts must be non-negative")
    if truth_pairs == 0:
        return 0.0
    missing = truth_pairs - min(reported_pairs, truth_pairs)
    return missing / truth_pairs
