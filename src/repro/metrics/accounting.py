"""Result collection with pair-level deduplication.

The same (r, s) result pair can be discovered at more than one node (the
forwarded copy of r joins at s's node while s's forwarded copy joins at
r's node).  The prototype would deduplicate at the query consumer; here a
set of pair identities does the same so |Psi_hat| counts *distinct*
reported pairs, as Equation 1 requires.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.join.hash_join import JoinResult
from repro.metrics.latency import LatencyTracker
from repro.metrics.throughput import ThroughputSeries


class ResultCollector:
    """System-wide sink for reported join results."""

    def __init__(self) -> None:
        self._pairs: Set[Tuple[int, int]] = set()
        self.duplicates = 0
        self.spurious = 0
        self.raw_reports = 0
        self.throughput = ThroughputSeries()
        self.latency = LatencyTracker()

    def record(self, result: JoinResult, time: float, is_true: bool = True) -> bool:
        """Report one result; returns whether it was new (not a duplicate).

        ``is_true`` comes from the ground-truth oracle: pairs discovered
        through stale shadow copies are outside Psi and must not count
        toward |Psi_hat| (they are tallied as spurious instead).
        """
        self.raw_reports += 1
        if not is_true:
            self.spurious += 1
            return False
        pair = result.pair_id
        if pair in self._pairs:
            self.duplicates += 1
            return False
        self._pairs.add(pair)
        self.throughput.record(time)
        self._record_latency(result, time)
        return True

    def _record_latency(self, result: JoinResult, time: float) -> None:
        """Latency = report time minus the later member's arrival time.

        The pair logically exists the moment its second member arrived;
        everything after that is discovery delay (queueing, forwarding,
        link latency).  Unstamped members (hand-built tests) count as
        zero-latency."""
        stamps = [
            stamp
            for stamp in (result.r_tuple.timestamp, result.s_tuple.timestamp)
            if stamp is not None
        ]
        if not stamps:
            return
        self.latency.record(time - max(stamps))

    @property
    def reported_pairs(self) -> int:
        """|Psi_hat|: distinct result pairs reported."""
        return len(self._pairs)

    def contains(self, r_tuple_id: int, s_tuple_id: int) -> bool:
        return (r_tuple_id, s_tuple_id) in self._pairs


def replay_accounting(ops, oracles, collectors) -> None:
    """Apply deferred accounting operations in canonical order.

    ``ops`` are the nodes' logged operations, tuples of ``(time, node,
    seq, query_id, kind, payload)`` (see
    :meth:`repro.core.node.JoinProcessingNode._log_op`).  They are sorted
    by ``(time, node, seq)`` -- a total order, since ``seq`` is a
    per-node monotone counter -- and applied to the per-query oracles and
    collectors.  Replaying instead of mutating mid-run makes the accuracy
    numbers a pure function of the op multiset, so any execution engine
    that produces the same per-node histories (the sharded engine's
    contract) produces byte-identical accounting.

    Op kinds:

    * ``arrival`` -- ``(item, evicted)``: a local tuple entered its
      window, evicting ``evicted``; feeds the oracle's truth set.
    * ``evict`` -- ``(stream, expired)``: a time-window advance expired
      tuples between arrivals.
    * ``report`` -- ``(results...)``: results a node discovered; the
      collector classifies each against the oracle state *at replay
      position*, which is exactly the oracle state at that simulated
      moment.
    * ``shed`` -- ``(item,)``: overload shedding dropped a local arrival
      before it reached any window; the oracle still charges the pairs
      it would have completed (honest accounting under degradation).
    """
    for op in sorted(ops, key=lambda op: (op[0], op[1], op[2])):
        time, _node, _seq, query_id, kind, payload = op
        oracle = oracles[query_id]
        if kind == "arrival":
            item, evicted = payload
            oracle.observe_arrival(item, list(evicted))
        elif kind == "evict":
            stream, expired = payload
            oracle.observe_evictions(stream, list(expired))
        elif kind == "shed":
            (item,) = payload
            oracle.observe_shed(item)
        elif kind == "report":
            collector = collectors[query_id]
            for result in payload:
                collector.record(result, time, is_true=oracle.validate(result))
        else:  # pragma: no cover - new op kinds must be handled explicitly
            raise ValueError("unknown accounting op kind %r" % (kind,))
