"""Per-kernel profiling: wall/CPU timers and a cProfile convenience.

The hot-path kernels (sliding-DFT maintenance, sketch updates, node
service loops) are cheap enough per call that ad-hoc ``time.time()``
instrumentation drowns in its own overhead.  This module provides:

* :class:`KernelTimer` -- accumulated wall and CPU seconds, call and item
  counts, for one named kernel;
* :class:`KernelProfiler` -- a registry of timers with a context-manager
  :meth:`~KernelProfiler.section` entry point.  A profiler is threaded
  through :class:`~repro.core.system.DistributedJoinSystem` (and from
  there into every node's service loop) when the caller asks for one;
  the default is ``None`` everywhere, so unprofiled runs pay nothing;
* :func:`profile_call` -- run a callable under :mod:`cProfile` and
  render the top-N cumulative entries (the CLI's ``--profile`` flag).

Timer snapshots land in :attr:`repro.core.results.RunResult.profile` so
experiment harnesses (Table 1, the microbenchmarks) can attribute run
time to kernels without re-instrumenting.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


@dataclass
class KernelTimer:
    """Accumulated cost of one named kernel."""

    name: str
    calls: int = 0
    items: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0

    def add(self, wall: float, cpu: float, items: int = 1) -> None:
        self.calls += 1
        self.items += items
        self.wall_seconds += wall
        self.cpu_seconds += cpu

    @property
    def items_per_second(self) -> float:
        """Throughput in items per wall second (0 when nothing ran)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.items / self.wall_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": float(self.calls),
            "items": float(self.items),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "items_per_second": self.items_per_second,
        }


class KernelProfiler:
    """Registry of :class:`KernelTimer` sections.

    The profiler is deliberately not global: callers that want accounting
    construct one and pass it down.  ``section`` nests safely (each
    section measures its own wall/CPU interval; nested sections are
    *inclusive*, like cProfile's cumulative column).
    """

    def __init__(self) -> None:
        self._timers: Dict[str, KernelTimer] = {}

    def timer(self, name: str) -> KernelTimer:
        timer = self._timers.get(name)
        if timer is None:
            timer = KernelTimer(name)
            self._timers[name] = timer
        return timer

    @contextmanager
    def section(self, name: str, items: int = 1) -> Iterator[KernelTimer]:
        """Time one kernel invocation covering ``items`` work units."""
        timer = self.timer(name)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield timer
        finally:
            timer.add(time.perf_counter() - wall0, time.process_time() - cpu0, items)

    def record(self, name: str, wall: float, cpu: float, items: int = 1) -> None:
        """Account an externally-measured interval to ``name``."""
        self.timer(name).add(wall, cpu, items)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-kernel accounting as plain floats (JSON-friendly)."""
        return {name: timer.as_dict() for name, timer in sorted(self._timers.items())}

    def merge(self, other: "KernelProfiler") -> None:
        """Fold another profiler's accounting into this one."""
        for name, timer in other._timers.items():
            mine = self.timer(name)
            mine.calls += timer.calls
            mine.items += timer.items
            mine.wall_seconds += timer.wall_seconds
            mine.cpu_seconds += timer.cpu_seconds

    def format(self) -> str:
        """Fixed-width table of the accumulated sections."""
        lines = [
            "%-28s %10s %12s %12s %12s %14s"
            % ("kernel", "calls", "items", "wall (s)", "cpu (s)", "items/s")
        ]
        for name, timer in sorted(self._timers.items()):
            lines.append(
                "%-28s %10d %12d %12.6f %12.6f %14.1f"
                % (
                    name,
                    timer.calls,
                    timer.items,
                    timer.wall_seconds,
                    timer.cpu_seconds,
                    timer.items_per_second,
                )
            )
        return "\n".join(lines)


@dataclass
class Stopwatch:
    """Paired wall/CPU interval measurement for benchmark loops."""

    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    _wall0: float = field(default=0.0, repr=False)
    _cpu0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0


def profile_call(
    fn: Callable[[], Any], top: int = 20, sort: str = "cumulative"
) -> Tuple[Any, str]:
    """Run ``fn`` under cProfile; return its result and a top-N report."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buffer.getvalue()


def profiler_if(enabled: bool) -> Optional[KernelProfiler]:
    """``KernelProfiler()`` when ``enabled`` else ``None`` (the free path)."""
    return KernelProfiler() if enabled else None
