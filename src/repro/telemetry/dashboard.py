"""ASCII live dashboard: per-node rates and link utilisation mid-run.

Registered as a hub sampler, the dashboard renders one frame every
``dashboard_interval_s`` of *simulated* time: per-node arrival/forward
rates since the previous frame, service-queue depth, link backlog, and
the running traffic split.  Frames are plain sequential text (no cursor
games), so the output works identically on a terminal, piped to a file,
or captured by a test.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, TextIO, Tuple

from repro.telemetry.registry import format_labels

BAR_WIDTH = 20

SPARK_LEVELS = " .:-=+*#%@"
"""Ten ASCII intensity steps, lowest to highest."""

SPARK_WIDTH = 40

SPARK_METRICS = (
    "repro_sched_pending_events",
    "repro_node_queue_depth",
    "repro_link_backlog_seconds",
)
"""Registry series shown as sparklines, in display order."""

SPARK_ROWS = 8


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def sparkline(values, width: int = SPARK_WIDTH) -> str:
    """Render the last ``width`` values as an ASCII intensity strip.

    The strip is scaled to the window's own min/max (a flat series
    renders as all-low), so it shows *shape*, not absolute magnitude --
    the magnitude is printed alongside.
    """
    tail = list(values)[-width:]
    if not tail:
        return ""
    low = min(tail)
    high = max(tail)
    if high <= low:
        return SPARK_LEVELS[0] * len(tail)
    scale = (len(SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        SPARK_LEVELS[int((value - low) * scale)] for value in tail
    )


class AsciiDashboard:
    """Render the live state of a :class:`~repro.core.system.DistributedJoinSystem`."""

    def __init__(self, system, stream: Optional[TextIO] = None) -> None:
        self.system = system
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = system.config.telemetry.dashboard_interval_s
        self.frames_rendered = 0
        self._last_render = 0.0
        self._last_tuples: Dict[int, int] = {}
        self._last_forwards: Dict[int, int] = {}

    # The hub calls this at every sampling tick; frames render at the
    # coarser dashboard cadence.
    def on_sample(self, now: float, registry) -> None:
        if self.frames_rendered and now - self._last_render < self.interval_s:
            return
        self.render(now, registry)

    def render(self, now: float, registry=None) -> None:
        """Write one frame for simulated time ``now``."""
        elapsed = max(now - self._last_render, 1e-9)
        system = self.system
        out: List[str] = []
        out.append("=" * 64)
        out.append(
            "repro dashboard  t=%8.2fs   events=%d  pending=%d"
            % (
                now,
                system.scheduler.events_processed,
                system.scheduler.pending,
            )
        )
        # The mode column appears only when overload protection is on, so
        # legacy (protection-off) frames stay byte-identical.
        show_modes = any(
            node.degradation_ladder is not None for node in system.nodes
        )
        header = "%-5s %9s %9s %6s %9s" % (
            "node",
            "tuples",
            "tuples/s",
            "queue",
            "busy_s",
        )
        if show_modes:
            header += " %-9s" % "mode"
        out.append(header + "  load")
        span = max(now, 1e-9)
        for node in system.nodes:
            previous = self._last_tuples.get(node.node_id, 0)
            rate = (node.tuples_processed - previous) / elapsed
            self._last_tuples[node.node_id] = node.tuples_processed
            row = "%-5d %9d %9.1f %6d %9.2f" % (
                node.node_id,
                node.tuples_processed,
                rate if self.frames_rendered else 0.0,
                node.queue_depth,
                node.busy_seconds,
            )
            if show_modes:
                ladder = node.degradation_ladder
                row += " %-9s" % (ladder.mode.value if ladder is not None else "-")
            out.append(row + "  " + _bar(node.busy_seconds / span))
        links = self._busiest_links(count=5)
        if links:
            out.append("%-9s %9s %11s %9s" % ("link", "msgs", "bytes", "backlog_s"))
            for (source, destination), messages, sent_bytes, backlog in links:
                out.append(
                    "%2d -> %-3d %9d %11d %9.3f"
                    % (source, destination, messages, sent_bytes, backlog)
                )
        stats = system.network.stats
        out.append(
            "traffic: %d msgs, %d bytes (%.1f%% summary), %d lost"
            % (
                stats.total_messages,
                stats.total_bytes,
                100.0 * stats.summary_overhead_fraction(),
                stats.messages_lost,
            )
        )
        dead_letters = sum(
            node.transport.delivery_failures
            for node in system.nodes
            if node.transport is not None
        )
        if dead_letters:
            out.append(
                "dead letters: %d reliable sends exhausted their retries"
                % dead_letters
            )
        machines = [
            node.recovery_machine
            for node in system.nodes
            if node.recovery_machine is not None
        ]
        if machines:
            out.append(
                "recovery: "
                + "  ".join(
                    "%d:%s%s"
                    % (
                        machine.node_id,
                        machine.phase.value,
                        "(degraded)" if machine.degraded else "",
                    )
                    for machine in machines
                )
            )
        out.extend(self._spark_section(registry))
        self.stream.write("\n".join(out) + "\n")
        self._last_render = now
        self.frames_rendered += 1

    def _spark_section(self, registry) -> List[str]:
        """Sparkline strips from the registry's already-sampled series.

        No extra sampling happens here: the hub's regular ticks filled
        each instrument's :class:`~repro.telemetry.registry.TimeSeries`,
        and the dashboard just draws the tail of the ring.
        """
        if registry is None:
            return []
        rows: List[str] = []
        for name in SPARK_METRICS:
            for instrument in registry.instruments():
                if instrument.name != name or instrument.series is None:
                    continue
                if len(instrument.series) < 2:
                    continue
                values = [value for _, value in instrument.series]
                labels = format_labels(instrument.labels)
                rows.append(
                    "%-36s %10.3g |%s|"
                    % (
                        name.replace("repro_", "")
                        + (("{%s}" % labels) if labels else ""),
                        values[-1],
                        sparkline(values),
                    )
                )
                if len(rows) >= SPARK_ROWS:
                    return ["sparklines (series tail, low->high)"] + rows
        if not rows:
            return []
        return ["sparklines (series tail, low->high)"] + rows

    def _busiest_links(
        self, count: int
    ) -> List[Tuple[Tuple[int, int], int, int, float]]:
        rows = [
            (pair, link.messages_sent, link.bytes_sent, link.queue_depth_seconds())
            for pair, link in self.system.network.iter_links()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:count]
