"""ASCII live dashboard: per-node rates and link utilisation mid-run.

Registered as a hub sampler, the dashboard renders one frame every
``dashboard_interval_s`` of *simulated* time: per-node arrival/forward
rates since the previous frame, service-queue depth, link backlog, and
the running traffic split.  Frames are plain sequential text (no cursor
games), so the output works identically on a terminal, piped to a file,
or captured by a test.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, TextIO, Tuple

BAR_WIDTH = 20


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


class AsciiDashboard:
    """Render the live state of a :class:`~repro.core.system.DistributedJoinSystem`."""

    def __init__(self, system, stream: Optional[TextIO] = None) -> None:
        self.system = system
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = system.config.telemetry.dashboard_interval_s
        self.frames_rendered = 0
        self._last_render = 0.0
        self._last_tuples: Dict[int, int] = {}
        self._last_forwards: Dict[int, int] = {}

    # The hub calls this at every sampling tick; frames render at the
    # coarser dashboard cadence.
    def on_sample(self, now: float, registry) -> None:
        if self.frames_rendered and now - self._last_render < self.interval_s:
            return
        self.render(now)

    def render(self, now: float) -> None:
        """Write one frame for simulated time ``now``."""
        elapsed = max(now - self._last_render, 1e-9)
        system = self.system
        out: List[str] = []
        out.append("=" * 64)
        out.append(
            "repro dashboard  t=%8.2fs   events=%d  pending=%d"
            % (
                now,
                system.scheduler.events_processed,
                system.scheduler.pending,
            )
        )
        out.append(
            "%-5s %9s %9s %6s %9s  %s"
            % ("node", "tuples", "tuples/s", "queue", "busy_s", "load")
        )
        span = max(now, 1e-9)
        for node in system.nodes:
            previous = self._last_tuples.get(node.node_id, 0)
            rate = (node.tuples_processed - previous) / elapsed
            self._last_tuples[node.node_id] = node.tuples_processed
            out.append(
                "%-5d %9d %9.1f %6d %9.2f  %s"
                % (
                    node.node_id,
                    node.tuples_processed,
                    rate if self.frames_rendered else 0.0,
                    node.queue_depth,
                    node.busy_seconds,
                    _bar(node.busy_seconds / span),
                )
            )
        links = self._busiest_links(count=5)
        if links:
            out.append("%-9s %9s %11s %9s" % ("link", "msgs", "bytes", "backlog_s"))
            for (source, destination), messages, sent_bytes, backlog in links:
                out.append(
                    "%2d -> %-3d %9d %11d %9.3f"
                    % (source, destination, messages, sent_bytes, backlog)
                )
        stats = system.network.stats
        out.append(
            "traffic: %d msgs, %d bytes (%.1f%% summary), %d lost"
            % (
                stats.total_messages,
                stats.total_bytes,
                100.0 * stats.summary_overhead_fraction(),
                stats.messages_lost,
            )
        )
        dead_letters = sum(
            node.transport.delivery_failures
            for node in system.nodes
            if node.transport is not None
        )
        if dead_letters:
            out.append(
                "dead letters: %d reliable sends exhausted their retries"
                % dead_letters
            )
        machines = [
            node.recovery_machine
            for node in system.nodes
            if node.recovery_machine is not None
        ]
        if machines:
            out.append(
                "recovery: "
                + "  ".join(
                    "%d:%s%s"
                    % (
                        machine.node_id,
                        machine.phase.value,
                        "(degraded)" if machine.degraded else "",
                    )
                    for machine in machines
                )
            )
        self.stream.write("\n".join(out) + "\n")
        self._last_render = now
        self.frames_rendered += 1

    def _busiest_links(
        self, count: int
    ) -> List[Tuple[Tuple[int, int], int, int, float]]:
        rows = [
            (pair, link.messages_sent, link.bytes_sent, link.queue_depth_seconds())
            for pair, link in self.system.network.iter_links()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:count]
