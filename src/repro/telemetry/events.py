"""Structured events, spans, and the hub that collects them.

Instrumented components share one tiny contract, the :class:`Emitter`
protocol: ``emit(name, category=..., node=..., dur_s=..., **attrs)``.
Every call site guards with ``if self.telemetry is not None`` so a run
without telemetry pays a single attribute check per instrumented path --
the same zero-cost convention the kernel profiler established.

The :class:`TelemetryHub` implements the protocol and is the run's
single sink: it timestamps events on the *simulated* clock, keeps them
in a bounded ring, mirrors high-level counts into the
:class:`~repro.telemetry.registry.MetricRegistry`, and owns the sampling
loop the system drives through pre-scheduled scheduler ticks.  Exports
(:mod:`repro.telemetry.exporters`) read only hub state, so everything a
run emits is reproducible from the seed: no wall-clock time, no process
ids, no global message counters ever enter an event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
)

from repro.net.trace import MessageTrace
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.settings import TelemetrySettings


@dataclass
class TelemetryEvent:
    """One structured occurrence on the simulated timeline.

    ``dur_s`` turns the event into a *span* (Chrome-trace complete
    event); ``None`` keeps it instant.  ``attrs`` must stay small and
    JSON-serializable -- exporters write them verbatim.
    """

    seq: int
    time: float
    name: str
    category: str
    node: Optional[int] = None
    dur_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)
    order: Optional[Tuple] = None
    """Causal position ``(event sort key, emission index within that
    event)``.  Never exported; the sharded engine sorts the union of
    shard rings by it to reconstruct the serial emission order."""


class Emitter(Protocol):
    """What an instrumented component needs from telemetry."""

    def emit(
        self,
        name: str,
        category: str,
        node: Optional[int] = None,
        dur_s: Optional[float] = None,
        time: Optional[float] = None,
        **attrs: object,
    ) -> None:  # pragma: no cover - protocol
        ...


Sampler = Callable[[float, MetricRegistry], None]
"""A sampling callback: reads live state into registry instruments."""


class TelemetryHub:
    """The run-wide sink: event ring + registry + sampling loop."""

    def __init__(
        self,
        settings: Optional[TelemetrySettings] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.settings = settings if settings is not None else TelemetrySettings()
        self.settings.validate()
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.registry = MetricRegistry(self.settings.series_capacity)
        self._events: Deque[TelemetryEvent] = deque(
            maxlen=self.settings.event_capacity
        )
        self._sequence = 0
        self.events_emitted = 0
        self.order_source: Optional[Callable[[], Optional[Tuple]]] = None
        """When set (the system wires the scheduler's ``current_key``),
        each event is stamped with the executing scheduler event's sort
        key plus a within-event emission counter.  Construction-time
        emissions (no event executing) get a sentinel that sorts first."""
        self._order_key: Optional[Tuple] = None
        self._order_index = 0
        self._event_sinks: List[Callable[[TelemetryEvent], None]] = []
        self._samplers: List[Sampler] = []
        self._last_sample_time: Optional[float] = None
        self.message_trace: Optional[MessageTrace] = (
            MessageTrace(self.settings.trace_capacity)
            if self.settings.trace_messages
            else None
        )

    # -- clock ---------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock (the system wires the scheduler's)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- events --------------------------------------------------------

    def emit(
        self,
        name: str,
        category: str,
        node: Optional[int] = None,
        dur_s: Optional[float] = None,
        time: Optional[float] = None,
        **attrs: object,
    ) -> None:
        """Record one structured event (see :class:`Emitter`)."""
        order = None
        if self.order_source is not None:
            key = self.order_source()
            if key is None:
                key = (-1.0, 0, 0, 0)
            if key != self._order_key:
                self._order_key = key
                self._order_index = 0
            order = key + (self._order_index,)
            self._order_index += 1
        event = TelemetryEvent(
            seq=self._sequence,
            time=self._clock() if time is None else time,
            name=name,
            category=category,
            node=node,
            dur_s=dur_s,
            attrs=attrs,
            order=order,
        )
        self._sequence += 1
        self.events_emitted += 1
        self._events.append(event)
        for sink in self._event_sinks:
            sink(event)
        self.registry.counter("repro_events_total", category=category).inc()

    def add_event_sink(self, sink: Callable[[TelemetryEvent], None]) -> None:
        """Stream every future event to ``sink`` the moment it is emitted.

        Sinks see *all* events, including ones that later fall off the
        bounded ring -- this is how the incremental JSONL exporter
        (:class:`~repro.telemetry.exporters.JsonlStreamWriter`) escapes
        the ring capacity that bounds the buffered export.  Events already
        buffered are replayed to the sink first, so a sink attached right
        after system construction still opens with the construction-time
        events and its output stays byte-identical to the buffered export
        (exact as long as the ring has not yet overflowed at attach time).
        """
        for event in self._events:
            sink(event)
        self._event_sinks.append(sink)

    def events(self) -> Iterator[TelemetryEvent]:
        """Retained events in emission order."""
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events_dropped(self) -> int:
        """Events that fell off the ring buffer."""
        return self.events_emitted - len(self._events)

    # -- message accounting (the network's fast path) ------------------

    def on_message_send(self, now: float, message) -> None:
        """Account one transmitted message; called by ``Network.send``."""
        kind = message.kind.value
        self.registry.counter("repro_net_messages_total", kind=kind).inc()
        self.registry.counter("repro_net_bytes_total", kind=kind).inc(
            message.size_bytes()
        )
        self.registry.counter(
            "repro_link_messages_total",
            src=message.source,
            dst=message.destination,
        ).inc()
        if self.settings.trace_messages:
            self.emit(
                "net.send",
                category="net",
                node=message.source,
                time=now,
                dst=message.destination,
                kind=kind,
                bytes=message.size_bytes(),
                entries=message.summary_entries,
            )

    def on_message_deliver(self, now: float, message) -> None:
        """Account one delivered message; called at link arrival time."""
        kind = message.kind.value
        self.registry.counter("repro_net_delivered_total", kind=kind).inc()
        if message.created_at is not None:
            self.registry.histogram(
                "repro_net_transit_seconds", kind=kind
            ).observe(now - message.created_at)
        if self.settings.trace_messages:
            self.emit(
                "net.deliver",
                category="net",
                node=message.destination,
                time=now,
                src=message.source,
                kind=kind,
            )

    def on_message_drop(self, now: float, message) -> None:
        """Account one message lost in transit."""
        kind = message.kind.value
        self.registry.counter("repro_net_lost_total", kind=kind).inc()
        if self.settings.trace_messages:
            self.emit(
                "net.drop",
                category="net",
                node=message.source,
                time=now,
                dst=message.destination,
                kind=kind,
            )

    # -- sampling ------------------------------------------------------

    def add_sampler(self, sampler: Sampler) -> None:
        """Register a callback run at every sampling tick."""
        self._samplers.append(sampler)

    def sample_tick(self, now: Optional[float] = None) -> None:
        """One sampling pass: read live state, then snapshot every series.

        Idempotent per simulated instant: sampling is a pure read, so a
        second tick at the same moment (e.g. the end-of-run tick landing
        on the last scheduled one) would only duplicate series points.
        """
        moment = self._clock() if now is None else now
        if self._last_sample_time is not None and moment == self._last_sample_time:
            return
        self._last_sample_time = moment
        for sampler in self._samplers:
            sampler(moment, self.registry)
        self.registry.sample(moment)

    # -- reporting -----------------------------------------------------

    def counts_by_category(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def summary(self) -> Dict[str, float]:
        """Flat totals for :attr:`repro.core.results.RunResult.telemetry`."""
        summary: Dict[str, float] = {
            "events_emitted": float(self.events_emitted),
            "events_retained": float(len(self._events)),
            "events_dropped": float(self.events_dropped),
            "samples_taken": float(self.registry.samples_taken),
            "instruments": float(len(self.registry)),
        }
        for category, count in sorted(self.counts_by_category().items()):
            summary["events_%s" % category] = float(count)
        return summary


def hub_if(enabled: bool, settings: Optional[TelemetrySettings] = None) -> Optional[TelemetryHub]:
    """``TelemetryHub`` when ``enabled`` else ``None`` (the free path)."""
    if not enabled:
        return None
    return TelemetryHub(settings)
