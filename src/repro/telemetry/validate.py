"""Chrome-trace schema validation entry point.

Usage::

    python -m repro.telemetry.validate trace.json [more.json ...]

Exits 0 when every file validates against the Trace Event Format
(see :func:`repro.telemetry.exporters.validate_chrome_trace`), 1 with a
diagnostic on the first violation.  CI runs this over the trace the
telemetry smoke job exports.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.exporters import validate_chrome_trace


def main(argv: Optional[Sequence[str]] = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        print("usage: python -m repro.telemetry.validate TRACE.json ...", file=sys.stderr)
        return 2
    for raw in paths:
        path = Path(raw)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            print("%s: unreadable trace: %s" % (path, error), file=sys.stderr)
            return 1
        try:
            counts = validate_chrome_trace(document)
        except ConfigurationError as error:
            print("%s: INVALID: %s" % (path, error), file=sys.stderr)
            return 1
        total = sum(counts.values())
        summary = ", ".join(
            "%s=%d" % (phase, counts[phase]) for phase in sorted(counts)
        )
        print("%s: OK (%d records: %s)" % (path, total, summary))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
