"""Telemetry configuration.

Telemetry is *off* by default and every knob lives in one frozen
dataclass so a :class:`~repro.config.SystemConfig` can carry it without
the runtime growing per-feature flags.  The settings deliberately bound
every buffer (events, per-series samples, trace records): an always-on
observability layer must not let a long run grow memory without limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TelemetrySettings:
    """Knobs for the :class:`~repro.telemetry.events.TelemetryHub`."""

    enabled: bool = False
    """Master switch.  Disabled, no hub is built and every instrumented
    call site pays exactly one ``is None`` check."""

    sample_interval_s: float = 1.0
    """Simulated seconds between registry sampling ticks (the resolution
    of the ring-buffered time series and the dashboard's refresh floor)."""

    sample_margin_s: float = 5.0
    """Extra sampling horizon past the last scheduled arrival, so the
    drain tail (in-flight messages, retransmits) stays visible."""

    event_capacity: int = 65_536
    """Ring capacity of the structured event log (oldest dropped first)."""

    series_capacity: int = 4_096
    """Ring capacity of each per-instrument time series."""

    adaptive_sampling: bool = True
    """Back off the sampling interval on long runs: when the span would
    need more ticks than ``series_capacity``, the interval is stretched
    by the smallest integer factor that makes the rings cover the whole
    span instead of just its tail.  Runs short enough to fit are
    scheduled exactly as before (byte-identical)."""

    trace_messages: bool = True
    """Emit one structured event per network send/deliver/drop and keep a
    :class:`~repro.net.trace.MessageTrace` view.  The single cardinality
    knob worth turning off on very chatty meshes."""

    trace_capacity: int = 10_000
    """Ring capacity of the message-trace view."""

    dashboard: bool = False
    """Render the ASCII live dashboard during the run (CLI wires the
    output stream; the refresh cadence is ``dashboard_interval_s``)."""

    dashboard_interval_s: float = 5.0
    """Simulated seconds between dashboard frames (rounded up to whole
    sampling ticks)."""

    def validate(self) -> None:
        if self.sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be positive")
        if self.sample_margin_s < 0:
            raise ConfigurationError("sample_margin_s must be non-negative")
        if self.event_capacity < 1:
            raise ConfigurationError("event_capacity must be >= 1")
        if self.series_capacity < 1:
            raise ConfigurationError("series_capacity must be >= 1")
        if self.trace_capacity < 1:
            raise ConfigurationError("trace_capacity must be >= 1")
        if self.dashboard_interval_s <= 0:
            raise ConfigurationError("dashboard_interval_s must be positive")
