"""Telemetry exporters: JSONL, Chrome trace, Prometheus text, CSV.

Four formats, one source of truth (the hub):

* **JSONL** -- the structured event log, one JSON object per line, with
  the run manifest as the first line.  The machine-diffable record.
* **Chrome trace** -- the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto: node service spans on per-node
  tracks, instant events for sends/drops/broadcasts/health flips.
* **Prometheus text** -- a scrape-style dump of every registry counter,
  gauge, and histogram (plus, optionally, wall-clock kernel timings from
  an attached :class:`~repro.profiling.KernelProfiler`).
* **CSV** -- the ring-buffered time series, flat ``time,metric,labels,
  value`` rows, ready for pandas/gnuplot.

Determinism contract: everything except the opt-in profiler section is a
pure function of the simulated run, serialized with sorted keys, so the
same seed produces byte-identical JSONL/CSV/Chrome-trace files.  The
:func:`validate_chrome_trace` checker (also exposed as ``python -m
repro.telemetry.validate``) enforces the Trace Event Format invariants
CI gates on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.events import TelemetryEvent, TelemetryHub
from repro.telemetry.registry import Histogram, format_labels

MICROSECONDS = 1_000_000.0
"""Trace Event Format timestamps are microseconds; ours are seconds."""

GLOBAL_TRACK = "run"
"""Thread name for events with no owning node."""


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------


def _event_payload(event: TelemetryEvent) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "type": "event",
        "seq": event.seq,
        "t": event.time,
        "name": event.name,
        "category": event.category,
    }
    if event.node is not None:
        payload["node"] = event.node
    if event.dur_s is not None:
        payload["dur_s"] = event.dur_s
    if event.attrs:
        payload["attrs"] = event.attrs
    return payload


def export_jsonl(
    hub: TelemetryHub, path: Path, manifest: Optional[Dict[str, object]] = None
) -> Path:
    """Write the event log, manifest first, one JSON object per line."""
    path = Path(path)
    with path.open("w") as handle:
        if manifest is not None:
            handle.write(
                json.dumps({"type": "manifest", "manifest": manifest}, sort_keys=True)
            )
            handle.write("\n")
        for event in hub.events():
            handle.write(json.dumps(_event_payload(event), sort_keys=True))
            handle.write("\n")
    return path


class JsonlStreamWriter:
    """Incremental JSONL event log: each event hits disk as it is emitted.

    :func:`export_jsonl` serializes the hub's bounded ring *after* the
    run, so the log is capped at the ring capacity and nothing is
    durable until the run ends.  The stream writer is the incremental
    path: construct it with the run's manifest (the manifest is a pure
    function of the configuration, so it exists before the first event),
    attach it with ``hub.add_event_sink(writer.on_event)``, and every
    event is appended to the file the moment ``emit`` fires.  For runs
    whose ring never overflowed the bytes are identical to the buffered
    export -- the regression tests pin exactly that equivalence.
    """

    def __init__(
        self, path: Path, manifest: Optional[Dict[str, object]] = None
    ) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w")
        self.events_written = 0
        if manifest is not None:
            self._handle.write(
                json.dumps({"type": "manifest", "manifest": manifest}, sort_keys=True)
            )
            self._handle.write("\n")

    def on_event(self, event: TelemetryEvent) -> None:
        """The hub sink: serialize one event and append it."""
        self._handle.write(json.dumps(_event_payload(event), sort_keys=True))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> Path:
        """Flush and close the log; idempotent."""
        if not self._handle.closed:
            self._handle.close()
        return self.path

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Chrome trace (Trace Event Format)
# ----------------------------------------------------------------------


def chrome_trace_events(hub: TelemetryHub) -> List[Dict[str, object]]:
    """Map hub events onto Trace Event Format records.

    One process (pid 0), one thread per node; events without a node land
    on a dedicated ``run`` track (tid -1).  Events with a duration become
    complete ("X") spans, the rest thread-scoped instants ("i").
    """
    records: List[Dict[str, object]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulated run"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": -1,
            "args": {"name": GLOBAL_TRACK},
        },
    ]
    named_nodes = set()
    for event in hub.events():
        tid = -1 if event.node is None else int(event.node)
        if tid >= 0 and tid not in named_nodes:
            named_nodes.add(tid)
            records.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": "node %d" % tid},
                }
            )
        record: Dict[str, object] = {
            "name": event.name,
            "cat": event.category,
            "pid": 0,
            "tid": tid,
            "ts": event.time * MICROSECONDS,
        }
        if event.dur_s is not None:
            record["ph"] = "X"
            record["dur"] = event.dur_s * MICROSECONDS
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.attrs:
            record["args"] = dict(event.attrs)
        records.append(record)
    return records


def export_chrome_trace(
    hub: TelemetryHub, path: Path, manifest: Optional[Dict[str, object]] = None
) -> Path:
    """Write a ``chrome://tracing`` / Perfetto loadable timeline."""
    path = Path(path)
    document: Dict[str, object] = {
        "traceEvents": chrome_trace_events(hub),
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        document["otherData"] = manifest
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return path


_VALID_PHASES = {"X", "i", "M", "B", "E", "C"}
_INSTANT_SCOPES = {"g", "p", "t"}


def validate_chrome_trace(document: object) -> Dict[str, int]:
    """Check a parsed trace document against the Trace Event Format.

    Returns per-phase counts on success; raises
    :class:`~repro.errors.ConfigurationError` naming the first offending
    record otherwise.  This is the schema gate CI runs on the exported
    trace (``python -m repro.telemetry.validate trace.json``).
    """
    if not isinstance(document, dict):
        raise ConfigurationError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError("trace document needs a 'traceEvents' array")
    counts: Dict[str, int] = {}
    for index, record in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(record, dict):
            raise ConfigurationError("%s is not an object" % where)
        phase = record.get("ph")
        if phase not in _VALID_PHASES:
            raise ConfigurationError("%s has invalid phase %r" % (where, phase))
        if not isinstance(record.get("name"), str) or not record["name"]:
            raise ConfigurationError("%s needs a non-empty 'name'" % where)
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                raise ConfigurationError("%s needs integer %r" % (where, key))
        if phase != "M":
            ts = record.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ConfigurationError(
                    "%s needs a non-negative numeric 'ts'" % where
                )
        if phase == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ConfigurationError(
                    "%s (complete event) needs non-negative 'dur'" % where
                )
        if phase == "i" and record.get("s") not in _INSTANT_SCOPES:
            raise ConfigurationError(
                "%s (instant event) needs scope 's' in %s"
                % (where, sorted(_INSTANT_SCOPES))
            )
        counts[phase] = counts.get(phase, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    body = ",".join('%s="%s"' % (key, value) for key, value in labels)
    return "{%s}" % body


def _prom_number(value: float) -> str:
    if float(value).is_integer():
        return "%d" % int(value)
    return repr(float(value))


def export_prometheus(
    hub: TelemetryHub, path: Path, profiler=None
) -> Path:
    """Write a Prometheus text-format dump of the registry.

    ``profiler`` (a :class:`~repro.profiling.KernelProfiler`) adds
    wall-clock kernel sections as ``repro_kernel_*`` gauges -- useful,
    but wall-clock and therefore excluded from the byte-identical
    determinism contract the other exports honor.
    """
    path = Path(path)
    lines: List[str] = []
    typed: set = set()
    for instrument in hub.registry.instruments():
        name = _prom_name(instrument.name)
        if isinstance(instrument, Histogram):
            if name not in typed:
                typed.add(name)
                lines.append("# TYPE %s histogram" % name)
            cumulative = 0
            for edge, count in zip(instrument.edges, instrument.counts):
                cumulative += count
                labels = instrument.labels + (("le", _prom_number(edge)),)
                lines.append(
                    "%s_bucket%s %d" % (name, _prom_labels(labels), cumulative)
                )
            labels = instrument.labels + (("le", "+Inf"),)
            lines.append(
                "%s_bucket%s %d" % (name, _prom_labels(labels), instrument.count)
            )
            lines.append(
                "%s_sum%s %s"
                % (name, _prom_labels(instrument.labels), _prom_number(instrument.total))
            )
            lines.append(
                "%s_count%s %d"
                % (name, _prom_labels(instrument.labels), instrument.count)
            )
            continue
        if name not in typed:
            typed.add(name)
            lines.append("# TYPE %s %s" % (name, instrument.kind))
        lines.append(
            "%s%s %s"
            % (
                name,
                _prom_labels(instrument.labels),
                _prom_number(instrument.sample_value()),
            )
        )
    if profiler is not None:
        lines.append("# TYPE repro_kernel_wall_seconds gauge")
        for section, timer in sorted(profiler.snapshot().items()):
            labels = ((("kernel", section),))
            lines.append(
                "repro_kernel_wall_seconds%s %s"
                % (_prom_labels(labels), repr(timer["wall_seconds"]))
            )
    path.write_text("\n".join(lines) + "\n")
    return path


# ----------------------------------------------------------------------
# CSV time series
# ----------------------------------------------------------------------


def export_csv(hub: TelemetryHub, path: Path) -> Path:
    """Write the sampled time series as flat CSV rows."""
    path = Path(path)
    lines = ["time_s,metric,labels,value"]
    for metric, labels, time, value in hub.registry.series_rows():
        lines.append("%s,%s,%s,%s" % (repr(time), metric, labels, _prom_number(value)))
    path.write_text("\n".join(lines) + "\n")
    return path


# ----------------------------------------------------------------------
# one-call export
# ----------------------------------------------------------------------

EXPORT_FILENAMES = {
    "jsonl": "events.jsonl",
    "chrome_trace": "trace.json",
    "prometheus": "metrics.prom",
    "csv": "timeseries.csv",
    "manifest": "manifest.json",
}


def export_all(
    hub: TelemetryHub,
    directory: Path,
    manifest: Optional[Dict[str, object]] = None,
    profiler=None,
    skip: Tuple[str, ...] = (),
) -> Dict[str, Path]:
    """Write every format into ``directory``; returns the paths by kind.

    ``skip`` names formats already produced elsewhere -- the CLI streams
    the JSONL log during the run via :class:`JsonlStreamWriter` and
    passes ``skip=("jsonl",)`` so the buffered exporter does not clobber
    the (possibly more complete) streamed file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: Dict[str, Path] = {}
    if "jsonl" not in skip:
        paths["jsonl"] = export_jsonl(
            hub, directory / EXPORT_FILENAMES["jsonl"], manifest=manifest
        )
    if "chrome_trace" not in skip:
        paths["chrome_trace"] = export_chrome_trace(
            hub, directory / EXPORT_FILENAMES["chrome_trace"], manifest=manifest
        )
    if "prometheus" not in skip:
        paths["prometheus"] = export_prometheus(
            hub, directory / EXPORT_FILENAMES["prometheus"], profiler=profiler
        )
    if "csv" not in skip:
        paths["csv"] = export_csv(hub, directory / EXPORT_FILENAMES["csv"])
    if manifest is not None:
        manifest_path = directory / EXPORT_FILENAMES["manifest"]
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        paths["manifest"] = manifest_path
    return paths
