"""The run manifest: what exactly produced this result.

A result without its provenance is half a measurement.  The manifest
pins everything needed to reproduce or audit a run -- configuration
echo, seed, package version, kernel mode, interpreter and numpy
versions -- and is attached to every :class:`~repro.core.results.RunResult`
(telemetry enabled or not; building it costs microseconds).

Determinism contract: the manifest contains no wall-clock timestamps,
hostnames, or process state, so two runs of the same configuration on
the same environment serialize byte-identically -- which is what lets
the JSONL export embed it and still diff clean across runs.
"""

from __future__ import annotations

import os
import platform
from typing import Dict

import numpy as np

MANIFEST_SCHEMA_VERSION = 1


def kernel_mode() -> str:
    """Which hot-path kernels a run uses (the REPRO_NAIVE_KERNELS switch)."""
    return "naive" if os.environ.get("REPRO_NAIVE_KERNELS") else "fast"


def build_manifest(config) -> Dict[str, object]:
    """Assemble the provenance record for one run of ``config``.

    ``config`` is any object with ``as_dict()`` and ``seed`` (duck-typed
    so this module never imports :mod:`repro.config`).
    """
    import repro

    telemetry = getattr(config, "telemetry", None)
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "package": "repro",
        "version": repro.__version__,
        "seed": int(getattr(config, "seed", 0)),
        "kernel_mode": kernel_mode(),
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
        "config": config.as_dict(),
        "telemetry": {
            "enabled": bool(telemetry.enabled),
            "sample_interval_s": telemetry.sample_interval_s,
            "trace_messages": telemetry.trace_messages,
        }
        if telemetry is not None
        else {"enabled": False},
    }
