"""repro.telemetry: unified metrics, tracing, and run manifests.

One observability spine for the whole reproduction, built from four
pieces:

* a :class:`~repro.telemetry.registry.MetricRegistry` of counters,
  gauges, and histograms keyed by node / node-pair / message kind,
  sampled on the *simulated* clock into ring-buffered time series;
* a :class:`~repro.telemetry.events.TelemetryHub` implementing the
  shared :class:`~repro.telemetry.events.Emitter` protocol the
  scheduler, links, nodes, forwarding policies, flow controller, and
  summary managers are instrumented against;
* exporters (:mod:`repro.telemetry.exporters`): JSONL event log,
  Chrome-trace timeline, Prometheus text dump, CSV time series -- all
  byte-identical for a given seed -- plus the run manifest
  (:mod:`repro.telemetry.manifest`) attached to every run result;
* an ASCII live dashboard (:mod:`repro.telemetry.dashboard`) for
  ``python -m repro ... --dashboard``.

Telemetry is off by default; enabling it is one config flag::

    from repro import SystemConfig, run_experiment
    from repro.telemetry import TelemetrySettings

    config = SystemConfig(telemetry=TelemetrySettings(enabled=True))
"""

from repro.telemetry.dashboard import AsciiDashboard
from repro.telemetry.events import Emitter, TelemetryEvent, TelemetryHub, hub_if
from repro.telemetry.exporters import (
    EXPORT_FILENAMES,
    JsonlStreamWriter,
    chrome_trace_events,
    export_all,
    export_chrome_trace,
    export_csv,
    export_jsonl,
    export_prometheus,
    validate_chrome_trace,
)
from repro.telemetry.manifest import build_manifest, kernel_mode
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)
from repro.telemetry.settings import TelemetrySettings

__all__ = [
    "AsciiDashboard",
    "Counter",
    "EXPORT_FILENAMES",
    "Emitter",
    "Gauge",
    "Histogram",
    "JsonlStreamWriter",
    "MetricRegistry",
    "TelemetryEvent",
    "TelemetryHub",
    "TelemetrySettings",
    "TimeSeries",
    "build_manifest",
    "chrome_trace_events",
    "export_all",
    "export_chrome_trace",
    "export_csv",
    "export_jsonl",
    "export_prometheus",
    "hub_if",
    "kernel_mode",
    "validate_chrome_trace",
]
