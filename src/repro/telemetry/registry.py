"""The metrics registry: counters, gauges, histograms, time series.

One registry per run is the single accounting spine the exporters read.
Instruments are keyed by name plus a small label set (``node=3``,
``kind="tuple"``, ``src=0, dst=2``) and are get-or-create: the first
caller defines the instrument, later callers share it.  Call sites on
hot paths cache the instrument handle once and pay one attribute update
per observation.

Time resolution comes from :meth:`MetricRegistry.sample`: at each
sampling tick (driven by the *simulated* clock) every counter and gauge
appends ``(now, value)`` to its bounded ring-buffered
:class:`TimeSeries`.  Sampling cumulative counter values rather than
deltas keeps the series loss-tolerant: a reader can difference any two
retained points even after the ring dropped the early history.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

LabelSet = Tuple[Tuple[str, str], ...]
"""Canonical label form: ``(("node", "3"), ("stream", "R"))`` -- sorted,
stringified, hashable."""


def label_set(labels: Dict[str, object]) -> LabelSet:
    """Canonicalize a label dict (sorted keys, string values)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """Human/CSV form: ``node=3;stream=R`` (empty string for no labels)."""
    return ";".join("%s=%s" % (key, value) for key, value in labels)


class TimeSeries:
    """Bounded ring buffer of ``(time, value)`` samples."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("series capacity must be >= 1")
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self.total_samples = 0

    def append(self, time: float, value: float) -> None:
        self._samples.append((time, value))
        self.total_samples += 1

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self._samples)

    @property
    def dropped(self) -> int:
        """Samples that fell off the ring."""
        return self.total_samples - len(self._samples)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None


class Instrument:
    """Common identity of every registry instrument."""

    kind = "abstract"

    def __init__(self, name: str, labels: LabelSet) -> None:
        self.name = name
        self.labels = labels
        self.series: Optional[TimeSeries] = None

    def sample_value(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Instrument):
    """Monotone accumulated count (messages, broadcasts, events)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def sample_value(self) -> float:
        return self.value


class Gauge(Instrument):
    """Point-in-time level (queue depth, backlog seconds, budget)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def sample_value(self) -> float:
        return self.value


DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


class Histogram(Instrument):
    """Fixed-bucket distribution (service times, fan-outs, sizes).

    ``edges`` are upper bucket bounds; one extra open-ended bucket
    catches the tail.  Cumulative counts are produced at export time
    (Prometheus convention), raw per-bucket counts are kept here.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        edges: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        if not edges or list(edges) != sorted(edges):
            raise ConfigurationError("histogram edges must be sorted and non-empty")
        self.edges = tuple(float(edge) for edge in edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self._total = Fraction(0)
        self.count = 0

    @property
    def total(self) -> float:
        """Sum of observations.

        Accumulated exactly (``Fraction`` of the binary floats), not as
        a running float: float addition is order-sensitive in the last
        ulp, and the sharded engine observes values in per-shard order
        rather than serial order.  Exact accumulation makes the sum
        associative, so the export is byte-identical either way.
        """
        return float(self._total)

    def observe(self, value: float) -> None:
        self.count += 1
        self._total += Fraction(value)
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def sample_value(self) -> float:
        return float(self.count)


class MetricRegistry:
    """Get-or-create instrument store plus the sampling loop."""

    def __init__(self, series_capacity: int = 4_096) -> None:
        if series_capacity < 1:
            raise ConfigurationError("series_capacity must be >= 1")
        self.series_capacity = series_capacity
        self._instruments: Dict[Tuple[str, LabelSet], Instrument] = {}
        self.samples_taken = 0

    # -- creation ------------------------------------------------------

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, label_set(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                "instrument %r already registered as %s" % (name, instrument.kind)
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        edges: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get(Histogram, name, labels, edges=edges)

    # -- introspection -------------------------------------------------

    def instruments(self) -> List[Instrument]:
        """Every instrument, deterministically ordered by (name, labels)."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def get(self, name: str, **labels: object) -> Optional[Instrument]:
        return self._instruments.get((name, label_set(labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    # -- sampling ------------------------------------------------------

    def sample(self, now: float) -> None:
        """Append ``(now, value)`` to every counter/gauge time series.

        Histograms are sampled by observation count; their bucket shape
        lives in the Prometheus export.
        """
        for instrument in self._instruments.values():
            if instrument.series is None:
                instrument.series = TimeSeries(self.series_capacity)
            instrument.series.append(now, instrument.sample_value())
        self.samples_taken += 1

    # -- sharded-engine support ----------------------------------------

    def reset_values(self) -> None:
        """Zero every instrument in place, keeping the objects alive.

        The sharded engine's worker-side reset: every shard replicates
        the construction phase (so per-link RNGs and instrument handles
        line up with serial), then all but the accounting shard wipe the
        replicated counts.  Call sites cache instrument handles, so the
        instruments must be zeroed, never replaced.
        """
        for instrument in self._instruments.values():
            if isinstance(instrument, Histogram):
                instrument.counts = [0] * (len(instrument.edges) + 1)
                instrument._total = Fraction(0)
                instrument.count = 0
            elif isinstance(instrument, (Counter, Gauge)):
                instrument.value = 0.0
            instrument.series = None
        self.samples_taken = 0

    def merge_shard(self, other: "MetricRegistry") -> None:
        """Fold a worker shard's registry into this one.

        All merges are exact, which is what keeps the merged export
        byte-identical to serial: counter/gauge values and histogram
        buckets sum (a frozen replica contributes an exact zero),
        histogram totals add as ``Fraction``, and time series union
        their tick times with per-time sums.  ``samples_taken`` and
        per-series ``total_samples`` take the max, because sampling
        ticks are replicated on every shard rather than partitioned.
        """
        for (name, labels), theirs in other._instruments.items():
            if isinstance(theirs, Histogram):
                mine = self._get(Histogram, name, dict(labels), edges=theirs.edges)
                mine.count += theirs.count
                mine._total += theirs._total
                for index, value in enumerate(theirs.counts):
                    mine.counts[index] += value
            elif isinstance(theirs, Counter):
                mine = self._get(Counter, name, dict(labels))
                mine.value += theirs.value
            elif isinstance(theirs, Gauge):
                mine = self._get(Gauge, name, dict(labels))
                mine.value += theirs.value
            else:  # pragma: no cover - no other instrument kinds exist
                continue
            if theirs.series is not None:
                merged: Dict[float, float] = {}
                kept = 0
                if mine.series is not None:
                    kept = mine.series.total_samples
                    for time, value in mine.series:
                        merged[time] = merged.get(time, 0.0) + value
                for time, value in theirs.series:
                    merged[time] = merged.get(time, 0.0) + value
                series = TimeSeries(self.series_capacity)
                for time in sorted(merged):
                    series.append(time, merged[time])
                series.total_samples = max(kept, theirs.series.total_samples)
                mine.series = series
        self.samples_taken = max(self.samples_taken, other.samples_taken)

    def series_rows(self) -> Iterator[Tuple[str, str, float, float]]:
        """Flat ``(metric, labels, time, value)`` rows for the CSV export."""
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            if instrument.series is None:
                continue
            labels = format_labels(instrument.labels)
            for time, value in instrument.series:
                yield instrument.name, labels, time, value
