"""Tuple reconstruction from compressed DFT coefficients (Section 5.3).

A node transmits W/kappa coefficients of its attribute window; the receiver
rebuilds an estimate of the whole window with the inverse DFT (Equation 10)
and rounds to integers.  If every reconstructed value deviates by less than
0.5 the round-off recovers the original attributes exactly -- the paper's
"lossless compression up to a factor of 256" on stock data.

Equation 10 as printed keeps the *first* W/kappa coefficients and rescales
by kappa.  For a real-valued signal the first K bins and the conjugate
symmetry X[W-k] = conj(X[k]) together determine a real reconstruction, so
this module keeps the K lowest-frequency bins *and* mirrors their
conjugates before inverting (transmitting K complex numbers, reconstructing
from ~2K bins -- strictly more faithful per transmitted byte, and the only
reading under which kappa = 256 is nearly lossless as Figure 5/6 report).
The energy of dropped bins is simply absent, so no kappa rescaling is
required; normalization follows the standard inverse DFT.  A
largest-magnitude retention mode is also provided for rougher signals.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Set, Tuple

import numpy as np

from repro.errors import SummaryError
from repro.dft.sliding import low_frequency_bins


class TruncationMode(enum.Enum):
    """Which coefficients survive compression."""

    LOW_FREQUENCY = "low_frequency"
    """Keep bins 0..K-1 (Equation 10's beta mask).  Best for smooth signals."""

    LARGEST_MAGNITUDE = "largest_magnitude"
    """Keep the K highest-energy bins among the non-redundant half."""


def coefficient_budget(window_size: int, kappa: float) -> int:
    """Number of transmitted coefficients W/kappa (at least 1)."""
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    if kappa < 1:
        raise SummaryError("compression factor must be >= 1")
    return max(1, int(window_size / kappa))


def compress_spectrum(
    spectrum,
    budget: int,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> Dict[int, complex]:
    """Select ``budget`` coefficients of a full spectrum for transmission.

    Only bins in the non-redundant half ``[0, W//2]`` are eligible; their
    conjugate mirrors are reconstructed for free at the receiver.
    """
    full = np.asarray(spectrum, dtype=np.complex128)
    if full.ndim != 1 or full.size == 0:
        raise SummaryError("spectrum must be a non-empty 1-D array")
    if budget < 1:
        raise SummaryError("budget must be >= 1")
    half = full.size // 2 + 1
    if mode is TruncationMode.LOW_FREQUENCY:
        kept = low_frequency_bins(full.size, budget)
    else:
        eligible = np.arange(half)
        order = np.argsort(np.abs(full[eligible]))[::-1]
        kept = np.sort(eligible[order[: min(budget, half)]])
    return {int(k): complex(full[k]) for k in kept}


def expand_spectrum(coefficients: Dict[int, complex], window_size: int) -> np.ndarray:
    """Rebuild a full conjugate-symmetric spectrum from kept coefficients.

    Missing bins are zero; every kept bin ``k`` in ``(0, W/2)`` also fills
    its mirror ``W - k`` with the conjugate, which guarantees a real
    inverse transform.
    """
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    spectrum = np.zeros(window_size, dtype=np.complex128)
    for k, value in coefficients.items():
        if not 0 <= k < window_size:
            raise SummaryError("coefficient index %d outside [0, %d)" % (k, window_size))
        spectrum[k] = value
        mirror = (window_size - k) % window_size
        if mirror != k:
            spectrum[mirror] = np.conj(value)
    return spectrum


def reconstruct_values(
    coefficients: Dict[int, complex],
    window_size: int,
    round_to_int: bool = True,
) -> np.ndarray:
    """Inverse-transform kept coefficients into estimated attribute values.

    Returns an int64 array when ``round_to_int`` (the membership-test path)
    and the raw float estimates otherwise (the error-analysis path).
    """
    spectrum = expand_spectrum(coefficients, window_size)
    estimate = np.fft.ifft(spectrum).real
    if round_to_int:
        return np.rint(estimate).astype(np.int64)
    return estimate


def reconstructed_key_set(
    coefficients: Dict[int, complex], window_size: int
) -> Set[int]:
    """The membership set a receiver tests arriving tuples against."""
    return set(int(v) for v in reconstruct_values(coefficients, window_size))


def reconstruction_squared_errors(
    signal,
    budget: int,
    mode: TruncationMode = TruncationMode.LOW_FREQUENCY,
) -> np.ndarray:
    """Per-position squared reconstruction error (Figure 5's y-axis).

    Compresses ``signal``'s spectrum to ``budget`` coefficients, rebuilds
    the float estimate, and returns ``(x[n] - x_hat[n])**2`` for each n.
    """
    values = np.asarray(signal, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise SummaryError("signal must be a non-empty 1-D array")
    spectrum = np.fft.fft(values)
    kept = compress_spectrum(spectrum, budget, mode)
    estimate = reconstruct_values(kept, values.size, round_to_int=False)
    return (values - estimate) ** 2


def lossless_fraction(signal, budget: int,
                      mode: TruncationMode = TruncationMode.LOW_FREQUENCY) -> float:
    """Fraction of positions recovered exactly after integer round-off.

    A position is recovered when its reconstruction error is below 0.5
    (equivalently its squared error below 0.25 -- the paper's E[MSE] < 0.25
    lossless criterion).
    """
    errors = reconstruction_squared_errors(signal, budget, mode)
    return float(np.mean(errors < 0.25))
