"""Power-spectrum estimation (Section 5.2.1).

Equation 8 reduces the DFT cross-correlation to
``R_XY(u, v) = 2*pi*delta(u - v) * S_xy(u)`` where ``S_xy`` is the cross
power spectrum of the two (wide-sense stationary) attribute signals.  For
finite windows the standard estimator is the cross-periodogram computed
from the two FFTs in O(W) once the transforms exist::

    S_xy(u) = X(u) * conj(Y(u)) / W

which is exactly what the distributed nodes can evaluate from exchanged
coefficients without ever seeing each other's tuples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SummaryError


def _as_spectrum(values) -> np.ndarray:
    spectrum = np.asarray(values, dtype=np.complex128)
    if spectrum.ndim != 1 or spectrum.size == 0:
        raise SummaryError("spectrum must be a non-empty 1-D array")
    return spectrum


def cross_power_spectrum(x_spectrum, y_spectrum) -> np.ndarray:
    """Cross-periodogram ``X(u) conj(Y(u)) / W`` of two aligned spectra."""
    x_arr = _as_spectrum(x_spectrum)
    y_arr = _as_spectrum(y_spectrum)
    if x_arr.size != y_arr.size:
        raise SummaryError(
            "spectra must align: %d vs %d bins" % (x_arr.size, y_arr.size)
        )
    return x_arr * np.conj(y_arr) / x_arr.size


def periodogram(x_spectrum) -> np.ndarray:
    """Auto power spectrum ``|X(u)|^2 / W`` (real, non-negative)."""
    x_arr = _as_spectrum(x_spectrum)
    return (x_arr * np.conj(x_arr)).real / x_arr.size


def cross_correlation_at_zero_lag(x_spectrum, y_spectrum) -> float:
    """Time-domain inner product recovered from spectra (Parseval).

    ``sum_n x[n] y[n] = (1/W) sum_u X(u) conj(Y(u))`` -- the u-sum of the
    cross power spectrum.  Only the real part is meaningful for real
    signals; a tiny imaginary residue from floating point is discarded.
    """
    return float(np.sum(cross_power_spectrum(x_spectrum, y_spectrum)).real)
