"""Recomputation control vector.

Section 4 sets, after Winograd & Nawab [28], a control vector "such that the
arithmetic complexity is reduced by a factor of 10 with a probability for
completion of the DFT approximation greater than 0.95".  The essence of
that trade-off, as the paper uses it, is a *cadence*: incremental updates
are cheap but drift, so the full transform is recomputed every so often
(Section 5.2.1: "at regular intervals, as specified by the control vector,
the DFT is completely recalculated").

:class:`ControlVector` captures both knobs:

* ``reduction_factor`` -- the targeted arithmetic saving of the incremental
  path relative to recomputing from scratch each tuple;
* ``completion_probability`` -- the required probability that, between
  recomputations, the approximate coefficients stay within ``drift_bound``
  of their exact values.

Per-update drift is modeled as a zero-mean random perturbation of magnitude
at most ``unit_roundoff`` per coefficient (the O(1e-16) figure of [4]);
after m updates the accumulated drift is at most ``m * unit_roundoff`` in
the worst case, so the deterministic-safe interval is
``drift_bound / unit_roundoff``.  The interval actually used is the smaller
of that bound and the interval implied by the reduction factor, which keeps
the amortized cost of recomputation at ``1/reduction_factor`` of the
per-tuple full-DFT cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControlVector:
    """Recomputation policy for an incremental DFT."""

    recompute_interval: int
    reduction_factor: float = 10.0
    completion_probability: float = 0.95
    drift_bound: float = 1e-9
    unit_roundoff: float = 1e-16

    def __post_init__(self) -> None:
        if self.recompute_interval < 1:
            raise ConfigurationError("recompute_interval must be >= 1")
        if self.reduction_factor < 1:
            raise ConfigurationError("reduction_factor must be >= 1")
        if not 0 < self.completion_probability < 1:
            raise ConfigurationError("completion_probability must lie in (0, 1)")
        if self.drift_bound <= 0 or self.unit_roundoff <= 0:
            raise ConfigurationError("drift parameters must be positive")

    @classmethod
    def default(cls, window_size: int) -> "ControlVector":
        """The paper's operating point: ~10x arithmetic saving, p >= 0.95.

        Recomputing one FFT of cost ~W log2(W) every ``interval`` updates
        adds an amortized per-tuple cost of ``W log2(W) / interval``
        multiply-adds; choosing ``interval = reduction_factor * log2(W)``
        pins that amortized cost at ``W / reduction_factor`` -- a
        ``reduction_factor``-fold saving over the ~W multiply-adds a
        from-scratch per-tuple evaluation would need.  The drift-safe
        ceiling almost never binds at these scales.
        """
        if window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        reduction = 10.0
        log_term = max(1.0, math.log2(max(window_size, 2)))
        interval = max(1, int(reduction * log_term))
        vector = cls(recompute_interval=interval, reduction_factor=reduction)
        safe = vector.drift_safe_interval()
        if interval > safe:
            vector = cls(recompute_interval=safe, reduction_factor=reduction)
        return vector

    def drift_safe_interval(self) -> int:
        """Largest update count keeping worst-case drift within the bound."""
        return max(1, int(self.drift_bound / self.unit_roundoff))

    def should_recompute(self, updates_since_recompute: int) -> bool:
        """Whether the incremental state must be refreshed now."""
        return updates_since_recompute >= min(
            self.recompute_interval, self.drift_safe_interval()
        )

    def expected_drift(self, updates_since_recompute: int) -> float:
        """RMS drift estimate after the given number of updates.

        Independent zero-mean per-update perturbations accumulate in RMS as
        sqrt(m) * unit_roundoff; this is the quantity compared against the
        drift bound to certify ``completion_probability`` (a one-sided
        Chebyshev bound at p = 0.95 inflates the RMS by sqrt(1/(1-p))).
        """
        rms = math.sqrt(max(updates_since_recompute, 0)) * self.unit_roundoff
        inflation = math.sqrt(1.0 / (1.0 - self.completion_probability))
        return rms * inflation

    def meets_completion_probability(self, updates_since_recompute: int) -> bool:
        """Whether the drift bound holds with the required probability."""
        return self.expected_drift(updates_since_recompute) <= self.drift_bound
