"""Discrete Fourier transform substrate (Section 4, 5.2.1, 5.3).

* :mod:`repro.dft.transform` -- direct (O(W^2)) and FFT-backed DFTs with a
  single shared sign/normalization convention, plus the inverse transform.
* :mod:`repro.dft.sliding` -- the incremental (sliding) DFT: O(1) work per
  tracked coefficient per arriving tuple, with drift accounting and
  periodic full recomputation.
* :mod:`repro.dft.control` -- the recomputation control vector (after
  Winograd & Nawab [28]): trades arithmetic cost against the probability
  that the approximate coefficients stay within a drift bound.
* :mod:`repro.dft.spectrum` -- power-spectrum and cross-power-spectrum
  estimation in O(W) from FFTs (Section 5.2.1).
* :mod:`repro.dft.reconstruction` -- truncated-inverse-DFT reconstruction
  of remote attribute values from W/kappa coefficients (Section 5.3,
  Equation 10), with integer round-off and membership-set extraction.
"""

from repro.dft.control import ControlVector
from repro.dft.goertzel import goertzel_bin, goertzel_bins, goertzel_power
from repro.dft.reconstruction import (
    TruncationMode,
    compress_spectrum,
    expand_spectrum,
    reconstruct_values,
    reconstruction_squared_errors,
)
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.dft.spectrum import cross_power_spectrum, periodogram
from repro.dft.transform import dft, dft_direct, inverse_dft

__all__ = [
    "dft",
    "dft_direct",
    "inverse_dft",
    "SlidingDFT",
    "low_frequency_bins",
    "ControlVector",
    "cross_power_spectrum",
    "periodogram",
    "TruncationMode",
    "compress_spectrum",
    "expand_spectrum",
    "reconstruct_values",
    "reconstruction_squared_errors",
    "goertzel_bin",
    "goertzel_bins",
    "goertzel_power",
]
