"""Forward and inverse discrete Fourier transforms.

Convention (shared by every module in this package)::

    X[k] = sum_{n=0}^{W-1} x[n] * exp(-2j*pi*k*n / W)          (Eq. 2)
    x[n] = (1/W) * sum_{k=0}^{W-1} X[k] * exp(+2j*pi*k*n / W)  (Eq. 3)

i.e. the unnormalized forward transform of numpy.  The paper indexes from 1;
the constant phase shift that difference introduces cancels everywhere the
coefficients are used (correlations, power spectra, reconstruction), so we
keep numpy's 0-based convention.

``dft_direct`` is the O(W^2) textbook evaluation -- it exists as the
independent reference against which the FFT wrapper and the sliding DFT are
property-tested, and as the "expensive full DFT" column of Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SummaryError


def _as_signal(x) -> np.ndarray:
    signal = np.asarray(x, dtype=np.float64)
    if signal.ndim != 1:
        raise SummaryError("DFT input must be one-dimensional")
    if signal.size == 0:
        raise SummaryError("DFT input must be non-empty")
    return signal


def dft_direct(x) -> np.ndarray:
    """O(W^2) direct evaluation of the forward DFT (reference/Table 1).

    Evaluated row by row (one dot product per coefficient) rather than as a
    single W-by-W matrix product, so memory stays O(W) and the arithmetic
    cost is the genuine quadratic cost the paper's Table 1 measures.
    """
    signal = _as_signal(x)
    w = signal.size
    n = np.arange(w)
    coefficients = np.empty(w, dtype=np.complex128)
    base = -2j * np.pi / w
    for k in range(w):
        coefficients[k] = np.dot(signal, np.exp(base * k * n))
    return coefficients


def dft(x) -> np.ndarray:
    """FFT-backed forward DFT (the production path; O(W log W))."""
    return np.fft.fft(_as_signal(x))


def inverse_dft(coefficients) -> np.ndarray:
    """Inverse DFT returning the (complex) time-domain signal (Eq. 3)."""
    spectrum = np.asarray(coefficients, dtype=np.complex128)
    if spectrum.ndim != 1 or spectrum.size == 0:
        raise SummaryError("inverse DFT input must be a non-empty 1-D array")
    return np.fft.ifft(spectrum)
