"""Incremental (sliding) DFT.

The summary maintained here is the DFT of the window's *circular buffer*:
sample positions are fixed slots ``0..W-1`` and an arriving tuple
overwrites the oldest slot ``p``.  Each tracked coefficient then updates
in O(1)::

    X_k  +=  (x_new - x_old) * exp(-2j*pi*k*p / W)

This "anchored" formulation is a phase rotation away from the
chronologically-indexed window DFT (time-shift property), so coefficient
*magnitudes*, power spectra, and the reconstructed value multiset are
identical -- everything Sections 5.2/5.3 consume.  Its decisive advantage
for the distributed protocol is that coefficients change **only in
proportion to the content that actually changed**: a window that turned
over k samples since the last broadcast perturbs each coefficient by the
k sample deltas, not by a wholesale phase rotation.  That is what makes
Figure 7's "extract the coefficients that changed" delta suppression
effective (and Figure 8's overhead small).

Tracking only the K = W/kappa lowest-frequency bins makes each tuple cost
O(K) regardless of W -- this is the "iDFT" column of Table 1.  Because
the joining-attribute signal is real, every untracked conjugate bin
X[W - k] = conj(X[k]) is implied for free, so transmitting K coefficients
conveys nearly 2K bins (Section 5.3's compression arithmetic).

Floating-point drift accrues on the order of 1e-16 per update per
coefficient (the paper cites [4] for the same bound), so the window is
fully recomputed at the cadence prescribed by a
:class:`~repro.dft.control.ControlVector`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.dft.control import ControlVector
from repro.errors import SummaryError


def low_frequency_bins(window_size: int, count: int) -> np.ndarray:
    """The ``count`` lowest-frequency bin indices: 0, 1, ..., count - 1.

    Bin 0 is the DC term (window sum); bin k oscillates k times per window.
    ``count`` is clamped to the number of non-redundant bins of a real
    signal (W//2 + 1); beyond that the conjugate symmetry makes extra bins
    pure redundancy.
    """
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    if count < 1:
        raise SummaryError("must track at least one bin")
    limit = window_size // 2 + 1
    return np.arange(min(count, limit), dtype=np.int64)


class SlidingDFT:
    """Per-tuple incremental DFT over a count window of fixed size.

    Until the window first fills, slots are written in order (the window
    is conceptually zero-padded to W); once full, each arrival overwrites
    the oldest slot, applying the O(1) anchored update above.
    """

    def __init__(
        self,
        window_size: int,
        tracked_bins: Optional[Sequence[int]] = None,
        control: Optional[ControlVector] = None,
    ) -> None:
        if window_size < 1:
            raise SummaryError("window_size must be >= 1")
        self.window_size = window_size
        if tracked_bins is None:
            bins = np.arange(window_size, dtype=np.int64)
        else:
            bins = np.asarray(sorted(set(int(b) for b in tracked_bins)), dtype=np.int64)
            if bins.size == 0:
                raise SummaryError("tracked_bins must be non-empty")
            if bins.min() < 0 or bins.max() >= window_size:
                raise SummaryError("tracked bins must lie in [0, window_size)")
        self._bins = bins
        self._coefficients = np.zeros(bins.size, dtype=np.complex128)
        self._buffer = np.zeros(window_size, dtype=np.float64)
        self._position = 0
        self._filled = 0
        # Per-slot phases are cycled through in slot order; precomputing
        # the full W x K table would cost O(W*K) memory, so compute the
        # phase row for the current slot on demand from the base angles.
        self._base_angle = -2j * np.pi * bins / window_size
        self.control = control if control is not None else ControlVector.default(window_size)
        self.updates_since_recompute = 0
        self.total_updates = 0
        self.full_recomputes = 0

    @property
    def bins(self) -> np.ndarray:
        """Tracked bin indices (ascending)."""
        return self._bins

    @property
    def is_full(self) -> bool:
        return self._filled == self.window_size

    def __len__(self) -> int:
        return self._filled

    def update(self, value: float) -> None:
        """Write one sample into the circular buffer; update tracked bins."""
        value = float(value)
        old = self._buffer[self._position]
        phase = np.exp(self._base_angle * self._position)
        self._coefficients += (value - old) * phase
        self._buffer[self._position] = value
        self._position = (self._position + 1) % self.window_size
        if self._filled < self.window_size:
            self._filled += 1
        self.total_updates += 1
        self.updates_since_recompute += 1
        if self.control.should_recompute(self.updates_since_recompute):
            self.recompute()

    def extend(self, values) -> None:
        """Feed a batch of samples through :meth:`update`."""
        for value in values:
            self.update(value)

    def recompute(self) -> None:
        """Exact recomputation of the tracked bins from the stored buffer.

        This is the periodic drift reset the control vector schedules; it
        costs one FFT (O(W log W)) amortized over the recompute interval.
        """
        spectrum = np.fft.fft(self._buffer)
        self._coefficients = spectrum[self._bins]
        self.updates_since_recompute = 0
        self.full_recomputes += 1

    def coefficients(self) -> np.ndarray:
        """Current tracked coefficients (copy), aligned with :attr:`bins`."""
        return self._coefficients.copy()

    def coefficient_map(self) -> Dict[int, complex]:
        """``{bin_index: coefficient}`` for the tracked bins."""
        return {int(k): complex(c) for k, c in zip(self._bins, self._coefficients)}

    def exact_coefficients(self) -> np.ndarray:
        """Drift-free reference values of the tracked bins (for testing)."""
        return np.fft.fft(self._buffer)[self._bins]

    def drift(self) -> float:
        """Max absolute deviation of tracked bins from their exact values."""
        exact = self.exact_coefficients()
        return float(np.max(np.abs(self._coefficients - exact))) if exact.size else 0.0

    def buffer_values(self) -> np.ndarray:
        """The raw sample buffer in *slot* order (copy).

        This is the sequence whose DFT the coefficients are: the
        reconstruction of :func:`repro.dft.reconstruction.reconstruct_values`
        aligns with it position-by-position.  While the window is still
        filling, only the written slots are returned.
        """
        if self._filled < self.window_size:
            return self._buffer[: self._filled].copy()
        return self._buffer.copy()

    def window_values(self) -> np.ndarray:
        """The samples in chronological order, oldest first (copy)."""
        if self._filled < self.window_size:
            return self._buffer[: self._filled].copy()
        return np.concatenate(
            [self._buffer[self._position :], self._buffer[: self._position]]
        )
