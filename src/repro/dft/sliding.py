"""Incremental (sliding) DFT.

The summary maintained here is the DFT of the window's *circular buffer*:
sample positions are fixed slots ``0..W-1`` and an arriving tuple
overwrites the oldest slot ``p``.  Each tracked coefficient then updates
in O(1)::

    X_k  +=  (x_new - x_old) * exp(-2j*pi*k*p / W)

This "anchored" formulation is a phase rotation away from the
chronologically-indexed window DFT (time-shift property), so coefficient
*magnitudes*, power spectra, and the reconstructed value multiset are
identical -- everything Sections 5.2/5.3 consume.  Its decisive advantage
for the distributed protocol is that coefficients change **only in
proportion to the content that actually changed**: a window that turned
over k samples since the last broadcast perturbs each coefficient by the
k sample deltas, not by a wholesale phase rotation.  That is what makes
Figure 7's "extract the coefficients that changed" delta suppression
effective (and Figure 8's overhead small).

Tracking only the K = W/kappa lowest-frequency bins makes each tuple cost
O(K) regardless of W -- this is the "iDFT" column of Table 1.  Because
the joining-attribute signal is real, every untracked conjugate bin
X[W - k] = conj(X[k]) is implied for free, so transmitting K coefficients
conveys nearly 2K bins (Section 5.3's compression arithmetic).

Floating-point drift accrues on the order of 1e-16 per update per
coefficient (the paper cites [4] for the same bound), so the window is
fully recomputed at the cadence prescribed by a
:class:`~repro.dft.control.ControlVector`.

Fast paths
----------

The per-slot phase rows ``exp(-2j*pi*k*p/W)`` depend only on the slot
``p``, never on the data, so three evaluation modes are supported:

``table``
    Precompute the full ``W x K`` twiddle table once.  Chosen
    automatically when ``W * K <= TWIDDLE_TABLE_MAX_ENTRIES`` (32 MiB of
    complex128 at the default cap).  The table is produced by the same
    vectorized ``np.exp`` the per-tuple path evaluated, so coefficients
    are bit-identical to the historical per-update formulation.

``rotation``
    When the table would exceed the cap, keep only the current phase row
    and advance it by an elementwise multiply with the constant one-slot
    rotation ``exp(-2j*pi*k/W)``, resetting exactly to ones at slot-0
    wraparound so accumulated phase error never exceeds one window's
    worth (well under the control vector's drift budget).

``naive``
    The historical reference: a fresh ``np.exp`` per update.  Kept for
    equivalence tests and benchmarks; selected globally by setting the
    ``REPRO_NAIVE_KERNELS`` environment variable.

:meth:`SlidingDFT.extend` is a true batched path: a block of samples is
applied as one vectorized outer-product update whose reduction is
strictly in arrival order, so it is bit-identical to the equivalent
:meth:`SlidingDFT.update` loop while performing O(1) numpy dispatches
per block instead of ~6 per sample.  Drift control is checked once per
block boundary, with blocks split so recomputation fires after exactly
the same update as in the scalar path.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.dft.control import ControlVector
from repro.errors import SummaryError

TWIDDLE_TABLE_MAX_ENTRIES = 1 << 21
"""Twiddle tables above this many complex entries (32 MiB) fall back to
the constant-rotation mode."""

EXTEND_BLOCK_ROWS = 1024
"""Row cap on the per-block scratch of :meth:`SlidingDFT.extend`, so a
huge batch never materializes more than ``EXTEND_BLOCK_ROWS x K``
temporaries at once."""

NAIVE_KERNELS_ENV = "REPRO_NAIVE_KERNELS"
"""Set (to anything non-empty) to force every new ``SlidingDFT`` into the
historical per-update ``np.exp`` path -- the reference the equivalence
tests and microbenchmarks compare against."""


def _naive_kernels_forced() -> bool:
    return bool(os.environ.get(NAIVE_KERNELS_ENV, ""))


def low_frequency_bins(window_size: int, count: int) -> np.ndarray:
    """The ``count`` lowest-frequency bin indices: 0, 1, ..., count - 1.

    Bin 0 is the DC term (window sum); bin k oscillates k times per window.
    ``count`` is clamped to the number of non-redundant bins of a real
    signal (W//2 + 1); beyond that the conjugate symmetry makes extra bins
    pure redundancy.
    """
    if window_size < 1:
        raise SummaryError("window_size must be >= 1")
    if count < 1:
        raise SummaryError("must track at least one bin")
    limit = window_size // 2 + 1
    return np.arange(min(count, limit), dtype=np.int64)


class SlidingDFT:
    """Per-tuple incremental DFT over a count window of fixed size.

    Until the window first fills, slots are written in order (the window
    is conceptually zero-padded to W); once full, each arrival overwrites
    the oldest slot, applying the O(1) anchored update above.

    ``mode`` selects the phase-row evaluation strategy: ``"auto"``
    (default) picks ``"table"`` when the ``W x K`` twiddle table fits
    under :data:`TWIDDLE_TABLE_MAX_ENTRIES` and ``"rotation"`` otherwise;
    ``"naive"`` forces the historical per-update ``np.exp``.
    """

    def __init__(
        self,
        window_size: int,
        tracked_bins: Optional[Sequence[int]] = None,
        control: Optional[ControlVector] = None,
        mode: str = "auto",
    ) -> None:
        if window_size < 1:
            raise SummaryError("window_size must be >= 1")
        self.window_size = window_size
        if tracked_bins is None:
            bins = np.arange(window_size, dtype=np.int64)
        else:
            bins = np.asarray(sorted(set(int(b) for b in tracked_bins)), dtype=np.int64)
            if bins.size == 0:
                raise SummaryError("tracked_bins must be non-empty")
            if bins.min() < 0 or bins.max() >= window_size:
                raise SummaryError("tracked bins must lie in [0, window_size)")
        self._bins = bins
        self._coefficients = np.zeros(bins.size, dtype=np.complex128)
        self._buffer = np.zeros(window_size, dtype=np.float64)
        self._position = 0
        self._filled = 0
        self._base_angle = -2j * np.pi * bins / window_size
        if mode == "auto":
            if _naive_kernels_forced():
                mode = "naive"
            elif window_size * bins.size <= TWIDDLE_TABLE_MAX_ENTRIES:
                mode = "table"
            else:
                mode = "rotation"
        if mode not in ("table", "rotation", "naive"):
            raise SummaryError("unknown SlidingDFT mode %r" % mode)
        self.mode = mode
        self._twiddles: Optional[np.ndarray] = None
        self._rotation: Optional[np.ndarray] = None
        self._phase: Optional[np.ndarray] = None
        if mode == "table":
            # One vectorized exp over the full W x K grid; row p equals
            # exp(base_angle * p) bit-for-bit, i.e. exactly the phase row
            # the per-update path would have produced.
            self._twiddles = np.exp(
                self._base_angle[None, :]
                * np.arange(window_size, dtype=np.int64)[:, None]
            )
        elif mode == "rotation":
            self._rotation = np.exp(self._base_angle)
            self._phase = np.ones(bins.size, dtype=np.complex128)
        self.control = control if control is not None else ControlVector.default(window_size)
        self.updates_since_recompute = 0
        self.total_updates = 0
        self.full_recomputes = 0

    @property
    def bins(self) -> np.ndarray:
        """Tracked bin indices (ascending)."""
        return self._bins

    @property
    def is_full(self) -> bool:
        return self._filled == self.window_size

    def __len__(self) -> int:
        return self._filled

    # ------------------------------------------------------------------
    # phase rows
    # ------------------------------------------------------------------

    def _current_phase_row(self) -> np.ndarray:
        """Phase row for the current slot (do not mutate)."""
        if self.mode == "table":
            return self._twiddles[self._position]
        if self.mode == "rotation":
            return self._phase
        return np.exp(self._base_angle * self._position)

    def _advance_position(self) -> None:
        """Move to the next slot, maintaining the rotation-mode phase row."""
        self._position = (self._position + 1) % self.window_size
        if self.mode == "rotation":
            if self._position == 0:
                # Exact reset at wraparound: slot 0's row is exp(0) = 1.
                self._phase = np.ones(self._bins.size, dtype=np.complex128)
            else:
                self._phase = self._phase * self._rotation

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def update(self, value: float) -> None:
        """Write one sample into the circular buffer; update tracked bins."""
        value = float(value)
        old = self._buffer[self._position]
        self._coefficients += (value - old) * self._current_phase_row()
        self._buffer[self._position] = value
        self._advance_position()
        if self._filled < self.window_size:
            self._filled += 1
        self.total_updates += 1
        self.updates_since_recompute += 1
        if self.control.should_recompute(self.updates_since_recompute):
            self.recompute()

    def extend(self, values) -> None:
        """Apply a batch of samples as vectorized block updates.

        Bit-identical to ``for v in values: self.update(v)``: blocks are
        split at slot-0 wraparound and at the drift-control boundary (so
        full recomputations fire after exactly the same update they would
        in the scalar loop), and each block's coefficient contributions
        are reduced strictly in arrival order via ``np.add.accumulate``.
        """
        if self.mode == "naive":
            for value in values:
                self.update(value)
            return
        if isinstance(values, np.ndarray):
            samples = values.astype(np.float64, copy=False).reshape(-1)
        else:
            # Accept any iterable (lists, tuples, generators) like the
            # scalar loop would.
            samples = np.fromiter(values, dtype=np.float64)
        threshold = min(
            self.control.recompute_interval, self.control.drift_safe_interval()
        )
        start = 0
        total = samples.size
        while start < total:
            take = min(
                total - start,
                self.window_size - self._position,
                # The scalar loop recomputes right after the update that
                # reaches the threshold; max(1, ...) keeps that semantics
                # even if a caller swapped in a tighter control mid-stream.
                max(1, threshold - self.updates_since_recompute),
                EXTEND_BLOCK_ROWS,
            )
            self._apply_block(samples[start : start + take])
            start += take
            if self.control.should_recompute(self.updates_since_recompute):
                self.recompute()

    def _apply_block(self, block: np.ndarray) -> None:
        """One vectorized outer-product update over ``block.size`` slots.

        The caller guarantees the block neither wraps past slot W-1 nor
        crosses a drift-control boundary, so slot indices are distinct
        and consecutive.
        """
        n = block.size
        positions = np.arange(self._position, self._position + n)
        if self.mode == "table":
            phases = self._twiddles[positions]
        else:
            # Rotation mode: derive each row with the same single multiply
            # the scalar path performs, so the chain stays bit-identical.
            phases = np.empty((n, self._bins.size), dtype=np.complex128)
            row = self._phase
            for index in range(n):
                phases[index] = row
                row = row * self._rotation
        deltas = block - self._buffer[positions]
        # Strictly-ordered reduction: seed row 0 with the current
        # coefficients and let add.accumulate fold the per-sample
        # contributions left to right, exactly like the scalar loop's
        # sequence of += operations (ufunc.accumulate never reassociates).
        scratch = np.empty((n + 1, self._bins.size), dtype=np.complex128)
        scratch[0] = self._coefficients
        np.multiply(deltas[:, None], phases, out=scratch[1:])
        np.add.accumulate(scratch, axis=0, out=scratch)
        self._coefficients = scratch[-1].copy()
        self._buffer[positions] = block
        self._position = (self._position + n) % self.window_size
        if self.mode == "rotation":
            if self._position == 0:
                self._phase = np.ones(self._bins.size, dtype=np.complex128)
            else:
                self._phase = phases[-1] * self._rotation
        self._filled = min(self.window_size, self._filled + n)
        self.total_updates += n
        self.updates_since_recompute += n

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint_state(self) -> Dict[str, object]:
        """Bit-exact snapshot of the mutable state (see repro.recovery).

        The rotation-mode phase row is part of the state: it is a product
        of ``position`` rotations and cannot be recomputed bit-identically,
        so it must be carried verbatim for restore to reproduce the exact
        coefficient trajectory.
        """
        from repro.recovery.checkpoint import encode_array

        state: Dict[str, object] = {
            "window_size": self.window_size,
            "buffer": encode_array(self._buffer),
            "coefficients": encode_array(self._coefficients),
            "position": self._position,
            "filled": self._filled,
            "updates_since_recompute": self.updates_since_recompute,
            "total_updates": self.total_updates,
            "full_recomputes": self.full_recomputes,
        }
        if self.mode == "rotation":
            state["phase"] = encode_array(self._phase)
        return state

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`checkpoint_state` on a same-config instance."""
        from repro.recovery.checkpoint import decode_array

        if int(state["window_size"]) != self.window_size:
            raise SummaryError(
                "checkpoint window size %s does not match %d"
                % (state["window_size"], self.window_size)
            )
        self._buffer = decode_array(state["buffer"])
        self._coefficients = decode_array(state["coefficients"])
        self._position = int(state["position"])
        self._filled = int(state["filled"])
        self.updates_since_recompute = int(state["updates_since_recompute"])
        self.total_updates = int(state["total_updates"])
        self.full_recomputes = int(state["full_recomputes"])
        if self.mode == "rotation":
            self._phase = decode_array(state["phase"])

    def recompute(self) -> None:
        """Exact recomputation of the tracked bins from the stored buffer.

        This is the periodic drift reset the control vector schedules; it
        costs one FFT (O(W log W)) amortized over the recompute interval.
        """
        spectrum = np.fft.fft(self._buffer)
        self._coefficients = spectrum[self._bins]
        self.updates_since_recompute = 0
        self.full_recomputes += 1

    def coefficients(self) -> np.ndarray:
        """Current tracked coefficients (copy), aligned with :attr:`bins`."""
        return self._coefficients.copy()

    def coefficient_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(bins, coefficients)`` view for internal callers.

        Both arrays are the live state: treat them as read-only and do
        not hold them across further updates (the coefficient array is
        replaced, not mutated, by batch updates and recomputation).
        """
        return self._bins, self._coefficients

    def coefficient_map(self) -> Dict[int, complex]:
        """``{bin_index: coefficient}`` for the tracked bins."""
        return {int(k): complex(c) for k, c in zip(self._bins, self._coefficients)}

    def exact_coefficients(self) -> np.ndarray:
        """Drift-free reference values of the tracked bins (for testing)."""
        return np.fft.fft(self._buffer)[self._bins]

    def drift(self) -> float:
        """Max absolute deviation of tracked bins from their exact values."""
        exact = self.exact_coefficients()
        return float(np.max(np.abs(self._coefficients - exact))) if exact.size else 0.0

    def buffer_values(self) -> np.ndarray:
        """The raw sample buffer in *slot* order (copy).

        This is the sequence whose DFT the coefficients are: the
        reconstruction of :func:`repro.dft.reconstruction.reconstruct_values`
        aligns with it position-by-position.  While the window is still
        filling, only the written slots are returned.
        """
        if self._filled < self.window_size:
            return self._buffer[: self._filled].copy()
        return self._buffer.copy()

    def window_values(self) -> np.ndarray:
        """The samples in chronological order, oldest first (copy)."""
        if self._filled < self.window_size:
            return self._buffer[: self._filled].copy()
        return np.concatenate(
            [self._buffer[self._position :], self._buffer[: self._position]]
        )
