"""Goertzel's algorithm: single-bin DFT evaluation.

When only a handful of coefficients are needed -- exactly the situation
of a node tracking W/kappa bins -- Goertzel's recurrence evaluates one
bin in O(W) multiply-adds without computing the full transform:

    s[n] = x[n] + 2*cos(2*pi*k/W) * s[n-1] - s[n-2]
    X[k] = s[W-1] - exp(-2j*pi*k/W) * s[W-2]

The library's production path is the FFT (recomputation) plus the
anchored sliding update (per tuple); Goertzel serves two purposes here:

* an *independent* reference implementation the property tests check the
  FFT and sliding paths against (three algorithms agreeing is a much
  stronger correctness signal than two);
* a cheaper full-recomputation path when the tracked bin count K
  satisfies K << log2(W), where K * O(W) beats one O(W log W) FFT.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import SummaryError


def goertzel_bin(x, bin_index: int) -> complex:
    """Evaluate DFT coefficient ``X[bin_index]`` of ``x`` by recurrence."""
    signal = np.asarray(x, dtype=np.float64)
    if signal.ndim != 1 or signal.size == 0:
        raise SummaryError("Goertzel input must be a non-empty 1-D array")
    w = signal.size
    if not 0 <= bin_index < w:
        raise SummaryError("bin index %d outside [0, %d)" % (bin_index, w))
    omega = 2.0 * math.pi * bin_index / w
    coefficient = 2.0 * math.cos(omega)
    s_prev, s_prev2 = 0.0, 0.0
    for value in signal:
        s = value + coefficient * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    # X[k] = (s[W-1] - e^{-j*omega} * s[W-2]) * e^{-j*omega*(W-1)}
    tail = complex(s_prev - s_prev2 * math.cos(omega), s_prev2 * math.sin(omega))
    return tail * complex(math.cos(omega * (w - 1)), -math.sin(omega * (w - 1)))


def goertzel_bins(x, bins: Sequence[int]) -> np.ndarray:
    """Evaluate several DFT coefficients (one recurrence pass each)."""
    return np.asarray([goertzel_bin(x, int(k)) for k in bins], dtype=np.complex128)


def goertzel_power(x, bin_index: int) -> float:
    """Squared magnitude |X[k]|^2 without the final phase correction.

    The classic tone-detection shortcut: the power needs only the two
    final recurrence states, skipping the complex arithmetic entirely.
    """
    signal = np.asarray(x, dtype=np.float64)
    if signal.ndim != 1 or signal.size == 0:
        raise SummaryError("Goertzel input must be a non-empty 1-D array")
    w = signal.size
    if not 0 <= bin_index < w:
        raise SummaryError("bin index %d outside [0, %d)" % (bin_index, w))
    omega = 2.0 * math.pi * bin_index / w
    coefficient = 2.0 * math.cos(omega)
    s_prev, s_prev2 = 0.0, 0.0
    for value in signal:
        s = value + coefficient * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    return s_prev * s_prev + s_prev2 * s_prev2 - coefficient * s_prev * s_prev2
