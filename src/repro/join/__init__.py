"""Sliding-window join operator and the exact ground-truth oracle.

* :class:`~repro.join.hash_join.SymmetricHashJoin` executes the local
  window join R_i |><| S_i at a node (and probes forwarded tuples against
  the opposite window).
* :class:`~repro.join.ground_truth.GroundTruthOracle` counts, at each
  arrival event, the tuple's matches across *all* node windows -- the
  denominator |Psi| of Equation 1.
"""

from repro.join.ground_truth import GroundTruthOracle
from repro.join.hash_join import JoinResult, SymmetricHashJoin

__all__ = ["SymmetricHashJoin", "JoinResult", "GroundTruthOracle"]
