"""Symmetric hash join over a pair of sliding windows.

The classic streaming equijoin: when a tuple of stream R arrives, probe the
S window (and vice versa), emit one result per match, then insert the tuple
into its own window.  "Probe before insert" means a tuple never joins with
itself and a given (r, s) pair is produced exactly once locally -- by
whichever tuple arrived second.

For *forwarded* tuples (copies received from remote nodes) only the probe
happens; the copy is not inserted, because the remote window segment it
belongs to lives at its origin node (Section 2's partitioned-window model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WindowError
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import SlidingWindow


@dataclass
class JoinResult:
    """One emitted join result: an (R-tuple, S-tuple) pair."""

    r_tuple: StreamTuple
    s_tuple: StreamTuple
    produced_at_node: int
    produced_at_time: float = 0.0

    @property
    def pair_id(self) -> Tuple[int, int]:
        """Stable identity of the result pair across nodes and duplicates."""
        return (self.r_tuple.tuple_id, self.s_tuple.tuple_id)


class SymmetricHashJoin:
    """Joins the local R and S window segments at one node."""

    def __init__(
        self,
        node_id: int,
        r_window: SlidingWindow,
        s_window: SlidingWindow,
    ) -> None:
        self.node_id = node_id
        self._windows: Dict[StreamId, SlidingWindow] = {
            StreamId.R: r_window,
            StreamId.S: s_window,
        }
        self.local_results = 0
        self.probe_results = 0

    def window(self, stream: StreamId) -> SlidingWindow:
        return self._windows[stream]

    def insert_local(
        self, item: StreamTuple, now: float = 0.0
    ) -> Tuple[List[JoinResult], List[StreamTuple]]:
        """Process a locally-arriving tuple: probe the other window, insert.

        Returns the emitted results and the tuples the insert evicted (the
        ground-truth oracle and the summaries both need the evictions).
        """
        results = self._probe(item, now)
        self.local_results += len(results)
        evicted = self._windows[item.stream].append(item)
        return results, evicted

    def probe_remote(self, item: StreamTuple, now: float = 0.0) -> List[JoinResult]:
        """Probe a forwarded tuple against the opposite window (no insert)."""
        if item.origin_node == self.node_id:
            raise WindowError(
                "tuple %d originated here; use insert_local" % item.tuple_id
            )
        results = self._probe(item, now)
        self.probe_results += len(results)
        return results

    def _probe(self, item: StreamTuple, now: float) -> List[JoinResult]:
        other = self._windows[item.stream.other]
        results = []
        for match in other.matches(item.key):
            if item.stream is StreamId.R:
                result = JoinResult(item, match, self.node_id, now)
            else:
                result = JoinResult(match, item, self.node_id, now)
            results.append(result)
        return results

    def match_count(self, item: StreamTuple) -> int:
        """Number of matches ``item`` would find here, without emitting."""
        return self._windows[item.stream.other].count(item.key)
