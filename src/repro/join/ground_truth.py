"""Exact ground truth for the distributed window join.

Equation 1 measures the error as the fraction of true result tuples missing
from the approximate answer, which requires the exact result set Psi.
Because every node lives inside one simulator process, we can compute Psi
online without a second pass:

Every (r, s) result pair has a *second member* -- whichever of the two
tuples arrived later (globally).  At that tuple's local-arrival event, the
pair exists iff the first member is still inside its origin node's window.
So the oracle mirrors the union of all nodes' local windows (live tuple ids
per key, per stream) and, at each arrival, materializes the pairs the
arriving tuple completes.  Summing over all arrivals enumerates Psi exactly
once per pair.

The oracle also *validates* reported results: forwarded shadow copies can
outlive their origin window, so a node may discover a pair that is not in
Psi (the copy joined after the original expired).  Such reports are
counted as spurious and excluded from |Psi_hat|, keeping the MAX-subset
semantics of Equation 1 exact (Psi_hat is a subset of Psi).

The oracle deliberately tracks only *local* windows: forwarded shadow
copies are an artifact of the evaluation strategy, not of the logical
windows R_1..N and S_1..N of Section 2.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Set, Tuple

from repro.join.hash_join import JoinResult
from repro.streams.tuples import StreamId, StreamTuple


class GroundTruthOracle:
    """Online enumeration of Psi for the MAX-subset error metric."""

    def __init__(self) -> None:
        self._live_ids: Dict[StreamId, Dict[int, List[int]]] = {
            StreamId.R: {},
            StreamId.S: {},
        }
        self._pairs: Set[Tuple[int, int]] = set()
        self.tuples_observed = 0
        self.per_node_contribution: Counter = Counter()

    @property
    def total_result_pairs(self) -> int:
        """|Psi|: size of the exact materialized result set."""
        return len(self._pairs)

    def count_matches(self, item: StreamTuple) -> int:
        """True matches for ``item`` at its arrival instant (before insert)."""
        return len(self._live_ids[item.stream.other].get(item.key, ()))

    def observe_arrival(self, item: StreamTuple, evicted: Iterable[StreamTuple]) -> int:
        """Record a local arrival and its evictions; returns the pair charge.

        Must be called exactly once per locally-arriving tuple, after the
        node inserted it into its window (``evicted`` is what the insert
        pushed out) and *before* any results involving it are validated.
        """
        other_ids = self._live_ids[item.stream.other].get(item.key, ())
        for other_id in other_ids:
            self._pairs.add(self._ordered_pair(item.stream, item.tuple_id, other_id))
        charge = len(other_ids)
        self.tuples_observed += 1
        self.per_node_contribution[item.origin_node] += charge

        live = self._live_ids[item.stream]
        live.setdefault(item.key, []).append(item.tuple_id)
        self.observe_evictions(item.stream, evicted)
        return charge

    def observe_shed(self, item: StreamTuple) -> int:
        """Record a local arrival that load shedding dropped pre-window.

        The tuple physically existed, so every pair it would have
        completed against the currently-live windows belongs to Psi --
        charging them keeps the error metric honest under overload
        (shedding must show up as lost recall, not as a smaller truth
        set).  The tuple never entered any window, so it is *not* added
        to the live view: pairs where the shed tuple would have been the
        *earlier* member are unknowable online and stay uncounted, making
        the reported epsilon under shedding a lower bound.
        """
        other_ids = self._live_ids[item.stream.other].get(item.key, ())
        for other_id in other_ids:
            self._pairs.add(self._ordered_pair(item.stream, item.tuple_id, other_id))
        charge = len(other_ids)
        self.tuples_observed += 1
        self.per_node_contribution[item.origin_node] += charge
        return charge

    def observe_evictions(self, stream: StreamId, evicted: Iterable[StreamTuple]) -> None:
        """Remove expired tuples from the global view.

        Count windows evict only on insert (covered by
        :meth:`observe_arrival`); time windows also expire tuples between
        arrivals, which the node reports through this hook.

        An id that already left the global view is ignored: checkpoint
        restore rolls a recovering node's window back past evictions the
        oracle has observed, so replayed arrivals re-evict resurrected
        tuples.  Like shadow copies, those resurrections are artifacts of
        the evaluation strategy -- the logical window evicted the tuple at
        its original time, and pairs the resurrected copy completes later
        are counted spurious, preserving Psi_hat as a subset of Psi.
        """
        live = self._live_ids[stream]
        for old in evicted:
            ids = live.get(old.key)
            if ids and old.tuple_id in ids:
                ids.remove(old.tuple_id)
                if not ids:
                    del live[old.key]

    @staticmethod
    def _ordered_pair(
        arriving_stream: StreamId, arriving_id: int, other_id: int
    ) -> Tuple[int, int]:
        """Canonical (r_tuple_id, s_tuple_id) ordering."""
        if arriving_stream is StreamId.R:
            return (arriving_id, other_id)
        return (other_id, arriving_id)

    def is_true_pair(self, r_tuple_id: int, s_tuple_id: int) -> bool:
        """Whether a reported pair belongs to the exact result set."""
        return (r_tuple_id, s_tuple_id) in self._pairs

    def validate(self, result: JoinResult) -> bool:
        """Convenience wrapper over :meth:`is_true_pair` for a result."""
        return self.is_true_pair(result.r_tuple.tuple_id, result.s_tuple.tuple_id)

    def global_count(self, stream: StreamId, key: int) -> int:
        """Current global multiplicity of ``key`` across all windows."""
        return len(self._live_ids[stream].get(key, ()))

    def window_population(self, stream: StreamId) -> int:
        """Total tuples currently windowed for ``stream`` across all nodes."""
        return sum(len(ids) for ids in self._live_ids[stream].values())
