"""Property-based tests for flow control and the error metric."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.flow import FlowController, FlowSettings, waterfill_cutoff
from repro.metrics.error import epsilon_error

similarity_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=40),
    values=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(similarity_maps, st.floats(min_value=0.3, max_value=10.0))
@settings(max_examples=80)
def test_probabilities_are_valid_and_meet_budget(similarities, budget)  :
    controller = FlowController(
        len(similarities) + 1, FlowSettings(budget_override=budget)
    )
    probabilities = controller.probabilities(similarities)
    assert set(probabilities) == set(similarities)
    assert all(0.0 <= p <= 1.0 for p in probabilities.values())
    achieved = controller.expected_transmissions(probabilities)
    scale = max(similarities.values())
    # Mirror the controller's numeric-zero cutoff: peers vanishingly small
    # relative to the best (or denormal) would need an unrepresentable weight.
    positive = sum(1 for v in similarities.values() if v >= waterfill_cutoff(scale))
    if positive == 0:
        # Degenerate case: the budget spreads uniformly over all peers.
        target = min(controller.budget, float(len(similarities)))
        assert achieved == pytest.approx(target, abs=1e-4)
    else:
        # The budget is met exactly unless saturation caps it at the
        # number of positive-similarity peers.
        target = min(controller.budget, float(positive))
        assert achieved == pytest.approx(target, abs=1e-4)


@given(similarity_maps, st.floats(min_value=0.3, max_value=5.0))
@settings(max_examples=80)
def test_probabilities_preserve_similarity_ordering(similarities, budget):
    controller = FlowController(
        len(similarities) + 1, FlowSettings(budget_override=budget)
    )
    probabilities = controller.probabilities(similarities)
    peers = sorted(similarities, key=similarities.get)
    for a, b in zip(peers, peers[1:]):
        assert probabilities[a] <= probabilities[b] + 1e-9


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=100)
def test_epsilon_always_in_unit_interval(truth, reported):
    value = epsilon_error(truth, reported)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=100)
def test_epsilon_monotone_in_reported(truth, reported):
    assume(reported < truth)
    assert epsilon_error(truth, reported) > epsilon_error(truth, reported + 1)
