"""Property tests: the watermark-delta state-transfer codec.

The protocol contract is ``apply_delta(base, encode_delta(base, target))
== target`` *bit for bit* -- comparisons inside the codec are bitwise,
so adversarial float payloads (``-0.0`` vs ``0.0``, NaN) must round
trip exactly, not merely compare equal.  The wire-cost model must be
honest (a delta never models more entries than the full snapshot), and
forward-compatibility failures must surface as the configuration error
the CLI knows how to print, never a bare ``ValueError``/``KeyError``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.recovery.delta import (
    DELTA_FORMAT_VERSION,
    SummaryHistory,
    apply_delta,
    decode_payload,
    delta_wire_entries,
    encode_delta,
    encode_payload,
    payload_digest,
)

array_dtypes = st.sampled_from(["float64", "float32", "int32", "int64"])


@st.composite
def array_pairs(draw):
    """Two same-dtype, same-shape arrays built from raw bytes.

    Raw buffers exercise every bit pattern -- including NaNs, signed
    zeros, and subnormals -- which is the whole point of the bitwise
    contract."""
    dtype = np.dtype(draw(array_dtypes))
    shape = tuple(
        draw(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=2))
    )
    count = int(np.prod(shape)) if shape else 0
    size = count * dtype.itemsize
    base = np.frombuffer(draw(st.binary(min_size=size, max_size=size)), dtype=dtype)
    target = np.frombuffer(draw(st.binary(min_size=size, max_size=size)), dtype=dtype)
    return base.reshape(shape).copy(), target.reshape(shape).copy()


finite_complex = st.complex_numbers(
    min_magnitude=0.0, max_magnitude=1e12, allow_nan=False, allow_infinity=False
)
coefficient_maps = st.dictionaries(
    st.integers(min_value=0, max_value=63), finite_complex, max_size=12
)


def bit_equal(a, b) -> bool:
    return (
        a.dtype == b.dtype
        and a.shape == b.shape
        and a.tobytes() == b.tobytes()
    )


class TestArrayDeltas:
    @given(array_pairs())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_bit_exact(self, pair):
        base, target = pair
        blob = encode_delta(base, target)
        assert blob is not None
        assert bit_equal(apply_delta(base, blob), target)

    @given(array_pairs())
    @settings(max_examples=100, deadline=None)
    def test_identical_states_encode_an_empty_delta(self, pair):
        base, _ = pair
        blob = encode_delta(base, base.copy())
        assert blob["changed"] == []
        assert bit_equal(apply_delta(base, blob), base)

    def test_signed_zero_is_a_change(self):
        base = np.array([0.0, 1.0])
        target = np.array([-0.0, 1.0])
        blob = encode_delta(base, target)
        assert blob["changed"] == [0]
        restored = apply_delta(base, blob)
        assert np.signbit(restored[0])

    def test_nan_payloads_round_trip(self):
        base = np.array([np.nan, 2.0])
        target = np.array([np.nan, 3.0])
        blob = encode_delta(base, target)
        # The NaN cell is bitwise-unchanged, so only cell 1 ships.
        assert blob["changed"] == [1]
        assert bit_equal(apply_delta(base, blob), target)

    def test_shape_or_dtype_mismatch_is_not_delta_compatible(self):
        assert encode_delta(np.zeros(3), np.zeros(4)) is None
        assert encode_delta(np.zeros(3), np.zeros(3, dtype=np.int32)) is None
        assert encode_delta(np.zeros(3), {0: 1j}) is None


class TestMapDeltas:
    @given(coefficient_maps, coefficient_maps)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_reproduces_target(self, base, target):
        blob = encode_delta(base, target)
        restored = apply_delta(base, blob)
        assert set(restored) == set(target)
        for key in target:
            packed = np.complex128(target[key]).tobytes()
            assert np.complex128(restored[key]).tobytes() == packed

    def test_removed_keys_are_dropped(self):
        blob = encode_delta({1: 1 + 1j, 2: 2j}, {1: 1 + 1j})
        assert blob["removed"] == [2]
        assert apply_delta({1: 1 + 1j, 2: 2j}, blob) == {1: 1 + 1j}


class TestErrorContract:
    def test_unknown_version_raises_configuration_error(self):
        base = np.zeros(4)
        blob = encode_delta(base, base)
        blob["version"] = DELTA_FORMAT_VERSION + 1
        with pytest.raises(ConfigurationError):
            apply_delta(base, blob)

    def test_missing_version_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            apply_delta(np.zeros(4), {"kind": "array"})

    def test_unknown_kind_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            apply_delta(
                np.zeros(4), {"version": DELTA_FORMAT_VERSION, "kind": "tarball"}
            )
        with pytest.raises(ConfigurationError):
            delta_wire_entries({"kind": "tarball"}, 8)

    def test_mismatched_base_raises_configuration_error(self):
        base = np.zeros(4)
        blob = encode_delta(base, np.ones(4))
        with pytest.raises(ConfigurationError):
            apply_delta(np.zeros(5), blob)
        with pytest.raises(ConfigurationError):
            apply_delta({0: 1j}, blob)

    def test_unencodable_payload_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            encode_payload("not a summary")
        with pytest.raises(ConfigurationError):
            decode_payload(["tarball", {}])


class TestWireCost:
    @given(array_pairs(), st.integers(min_value=0, max_value=512))
    @settings(max_examples=200, deadline=None)
    def test_delta_never_costs_more_than_the_snapshot(self, pair, full_entries):
        base, target = pair
        blob = encode_delta(base, target)
        assert 0 <= delta_wire_entries(blob, full_entries) <= full_entries

    @given(coefficient_maps, coefficient_maps, st.integers(min_value=0, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_map_delta_never_costs_more_than_the_snapshot(
        self, base, target, full_entries
    ):
        blob = encode_delta(base, target)
        assert 0 <= delta_wire_entries(blob, full_entries) <= full_entries

    def test_small_change_in_large_array_is_cheap(self):
        # 5120 counters presented as a 128-entry snapshot (the BLOOM
        # shape at window 2048, kappa 16): one changed counter costs the
        # presence bitmap plus its pro-rata share, far below 128.
        base = np.zeros(5120, dtype=np.int32)
        target = base.copy()
        target[17] = 3
        blob = encode_delta(base, target)
        assert delta_wire_entries(blob, 128) < 128 // 2


class TestPayloadDigest:
    @given(array_pairs())
    @settings(max_examples=100, deadline=None)
    def test_digest_tracks_content(self, pair):
        base, target = pair
        assert payload_digest(base) == payload_digest(base.copy())
        if base.tobytes() != target.tobytes():
            assert payload_digest(base) != payload_digest(target)

    def test_digest_ignores_map_insertion_order(self):
        forward = {1: 1j, 2: 2j}
        backward = {2: 2j, 1: 1j}
        assert payload_digest(forward) == payload_digest(backward)

    @given(array_pairs())
    @settings(max_examples=50, deadline=None)
    def test_payload_codec_round_trips(self, pair):
        base, _ = pair
        assert bit_equal(decode_payload(encode_payload(base)), base)


class TestSummaryHistory:
    def make_update(self, version, payload, full_state=True):
        from repro.core.summaries import SummaryUpdate
        from repro.streams.tuples import StreamId

        return SummaryUpdate(
            algorithm="bloom",
            stream=StreamId.R,
            version=version,
            window_size=64,
            entries=4,
            payload=payload,
            full_state=full_state,
        )

    def test_ring_keeps_only_the_newest_versions(self):
        history = SummaryHistory(limit=2)
        for version in range(1, 5):
            history.record(
                self.make_update(version, np.full(4, version, dtype=np.int32))
            )
        from repro.streams.tuples import StreamId

        assert history.view("bloom", StreamId.R, 1) is None
        assert history.view("bloom", StreamId.R, 2) is None
        assert history.view("bloom", StreamId.R, 4)[0] == 4

    def test_non_snapshot_updates_are_not_recorded(self):
        from repro.streams.tuples import StreamId

        history = SummaryHistory(limit=4)
        history.record(self.make_update(1, {0: 1j}, full_state=True))
        history.record(self.make_update(2, np.zeros(4), full_state=False))
        assert history.view("bloom", StreamId.R, 1) is None
        assert history.view("bloom", StreamId.R, 2) is None

    def test_invalid_limit_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            SummaryHistory(limit=0)
