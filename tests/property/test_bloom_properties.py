"""Property-based tests for Bloom filters."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.counting import CountingBloomFilter
from repro.bloom.standard import BloomFilter

key_lists = st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=120)


@given(key_lists)
@settings(max_examples=60)
def test_standard_filter_never_false_negative(keys):
    bloom = BloomFilter(2048, 4, rng=np.random.default_rng(1))
    bloom.update(keys)
    assert all(key in bloom for key in keys)


@given(key_lists)
@settings(max_examples=60)
def test_counting_filter_never_false_negative(keys):
    bloom = CountingBloomFilter(2048, 4, max_count=255, rng=np.random.default_rng(2))
    bloom.update(keys)
    assert all(key in bloom for key in keys)


@given(key_lists)
@settings(max_examples=60)
def test_counting_filter_full_deletion_empties(keys):
    bloom = CountingBloomFilter(4096, 4, max_count=10**6, rng=np.random.default_rng(3))
    bloom.update(keys)
    for key in keys:
        bloom.remove(key)
    assert bloom.items == 0
    assert bloom.fill_ratio() == 0.0


@given(key_lists, st.integers(min_value=1, max_value=32))
@settings(max_examples=40)
def test_sliding_window_maintenance_preserves_membership(keys, window_size):
    bloom = CountingBloomFilter(4096, 4, max_count=10**6, rng=np.random.default_rng(4))
    window = []
    for key in keys:
        bloom.add(key)
        window.append(key)
        if len(window) > window_size:
            bloom.remove(window.pop(0))
        assert all(k in bloom for k in window)


@given(key_lists)
@settings(max_examples=40)
def test_count_estimate_upper_bounds_true_count(keys):
    bloom = CountingBloomFilter(2048, 4, max_count=10**6, rng=np.random.default_rng(5))
    bloom.update(keys)
    from collections import Counter

    counts = Counter(keys)
    for key, count in counts.items():
        assert bloom.count_estimate(key) >= count
