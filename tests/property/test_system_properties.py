"""Property-based end-to-end invariants over random configurations.

Each example builds and runs a tiny but complete system.  Whatever the
algorithm, workload, or topology, these must hold:

* |Psi_hat| <= |Psi| (MAX-subset semantics; spurious results excluded);
* every scheduled tuple is eventually processed (queues drain);
* message conservation: the exact BASE tuple count is (N-1) per arrival;
* determinism: the run is a pure function of its configuration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import run_experiment

configs = st.builds(
    lambda algorithm, nodes, window, kind, seed, queries: SystemConfig(
        num_nodes=nodes,
        window_size=window,
        num_queries=queries,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(
            kind=kind, total_tuples=400, domain=256, arrival_rate=200.0
        ),
        seed=seed,
    ),
    algorithm=st.sampled_from(list(Algorithm)),
    nodes=st.integers(min_value=2, max_value=5),
    window=st.sampled_from([16, 48, 96]),
    kind=st.sampled_from(
        [k for k in WorkloadKind if k is not WorkloadKind.REPLAY]
    ),  # REPLAY needs a trace file
    seed=st.integers(min_value=0, max_value=10_000),
    queries=st.integers(min_value=1, max_value=2),
)


@given(configs)
@settings(max_examples=15, deadline=None)
def test_run_invariants(config):
    result = run_experiment(config)
    assert result.tuples_arrived == 400
    assert 0 <= result.reported_pairs <= result.truth_pairs
    assert 0.0 <= result.epsilon <= 1.0
    assert result.duration_seconds >= result.arrival_span_seconds
    assert result.traffic["total_bytes"] >= 0
    per_node_processed = sum(
        d["tuples_processed"] for d in result.node_diagnostics.values()
    )
    assert per_node_processed == 400


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=8, deadline=None)
def test_base_message_conservation(seed):
    config = SystemConfig(
        num_nodes=3,
        window_size=32,
        policy=PolicyConfig(algorithm=Algorithm.BASE),
        workload=WorkloadConfig(total_tuples=300, domain=128, arrival_rate=100.0),
        seed=seed,
    )
    result = run_experiment(config)
    assert result.messages_by_kind.get("tuple", 0) == 300 * 2
    assert result.epsilon < 0.05


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=5, deadline=None)
def test_runs_are_deterministic(seed):
    config = SystemConfig(
        num_nodes=3,
        window_size=32,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=4.0),
        workload=WorkloadConfig(total_tuples=300, domain=128, arrival_rate=100.0),
        seed=seed,
    )
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.reported_pairs == second.reported_pairs
    assert first.truth_pairs == second.truth_pairs
    assert first.messages_by_kind == second.messages_by_kind
