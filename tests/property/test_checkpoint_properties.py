"""Property tests: checkpoint codec and policy snapshots round trip exactly.

Two contracts back the rerun-identity guarantee of the recovery
subsystem: the low-level codec is a bit-exact inverse pair
(``decode_array(encode_array(a))`` reproduces the buffer, not a decimal
approximation), and every forwarding policy's
``checkpoint_state -> restore_state -> checkpoint_state`` loop lands on
the *same canonical bytes* when restored onto a freshly built twin.
Byte equality of :func:`~repro.recovery.checkpoint.encode_blob` is the
strongest form of the property -- it is exactly what the seed-pinned
integration reruns compare.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Algorithm, PolicyConfig
from repro.core.policies import PolicyContext, make_policy, make_shared_state
from repro.recovery.checkpoint import (
    decode_array,
    decode_tuple,
    encode_array,
    encode_blob,
    encode_tuple,
)
from repro.streams.tuples import StreamId, StreamTuple

WINDOW = 32
DOMAIN = 256
NUM_NODES = 4

array_dtypes = st.sampled_from(["float64", "float32", "int64", "uint32", "complex128"])


@st.composite
def arrays(draw):
    dtype = np.dtype(draw(array_dtypes))
    shape = draw(
        st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=3)
    )
    count = int(np.prod(shape)) if shape else 0
    raw = draw(st.binary(min_size=count * dtype.itemsize, max_size=count * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


@st.composite
def stream_tuples(draw):
    return StreamTuple(
        stream=draw(st.sampled_from(list(StreamId))),
        key=draw(st.integers(min_value=0, max_value=DOMAIN - 1)),
        origin_node=draw(st.integers(min_value=0, max_value=NUM_NODES - 1)),
        arrival_index=draw(st.integers(min_value=0, max_value=10_000)),
        timestamp=draw(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
        ),
        query_id=draw(st.integers(min_value=0, max_value=3)),
    )


class TestCodec:
    @settings(max_examples=100, deadline=None)
    @given(array=arrays())
    def test_array_round_trip_is_bit_exact(self, array):
        restored = decode_array(encode_array(array))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        assert restored.tobytes() == array.tobytes()
        assert restored.flags.writeable

    @settings(max_examples=100, deadline=None)
    @given(item=stream_tuples())
    def test_tuple_round_trip_preserves_identity(self, item):
        restored = decode_tuple(encode_tuple(item))
        assert restored == item
        assert restored.tuple_id == item.tuple_id

    @settings(max_examples=50, deadline=None)
    @given(item=stream_tuples())
    def test_tuple_encoding_is_json_safe(self, item):
        assert encode_blob({"version": 1, "t": encode_tuple(item)})


def build_policy(algorithm, seed):
    config = PolicyConfig(algorithm=algorithm, kappa=4.0)
    context = PolicyContext(
        node_id=0,
        peer_ids=tuple(range(1, NUM_NODES)),
        window_size=WINDOW,
        domain=DOMAIN,
        config=config,
        rng=np.random.default_rng(seed),
    )
    shared = make_shared_state(config, WINDOW, rng=np.random.default_rng(seed + 1))
    return make_policy(context, shared)


def feed(policy, keys):
    for index, key in enumerate(keys):
        stream = StreamId.R if index % 2 == 0 else StreamId.S
        policy.on_local_insert(
            StreamTuple(stream=stream, key=key, origin_node=0, arrival_index=index),
            [],
        )


class TestPolicySnapshots:
    @settings(max_examples=20, deadline=None)
    @given(
        algorithm=st.sampled_from(list(Algorithm)),
        seed=st.integers(min_value=0, max_value=2**16),
        keys=st.lists(
            st.integers(min_value=0, max_value=DOMAIN - 1), min_size=0, max_size=64
        ),
    )
    def test_restore_onto_twin_reproduces_canonical_bytes(self, algorithm, seed, keys):
        source = build_policy(algorithm, seed)
        feed(source, keys)
        state = source.checkpoint_state()
        blob = encode_blob(state)

        twin = build_policy(algorithm, seed)
        twin.restore_state(state)
        assert encode_blob(twin.checkpoint_state()) == blob

    @settings(max_examples=20, deadline=None)
    @given(
        algorithm=st.sampled_from(list(Algorithm)),
        keys=st.lists(
            st.integers(min_value=0, max_value=DOMAIN - 1), min_size=1, max_size=32
        ),
    )
    def test_checkpoint_does_not_mutate_policy(self, algorithm, keys):
        policy = build_policy(algorithm, seed=7)
        feed(policy, keys)
        first = encode_blob(policy.checkpoint_state())
        second = encode_blob(policy.checkpoint_state())
        assert first == second
