"""Property-based tests for the DFT substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft.control import ControlVector
from repro.dft.reconstruction import (
    compress_spectrum,
    expand_spectrum,
    reconstruct_values,
    reconstruction_squared_errors,
)
from repro.dft.sliding import SlidingDFT
from repro.dft.transform import dft, dft_direct, inverse_dft

signals = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)

int_signals = st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=64)


@given(signals)
@settings(max_examples=60)
def test_direct_and_fft_agree(signal):
    scale = max(1.0, float(np.max(np.abs(signal))))
    assert np.allclose(dft_direct(signal), dft(signal), atol=1e-6 * scale * len(signal))


@given(signals)
@settings(max_examples=60)
def test_inverse_round_trip(signal):
    recovered = inverse_dft(dft(signal))
    scale = max(1.0, float(np.max(np.abs(signal))))
    assert np.allclose(recovered.real, signal, atol=1e-9 * scale * len(signal))
    assert np.max(np.abs(recovered.imag)) < 1e-9 * scale * len(signal) + 1e-12


@given(int_signals, st.integers(min_value=1, max_value=40))
@settings(max_examples=60)
def test_expand_always_yields_real_reconstruction(signal, budget):
    spectrum = np.fft.fft(np.asarray(signal, dtype=float))
    kept = compress_spectrum(spectrum, budget)
    full = expand_spectrum(kept, len(signal))
    reconstruction = np.fft.ifft(full)
    assert np.max(np.abs(reconstruction.imag)) < 1e-6 * max(1, max(signal)) + 1e-9


@given(int_signals)
@settings(max_examples=40)
def test_reconstruction_error_monotone_in_budget(signal):
    values = np.asarray(signal, dtype=float)
    half = len(values) // 2 + 1
    budgets = sorted({1, max(1, half // 2), half})
    errors = [reconstruction_squared_errors(values, b).sum() for b in budgets]
    for previous, current in zip(errors, errors[1:]):
        assert current <= previous + 1e-6 * max(1.0, errors[0])


@given(int_signals)
@settings(max_examples=40)
def test_full_budget_reconstruction_is_exact(signal):
    values = np.asarray(signal, dtype=float)
    half = len(values) // 2 + 1
    kept = compress_spectrum(np.fft.fft(values), half)
    recovered = reconstruct_values(kept, len(values))
    assert np.array_equal(recovered, values.astype(np.int64))


@given(
    st.integers(min_value=2, max_value=32),
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200),
)
@settings(max_examples=40)
def test_sliding_dft_matches_batch_fft(window, stream):
    sliding = SlidingDFT(
        window,
        control=ControlVector(recompute_interval=10**9, drift_bound=1.0),
    )
    sliding.extend(float(v) for v in stream)
    # The incremental coefficients are exactly the FFT of the slot buffer...
    buffered = sliding.buffer_values()
    if len(buffered) < window:
        buffered = np.concatenate([buffered, np.zeros(window - len(buffered))])
    expected = np.fft.fft(buffered)
    scale = max(1.0, float(np.max(np.abs(expected))) )
    assert np.allclose(sliding.coefficients(), expected, atol=1e-8 * scale)
    # ...and a pure phase shift of the chronological window's FFT.
    tail = np.asarray(stream[-window:], dtype=float)
    if len(tail) < window:
        tail = np.concatenate([tail, np.zeros(window - len(tail))])
    assert np.allclose(
        np.abs(sliding.coefficients()), np.abs(np.fft.fft(tail)), atol=1e-8 * scale
    )


@given(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=50),
)
@settings(max_examples=30)
def test_recompute_cadence_bounds_updates_between_recomputes(window, length, interval):
    sliding = SlidingDFT(window, control=ControlVector(recompute_interval=interval))
    sliding.extend(float(i % 7) for i in range(length))
    assert sliding.updates_since_recompute < interval
    assert sliding.total_updates == length
