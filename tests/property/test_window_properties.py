"""Property-based tests for sliding-window invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import CountWindow


def make_tuple(key, index):
    return StreamTuple(stream=StreamId.R, key=key, origin_node=0, arrival_index=index)


keys_and_capacity = st.tuples(
    st.lists(st.integers(min_value=1, max_value=20), min_size=0, max_size=200),
    st.integers(min_value=1, max_value=16),
)


@given(keys_and_capacity)
@settings(max_examples=80)
def test_count_window_holds_exactly_the_tail(pair):
    keys, capacity = pair
    window = CountWindow(capacity)
    for index, key in enumerate(keys):
        window.append(make_tuple(key, index))
    expected_tail = keys[-capacity:]
    assert list(window.keys()) == expected_tail
    assert len(window) == len(expected_tail)


@given(keys_and_capacity)
@settings(max_examples=80)
def test_key_counts_always_match_contents(pair):
    keys, capacity = pair
    window = CountWindow(capacity)
    for index, key in enumerate(keys):
        window.append(make_tuple(key, index))
        assert window.key_counts == Counter(t.key for t in window)
        assert all(count > 0 for count in window.key_counts.values())


@given(keys_and_capacity)
@settings(max_examples=80)
def test_evictions_plus_contents_equal_appends(pair):
    keys, capacity = pair
    window = CountWindow(capacity)
    evicted_total = 0
    for index, key in enumerate(keys):
        evicted_total += len(window.append(make_tuple(key, index)))
    assert evicted_total + len(window) == len(keys)
    assert window.total_appended == len(keys)


@given(keys_and_capacity, st.integers(min_value=1, max_value=20))
@settings(max_examples=60)
def test_matches_agree_with_count(pair, probe_key):
    keys, capacity = pair
    window = CountWindow(capacity)
    for index, key in enumerate(keys):
        window.append(make_tuple(key, index))
    assert len(window.matches(probe_key)) == window.count(probe_key)
    assert (probe_key in window) == (window.count(probe_key) > 0)
