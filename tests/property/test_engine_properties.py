"""Property-based tests for the sharded engine's conservative lookahead.

The engine's correctness argument rests on one inequality: a message
sent at time ``t`` over any link arrives no earlier than
``t + latency_min_s``.  Rounds of width ``H = latency_min_s`` are then
safe -- an event executed inside ``[G, G + H)`` can only produce
cross-shard arrivals at ``>= G + H``, i.e. in a *later* round, so no
shard ever misses an inbound event.  These tests pin that inequality
across randomly drawn link specs, traffic patterns, and mesh shapes,
and the engine's refusal to run without positive lookahead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.errors import ConfigurationError
from repro.net.link import Link, LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler

link_specs = st.builds(
    LinkSpec,
    bandwidth_bps=st.floats(min_value=1e3, max_value=1e9),
    latency_min_s=st.floats(min_value=1e-4, max_value=0.5),
    latency_max_s=st.floats(min_value=0.5, max_value=2.0),
)

send_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),  # send time
        st.integers(min_value=0, max_value=64),  # piggy-backed entries
    ),
    min_size=1,
    max_size=30,
)


@given(spec=link_specs, plan=send_plans, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_arrival_never_beats_the_lookahead(spec, plan, seed):
    """arrival >= send + latency_min on every link, whatever the traffic.

    Sampled propagation lies in [latency_min, latency_max] and both
    serialization and FIFO backlog only add delay, so the minimum
    latency is a true lower bound -- the lookahead the rounds rely on.
    """
    spec.validate()
    scheduler = EventScheduler()
    link = Link(
        scheduler,
        spec,
        deliver=lambda message: None,
        rng=np.random.default_rng(seed),
    )
    for send_time, entries in sorted(plan):
        scheduler._now = send_time
        message = Message(
            kind=MessageKind.TUPLE,
            source=0,
            destination=1,
            summary_entries=entries,
        )
        arrival = link.send(message)
        assert arrival >= send_time + spec.latency_min_s


@given(
    nodes=st.integers(min_value=2, max_value=12),
    latency_min=st.floats(min_value=1e-3, max_value=0.2),
)
@settings(max_examples=30, deadline=None)
def test_round_horizon_only_admits_later_rounds(nodes, latency_min):
    """Messages sent inside a round [G, G+H) arrive at G+H or later.

    This is the cross-shard safety property stated directly on round
    arithmetic: with H = latency_min, the coordinator's next horizon
    G' >= G, so an arrival >= send + H >= G + H can never land inside
    the round that produced it.
    """
    spec = LinkSpec(
        latency_min_s=latency_min, latency_max_s=latency_min * 2.0
    )
    spec.validate()
    scheduler = EventScheduler()
    rng = np.random.default_rng(nodes)
    links = [
        Link(scheduler, spec, deliver=lambda m: None, rng=np.random.default_rng(i))
        for i in range(nodes)
    ]
    horizon = 0.0
    for _ in range(20):
        width = latency_min
        send_time = horizon + float(rng.uniform(0.0, width * 0.999))
        scheduler._now = send_time
        link = links[int(rng.integers(len(links)))]
        arrival = link.send(
            Message(kind=MessageKind.TUPLE, source=0, destination=1)
        )
        assert arrival >= horizon + width
        horizon += width


@given(latency_min=st.floats(max_value=0.0, allow_nan=False, min_value=-10.0))
@settings(max_examples=20, deadline=None)
def test_engine_refuses_nonpositive_lookahead(latency_min):
    """Zero or negative minimum latency means zero-width rounds: rejected."""
    from repro.engine.sharded import ShardedEngine

    config = SystemConfig(
        num_nodes=4,
        window_size=32,
        policy=PolicyConfig(algorithm=Algorithm.DFTT),
        workload=WorkloadConfig(total_tuples=10),
        link=LinkSpec(latency_min_s=latency_min, latency_max_s=1.0),
    )
    with pytest.raises(ConfigurationError):
        ShardedEngine(2, config)


def test_engine_refuses_more_shards_than_nodes():
    config = SystemConfig(
        num_nodes=3,
        window_size=32,
        policy=PolicyConfig(algorithm=Algorithm.DFTT),
        workload=WorkloadConfig(total_tuples=10),
    )
    from repro.engine.sharded import ShardedEngine

    with pytest.raises(ConfigurationError):
        ShardedEngine(4, config)
