"""Property tests: the degradation ladder is a strict walk on rungs.

Random trigger sequences must satisfy the table contract -- an illegal
trigger raises :class:`~repro.errors.SimulationError` and leaves the
ladder untouched; a legal one moves exactly one rung.  The detector is
checked never to fire an illegal trigger no matter what queue-depth
trajectory it observes, and residency bookkeeping must conserve time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.overload import (
    DegradationLadder,
    DegradationMode,
    OverloadDetector,
    OverloadSettings,
)
from repro.overload.ladder import _TRANSITIONS, TRIGGERS

RUNG = {
    DegradationMode.NORMAL: 0,
    DegradationMode.THROTTLED: 1,
    DegradationMode.SHEDDING: 2,
}

trigger_sequences = st.lists(st.sampled_from(TRIGGERS), min_size=1, max_size=40)


class TestLadderWalk:
    @settings(max_examples=200, deadline=None)
    @given(triggers=trigger_sequences)
    def test_illegal_triggers_raise_and_leave_state_untouched(self, triggers):
        ladder = DegradationLadder(node_id=0)
        now = 0.0
        for trigger in triggers:
            now += 1.0
            before = (ladder.mode, len(ladder.history))
            if ladder.can_apply(trigger):
                ladder.apply(trigger, now)
                assert len(ladder.history) == before[1] + 1
            else:
                with pytest.raises(SimulationError):
                    ladder.apply(trigger, now)
                assert (ladder.mode, len(ladder.history)) == before

    @settings(max_examples=200, deadline=None)
    @given(triggers=trigger_sequences)
    def test_legal_transitions_move_exactly_one_rung(self, triggers):
        ladder = DegradationLadder(node_id=0)
        now = 0.0
        for trigger in triggers:
            now += 1.0
            if not ladder.can_apply(trigger):
                continue
            before = ladder.mode
            after = ladder.apply(trigger, now)
            assert abs(RUNG[after] - RUNG[before]) == 1

    @settings(max_examples=200, deadline=None)
    @given(triggers=trigger_sequences)
    def test_residency_conserves_elapsed_time(self, triggers):
        ladder = DegradationLadder(node_id=0)
        now = 0.0
        for trigger in triggers:
            now += 1.0
            if ladder.can_apply(trigger):
                ladder.apply(trigger, now)
        final = now + 1.0
        residency = ladder.residency_seconds(final)
        assert sum(residency.values()) == pytest.approx(final)

    def test_transition_table_is_a_path_graph(self):
        """Every mode has at most one step up and one step down."""
        for mode in DegradationMode:
            outgoing = [
                RUNG[target] - RUNG[mode]
                for (source, _), target in _TRANSITIONS.items()
                if source is mode
            ]
            assert all(step in (-1, 1) for step in outgoing)
            assert len(outgoing) == len(set(outgoing))


class TestDetectorNeverBreaksTheLadder:
    @settings(max_examples=200, deadline=None)
    @given(
        depths=st.lists(
            st.integers(min_value=0, max_value=128), min_size=1, max_size=60
        ),
        dwell=st.floats(
            min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False
        ),
    )
    def test_observations_only_fire_legal_triggers(self, depths, dwell):
        config = OverloadSettings(
            enabled=True,
            queue_bound=64,
            throttle_watermark=16,
            throttle_clear=4,
            shed_watermark=48,
            shed_clear=24,
            min_dwell_s=dwell,
        )
        config.validate()
        ladder = DegradationLadder(node_id=0)
        detector = OverloadDetector(config, ladder)
        now = 0.0
        for depth in depths:
            now += 0.5
            # Must never raise: the detector walks adjacent rungs only.
            applied = detector.observe(now, depth)
            assert len(applied) <= 2
            if applied:
                assert applied[-1][1] is ladder.mode
        counters = ladder.counters(now)
        assert counters["transitions"] == float(len(ladder.history))
