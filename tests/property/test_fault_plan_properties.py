"""Property tests: FaultPlan serialization round trips exactly.

Seeded random plans must satisfy two contracts the chaos tooling leans
on: ``FaultPlan.from_json(plan.to_json()) == plan`` (results files echo
plans verbatim) and ``FaultPlan.parse`` accepting every compact spec the
plan prints (the CLI grammar is a faithful inverse).  Invalid input of
either shape raises :class:`~repro.errors.ConfigurationError` -- never a
bare ``ValueError`` -- so CLI callers surface a clean exit 2.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ReproError
from repro.net.faults import FaultEvent, FaultKind, FaultPlan

NUM_NODES = 6

positive_seconds = st.floats(
    min_value=0.001, max_value=1000.0, allow_nan=False, allow_infinity=False
)
start_seconds = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


def link_pairs():
    return (
        st.tuples(
            st.integers(min_value=0, max_value=NUM_NODES - 1),
            st.integers(min_value=0, max_value=NUM_NODES - 1),
        )
        .filter(lambda pair: pair[0] != pair[1])
    )


def link_selections(min_size=0):
    return st.lists(link_pairs(), min_size=min_size, max_size=4, unique=True).map(
        tuple
    )


@st.composite
def fault_events(draw):
    kind = draw(st.sampled_from(list(FaultKind)))
    start = draw(start_seconds)
    duration = draw(positive_seconds)
    nodes = ()
    links = ()
    loss = 0.0
    extra = 0.0
    downtime = 0.0
    slowdown = 0.0
    if kind is FaultKind.OVERLOAD:
        slowdown = draw(
            st.floats(
                min_value=1.001,
                max_value=1000.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        nodes = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=NUM_NODES - 1),
                        min_size=1,
                        max_size=NUM_NODES,
                    )
                )
            )
        )
    elif kind is FaultKind.NODE_CRASH:
        downtime = draw(st.one_of(st.just(0.0), positive_seconds))
        nodes = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=NUM_NODES - 1),
                        min_size=1,
                        max_size=NUM_NODES,
                    )
                )
            )
        )
    elif kind is FaultKind.PARTITION:
        nodes = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=NUM_NODES - 1),
                        min_size=1,
                        max_size=NUM_NODES - 1,
                    )
                )
            )
        )
    elif kind is FaultKind.LINK_OUTAGE:
        links = draw(link_selections(min_size=1))
    elif kind is FaultKind.LOSS_BURST:
        loss = draw(
            st.floats(
                min_value=0.001, max_value=1.0, allow_nan=False, allow_infinity=False
            )
        )
        links = draw(link_selections())
    elif kind is FaultKind.LATENCY_SPIKE:
        extra = draw(positive_seconds)
        links = draw(link_selections())
    event = FaultEvent(
        kind=kind,
        start_s=start,
        duration_s=duration,
        nodes=nodes,
        links=links,
        loss_probability=loss,
        extra_latency_s=extra,
        downtime_s=downtime,
        slowdown_factor=slowdown,
    )
    event.validate(NUM_NODES)
    return event


fault_plans = st.lists(fault_events(), min_size=1, max_size=6).map(
    FaultPlan.from_events
)


class TestJsonRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(plan=fault_plans)
    def test_from_json_inverts_to_json(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan

    @settings(max_examples=50, deadline=None)
    @given(plan=fault_plans)
    def test_round_trip_survives_indentation(self, plan):
        assert FaultPlan.from_json(plan.to_json(indent=2)) == plan

    @settings(max_examples=50, deadline=None)
    @given(event=fault_events())
    def test_event_dict_round_trip(self, event):
        assert FaultEvent.from_dict(event.as_dict()) == event

    @settings(max_examples=50, deadline=None)
    @given(plan=fault_plans)
    def test_json_is_plain_list_of_objects(self, plan):
        payload = json.loads(plan.to_json())
        assert isinstance(payload, list)
        assert all(isinstance(entry, dict) for entry in payload)


class TestSpecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(plan=fault_plans)
    def test_parse_accepts_every_spec_it_prints(self, plan):
        assert FaultPlan.parse(plan.to_spec(), num_nodes=NUM_NODES) == plan

    @settings(max_examples=50, deadline=None)
    @given(event=fault_events())
    def test_event_spec_round_trip(self, event):
        plan = FaultPlan.parse(event.to_spec(), num_nodes=NUM_NODES)
        assert plan.events == (event,)

    def test_empty_plan_has_no_spec(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().to_spec()


INVALID_SPECS = [
    "",
    ";",
    "meteor@t=1,d=1",  # unknown kind
    "crash@d=1,node=0",  # missing start time
    "crash@t=1,d=1",  # crash without a node
    "partition@t=1,d=1,nodes=0+1+2+3+4+5",  # nobody on the other side
    "outage@t=1,d=1",  # outage without links
    "outage@t=1,d=1,link=2",  # malformed link
    "outage@t=1,d=1,link=0-0",  # self-loop
    "loss@t=1,d=1,p=1.5",  # probability out of range
    "loss@t=x,d=1,p=0.5",  # unparsable seconds
    "latency@t=1,d=1,extra=-2",  # negative extra latency
    "crash@t=1,d=0,node=1",  # zero duration
    "crash@t=-1,d=1,node=1",  # negative start
    "crash@t=1,d=1,node=9",  # outside the mesh
    "crash@t=1,d=1,node=one",  # non-numeric node
    "crash@t=1,d=1,bogus=3",  # unknown argument
    "crash@t=1,d=1 node=1",  # missing '=' separator
    "crash@t=1,d=1,node=1,downtime=-2",  # negative downtime
    "loss@t=1,d=1,p=0.5,downtime=2",  # downtime is crash-only
    "overload@t=1,d=1,factor=8",  # overload without a node
    "overload@t=1,d=1,node=0,factor=1",  # factor must exceed 1
    "overload@t=1,d=1,node=0,factor=0.5",  # sub-unit factor
    "overload@t=1,d=1,node=0,factor=fast",  # non-numeric factor
    "crash@t=1,d=1,node=0,factor=2",  # factor is overload-only
]


class TestInvalidSpecs:
    @pytest.mark.parametrize("spec", INVALID_SPECS)
    def test_raises_configuration_error_not_value_error(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(spec, num_nodes=NUM_NODES)

    @pytest.mark.parametrize("text", ["{}", "not json", '{"kind": "loss_burst"}'])
    def test_bad_json_raises_configuration_error(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json(text)

    @settings(max_examples=100, deadline=None)
    @given(garbage=st.text(alphabet="abc@=,;-0123456789.", max_size=40))
    def test_arbitrary_text_never_raises_bare_errors(self, garbage):
        """parse either succeeds or raises from the library hierarchy."""
        try:
            FaultPlan.parse(garbage, num_nodes=NUM_NODES)
        except ReproError:
            pass
