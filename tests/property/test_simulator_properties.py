"""Property-based tests for the event scheduler and ground truth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.join.ground_truth import GroundTruthOracle
from repro.net.simulator import EventScheduler
from repro.streams.tuples import StreamId, StreamTuple
from repro.streams.window import CountWindow


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=100))
@settings(max_examples=60)
def test_events_fire_in_nondecreasing_time_order(times):
    scheduler = EventScheduler()
    fired = []
    for time in times:
        scheduler.schedule_at(time, lambda t=time: fired.append(scheduler.now))
    scheduler.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=50))
@settings(max_examples=40)
def test_clock_never_goes_backwards(delays):
    scheduler = EventScheduler()
    observed = []

    def observe():
        observed.append(scheduler.now)

    for delay in delays:
        scheduler.schedule_in(delay, observe)
    scheduler.run()
    assert observed == sorted(observed)


arrival_plans = st.lists(
    st.tuples(
        st.sampled_from([StreamId.R, StreamId.S]),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=120,
)


@given(arrival_plans, st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_oracle_matches_brute_force_windowed_join(plan, capacity):
    """|Psi| from the oracle equals a brute-force enumeration."""
    oracle = GroundTruthOracle()
    windows = {}
    brute_pairs = set()
    live = []  # (stream, key, tuple_id, origin) currently in some window

    for stream, key, origin in plan:
        item = StreamTuple(stream=stream, key=key, origin_node=origin, arrival_index=0)
        for other_stream, other_key, other_id, _ in live:
            if other_stream is not stream and other_key == key:
                pair = (
                    (item.tuple_id, other_id)
                    if stream is StreamId.R
                    else (other_id, item.tuple_id)
                )
                brute_pairs.add(pair)
        window = windows.setdefault((origin, stream), CountWindow(capacity))
        evicted = window.append(item)
        live.append((stream, key, item.tuple_id, origin))
        evicted_ids = {t.tuple_id for t in evicted}
        live = [entry for entry in live if entry[2] not in evicted_ids]
        oracle.observe_arrival(item, evicted)

    assert oracle.total_result_pairs == len(brute_pairs)
    for pair in brute_pairs:
        assert oracle.is_true_pair(*pair)
