"""Bit-level equivalence of the vectorized kernels against their scalar paths.

The fast paths (twiddle tables, rotation phases, batched ``extend``,
``update_batch``, the sign-vector cache) are only admissible because they
change *nothing* about the numbers: every test here asserts exact
(bit-for-bit) equality, not closeness.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft.control import ControlVector
from repro.dft.sliding import SlidingDFT, low_frequency_bins
from repro.sketches.agms import AgmsSketch, SketchShape
from repro.sketches.fast_agms import FastAgmsSketch, FastSketchShape
from repro.sketches.hashing import FourWiseHashFamily


def _dft_pair(window, mode, interval):
    """Two identically-configured DFTs: one driven by extend, one by update."""
    bins = low_frequency_bins(window, max(1, window // 4))
    control = ControlVector(recompute_interval=interval)
    batched = SlidingDFT(window, tracked_bins=bins, control=control, mode=mode)
    scalar = SlidingDFT(window, tracked_bins=bins, control=control, mode=mode)
    return batched, scalar


@pytest.mark.parametrize("mode", ["table", "rotation"])
@settings(max_examples=40, deadline=None)
@given(
    window=st.integers(min_value=2, max_value=96),
    interval=st.integers(min_value=3, max_value=200),
    data=st.data(),
)
def test_extend_bit_identical_to_update_loop(mode, window, interval, data):
    """extend(batch) == the equivalent update() loop, bit for bit.

    Streams longer than 2 W cross the slot-0 wraparound; intervals
    shorter than the stream cross drift-control recompute boundaries.
    """
    stream = data.draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=3 * window + 5,
        )
    )
    batched, scalar = _dft_pair(window, mode, interval)
    batched.extend(stream)
    for value in stream:
        scalar.update(value)
    assert batched.full_recomputes == scalar.full_recomputes
    assert batched.total_updates == scalar.total_updates
    assert batched.updates_since_recompute == scalar.updates_since_recompute
    assert np.array_equal(batched.buffer_values(), scalar.buffer_values())
    assert np.array_equal(batched.coefficients(), scalar.coefficients())


def test_table_mode_matches_naive_reference_exactly():
    """The twiddle table reproduces the historical per-update np.exp path
    bit for bit (one vectorized exp yields the same values as W scalar
    exps of the same angles)."""
    window = 64
    rng = np.random.default_rng(7)
    stream = rng.normal(scale=100.0, size=3 * window).tolist()
    bins = low_frequency_bins(window, 16)
    control = ControlVector(recompute_interval=37)
    fast = SlidingDFT(window, tracked_bins=bins, control=control, mode="table")
    naive = SlidingDFT(window, tracked_bins=bins, control=control, mode="naive")
    fast.extend(stream)
    for value in stream:
        naive.update(value)
    assert np.array_equal(fast.coefficients(), naive.coefficients())


def test_rotation_mode_tracks_naive_within_drift_budget():
    """Rotation mode replaces np.exp with a running phase product, so it
    is bit-identical to its *own* scalar path (covered above) and agrees
    with the naive reference to rounding error far below the control
    vector's drift bound."""
    window = 64
    rng = np.random.default_rng(13)
    stream = rng.normal(scale=100.0, size=3 * window).tolist()
    bins = low_frequency_bins(window, 16)
    control = ControlVector(recompute_interval=37)
    fast = SlidingDFT(window, tracked_bins=bins, control=control, mode="rotation")
    naive = SlidingDFT(window, tracked_bins=bins, control=control, mode="naive")
    fast.extend(stream)
    for value in stream:
        naive.update(value)
    np.testing.assert_allclose(
        fast.coefficients(), naive.coefficients(), rtol=1e-12, atol=1e-9
    )


def test_extend_in_chunks_matches_single_extend():
    """Arbitrary batch boundaries do not change the result."""
    window = 48
    rng = np.random.default_rng(11)
    stream = rng.normal(scale=10.0, size=150)
    a, b = _dft_pair(window, "table", 29)
    a.extend(stream)
    cursor = 0
    for size in (1, 7, 3, 60, 79):
        b.extend(stream[cursor : cursor + size])
        cursor += size
    assert cursor == stream.size
    assert np.array_equal(a.coefficients(), b.coefficients())


def test_extend_accepts_generators():
    window = 16
    a, b = _dft_pair(window, "table", 1_000_000_000)
    a.extend(float(i) for i in range(40))
    b.extend([float(i) for i in range(40)])
    assert np.array_equal(a.coefficients(), b.coefficients())


@settings(max_examples=30, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_agms_update_batch_bit_identical(updates):
    rng = np.random.default_rng(3)
    shape = SketchShape.from_total(40)
    scalar = AgmsSketch(shape, rng=rng)
    batched = scalar.spawn_compatible()
    for key, delta in updates:
        scalar.update(key, delta)
    batched.update_batch([k for k, _ in updates], [d for _, d in updates])
    assert np.array_equal(scalar.snapshot_counters(), batched.snapshot_counters())
    assert scalar.updates == batched.updates


@settings(max_examples=30, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_fast_agms_update_batch_bit_identical(updates):
    rng = np.random.default_rng(5)
    shape = FastSketchShape.from_total(40, rows=5)
    scalar = FastAgmsSketch(shape, rng=rng)
    batched = scalar.spawn_compatible()
    for key, delta in updates:
        scalar.update(key, delta)
    batched.update_batch([k for k, _ in updates], [d for _, d in updates])
    assert np.array_equal(scalar.snapshot_counters(), batched.snapshot_counters())
    assert scalar.updates == batched.updates


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=80))
def test_cached_signs_bit_identical_to_uncached(keys):
    rng = np.random.default_rng(9)
    coefficients_seed = rng.integers(0, 2**31 - 1, size=(16, 4), dtype=np.int64)
    cached = FourWiseHashFamily(16, cache_size=8)
    uncached = FourWiseHashFamily(16, cache_size=0)
    cached._coefficients = coefficients_seed.copy()
    uncached._coefficients = coefficients_seed.copy()
    for key in keys:
        assert np.array_equal(cached.signs(key), uncached.signs(key))
    # The matrix path agrees too, cache hits and misses alike.
    assert np.array_equal(cached.signs_matrix(keys), uncached.signs_matrix(keys))


def test_sign_cache_is_capacity_bounded_and_counts():
    family = FourWiseHashFamily(8, rng=np.random.default_rng(1), cache_size=4)
    for key in range(10):
        family.signs(key)
    assert family.cache_misses == 10
    assert family.cache_hits == 0
    assert len(family._sign_cache) == 4
    family.signs(9)  # still resident
    assert family.cache_hits == 1
    family.signs(0)  # evicted long ago -> miss again
    assert family.cache_misses == 11


def test_cached_sign_vectors_are_read_only():
    family = FourWiseHashFamily(8, rng=np.random.default_rng(2), cache_size=4)
    vector = family.signs(42)
    with pytest.raises(ValueError):
        vector[0] = 0
