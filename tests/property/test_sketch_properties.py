"""Property-based tests for AGMS sketches."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.agms import AgmsSketch, SketchShape

key_lists = st.lists(st.integers(min_value=1, max_value=100), min_size=0, max_size=150)


def build_pair(seed=7, total=1500):
    shape = SketchShape.from_total(total)
    left = AgmsSketch(shape, rng=np.random.default_rng(seed))
    return left, left.spawn_compatible()


@given(key_lists)
@settings(max_examples=50)
def test_insert_then_delete_everything_returns_to_zero(keys):
    sketch, _ = build_pair()
    for key in keys:
        sketch.update(key, +1)
    for key in keys:
        sketch.update(key, -1)
    assert np.allclose(sketch.counters(), 0.0)


@given(key_lists)
@settings(max_examples=50)
def test_update_order_does_not_matter(keys):
    a, _ = build_pair(seed=9)
    b = a.spawn_compatible()
    for key in keys:
        a.update(key, +1)
    for key in reversed(keys):
        b.update(key, +1)
    assert np.allclose(a.counters(), b.counters())


@given(key_lists, key_lists)
@settings(max_examples=30)
def test_join_estimate_is_symmetric(left_keys, right_keys):
    left, right = build_pair(seed=11)
    for key in left_keys:
        left.update(key)
    for key in right_keys:
        right.update(key)
    assert left.join_size_estimate(right) == right.join_size_estimate(left)


@given(st.lists(st.integers(min_value=1, max_value=30), min_size=30, max_size=150))
@settings(max_examples=25)
def test_join_estimate_tracks_exact_size_loosely(keys):
    """Median-of-means over a 1500-counter sketch: within 3 std of exact."""
    left, right = build_pair(seed=13, total=2000)
    left_counter = Counter(keys)
    right_counter = Counter(keys[::-1])
    for key, count in left_counter.items():
        left.update(key, count)
    for key, count in right_counter.items():
        right.update(key, count)
    exact = sum(count * right_counter[key] for key, count in left_counter.items())
    f2_left = sum(c * c for c in left_counter.values())
    f2_right = sum(c * c for c in right_counter.values())
    std = np.sqrt(2 * f2_left * f2_right / left.shape.s0)
    estimate = left.join_size_estimate(right)
    assert abs(estimate - exact) <= 4 * std + 1e-9


@given(st.integers(min_value=1, max_value=4000))
@settings(max_examples=50)
def test_shape_from_total_never_exceeds_budget(total):
    shape = SketchShape.from_total(total)
    assert 1 <= shape.total <= max(total, SketchShape.from_total(total).s0)
    if total >= 5:
        assert shape.total <= total
