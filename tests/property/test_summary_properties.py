"""Property-based tests for summary dissemination and reconstruction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summaries import SummaryOutbox, SummaryUpdate
from repro.dft.reconstruction import compress_spectrum, reconstructed_key_set
from repro.streams.tuples import StreamId


def make_update(version, stream=StreamId.R, entries=1):
    return SummaryUpdate(
        algorithm="dft",
        stream=stream,
        version=version,
        window_size=8,
        entries=entries,
        payload={0: complex(version)},
        full_state=False,
    )


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=50))
@settings(max_examples=60)
def test_outbox_delivers_only_latest_per_slot(versions):
    outbox = SummaryOutbox([1])
    for version in versions:
        outbox.broadcast(make_update(version))
    taken = outbox.take(1)
    assert len(taken) == 1
    assert taken[0].version == versions[-1]
    assert not outbox.has_pending(1)


@given(
    st.lists(
        st.tuples(
            st.sampled_from([StreamId.R, StreamId.S]),
            st.integers(min_value=1, max_value=50),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60)
def test_outbox_pending_entries_match_taken(plan):
    outbox = SummaryOutbox([1, 2])
    for stream, version in plan:
        outbox.broadcast(make_update(version, stream=stream, entries=version))
    expected = outbox.pending_entries(1)
    taken = outbox.take(1)
    assert sum(update.entries for update in taken) == expected
    # Peer 2's queue is untouched by peer 1's take.
    assert outbox.pending_entries(2) == expected


@given(st.integers(min_value=1, max_value=500), st.integers(min_value=1, max_value=16))
@settings(max_examples=60)
def test_constant_window_reconstruction_recovers_the_key(value, kappa):
    """A window full of one key reconstructs to exactly that key at any
    compression factor -- all its energy sits in the DC bin."""
    window = 32
    signal = np.full(window, float(value))
    budget = max(1, window // kappa)
    kept = compress_spectrum(np.fft.fft(signal), budget)
    assert reconstructed_key_set(kept, window) == {value}
