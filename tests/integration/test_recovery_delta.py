"""Integration tests: watermark-delta state transfer end to end.

The delta protocol is a pure wire-cost optimization: with
``delta_state_transfer`` on, a rejoining node must land in *exactly*
the state the full-snapshot protocol produces -- same stats, same
epsilon, same event timeline -- while strictly fewer resync bytes cross
the wire on large windows.  A seed-pinned three-node BLOOM cell (large
window, so snapshots dominate resync traffic) crashes node 2 mid-run
with a restart scheduled, once per transfer mode, and the results are
compared after stripping only the transfer-accounting fields the two
modes legitimately disagree on.
"""

import dataclasses
import json

import pytest

from repro.config import Algorithm
from repro.core.system import DistributedJoinSystem, run_experiment
from repro.experiments.harness import get_scale, system_config
from repro.experiments.persistence import result_to_dict
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliabilitySettings
from repro.recovery import RecoverySettings

NUM_NODES = 3
CRASH_SPEC = "crash@t=2,d=1.5,node=2,downtime=1.5"
WINDOW = 2048
"""Large windows are where the delta pays: at kappa 16 the BLOOM
snapshot is 128 entries (5120 counters) per stream per query."""

TRANSFER_EVENTS = {"recovery.state_transfer", "recovery.transfer_fallback"}


def make_config(delta, telemetry=False, history_limit=64, num_nodes=NUM_NODES,
                crash_spec=CRASH_SPEC):
    plan = FaultPlan.parse(crash_spec, num_nodes=num_nodes)
    config = system_config(
        get_scale("smoke"),
        Algorithm.BLOOM,
        num_nodes=num_nodes,
        kappa=16.0,
        total_tuples=1_500,
        telemetry=telemetry,
        faults=plan,
        reliability=ReliabilitySettings(enabled=True),
        recovery=RecoverySettings(
            enabled=True,
            checkpoint_interval_s=0.5,
            delta_state_transfer=delta,
            delta_history_limit=history_limit,
        ),
    )
    return dataclasses.replace(config, window_size=WINDOW, seed=7)


def normalized(result) -> str:
    """Canonical JSON with the mode-dependent accounting stripped.

    Only the transfer byte counters (recovery section, per-node
    diagnostics, traffic totals that include the smaller responses) and
    the config echo of the knob itself may differ between modes;
    everything else -- epsilon, pair counts, durations, per-query stats,
    message counts -- must match byte for byte.
    """
    payload = json.loads(json.dumps(result_to_dict(result)))
    payload["config"].pop("delta_state_transfer")
    for key in list(payload["recovery"]):
        if key.startswith("state_transfer"):
            payload["recovery"].pop(key)
    for diagnostics in payload["node_diagnostics"].values():
        for key in list(diagnostics):
            if key.startswith("state_transfer"):
                diagnostics.pop(key)
    for key in (
        "total_bytes",
        "summary_bytes",
        "summary_entries",
        "summary_overhead_fraction",
    ):
        payload["traffic"].pop(key)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def delta_result():
    return run_experiment(make_config(delta=True))


@pytest.fixture(scope="module")
def full_result():
    return run_experiment(make_config(delta=False))


class TestModeEquivalence:
    def test_results_identical_outside_transfer_accounting(
        self, delta_result, full_result
    ):
        assert normalized(delta_result) == normalized(full_result)

    def test_epsilon_and_pairs_are_bitwise_equal(self, delta_result, full_result):
        assert delta_result.epsilon == full_result.epsilon
        assert delta_result.truth_pairs == full_result.truth_pairs
        assert delta_result.reported_pairs == full_result.reported_pairs
        assert delta_result.duration_seconds == full_result.duration_seconds

    def test_event_timelines_identical_modulo_transfer_events(self):
        streams = {}
        for delta in (True, False):
            system = DistributedJoinSystem(make_config(delta, telemetry=True))
            system.run()
            streams[delta] = [
                (
                    event.name,
                    event.time,
                    event.node,
                    event.dur_s,
                    json.dumps(event.attrs, sort_keys=True, default=str),
                )
                for event in system.telemetry.events()
                if event.name not in TRANSFER_EVENTS
                and not (
                    # net.* traces of the resync responses legitimately
                    # carry the smaller honest byte size in delta mode.
                    event.name.startswith("net.")
                    and event.attrs.get("kind") == "state_transfer"
                )
            ]
        assert streams[True] == streams[False]

    def test_delta_mode_emits_transfer_events(self):
        system = DistributedJoinSystem(make_config(delta=True, telemetry=True))
        system.run()
        transfers = [
            event
            for event in system.telemetry.events()
            if event.name == "recovery.state_transfer"
        ]
        assert transfers
        assert any(event.attrs["kind"] == "delta" for event in transfers)
        assert all(event.attrs["size_bytes"] > 0 for event in transfers)


class TestDeltaSavings:
    def test_resync_bytes_strictly_smaller_under_delta(
        self, delta_result, full_result
    ):
        on = delta_result.recovery
        off = full_result.recovery
        assert on["state_transfer_bytes"] < off["state_transfer_bytes"]
        assert on["state_transfer_bytes_saved"] > 0
        assert on["state_transfer_delta_bytes"] > 0
        assert on["state_transfer_fallbacks"] == 0.0

    def test_full_mode_never_reports_delta_accounting(self, full_result):
        off = full_result.recovery
        assert off["state_transfer_delta_bytes"] == 0.0
        assert off["state_transfer_bytes_saved"] == 0.0
        assert off["state_transfer_fallbacks"] == 0.0


class TestShardedIdentity:
    def test_delta_cell_is_byte_identical_under_shards(self, delta_result):
        system = DistributedJoinSystem(make_config(delta=True), shards=2)
        sharded = system.run()
        first = json.dumps(result_to_dict(delta_result), sort_keys=True)
        second = json.dumps(result_to_dict(sharded), sort_keys=True)
        assert first == second


class TestFallback:
    @pytest.fixture(scope="class")
    def truncated_result(self):
        # A one-deep snapshot ring cannot cover a watermark from before
        # the outage: every serving peer must fall back to the full
        # snapshot, exactly once per response.
        return run_experiment(
            make_config(
                delta=True,
                history_limit=1,
                num_nodes=2,
                crash_spec="crash@t=2,d=1.5,node=1,downtime=1.5",
            )
        )

    def test_truncated_history_falls_back_to_full_snapshots(
        self, truncated_result
    ):
        recovery = truncated_result.recovery
        assert recovery["state_transfer_fallbacks"] == 1.0
        assert recovery["state_transfer_delta_bytes"] == 0.0
        assert recovery["state_transfer_bytes_saved"] == 0.0
        assert recovery["state_transfer_full_bytes"] > 0

    def test_requester_still_rejoins_cleanly(self, truncated_result):
        recovery = truncated_result.recovery
        assert recovery["restarts"] == 1.0
        assert recovery["rejoins_clean"] == 1.0

    def test_fallback_event_fires_exactly_once(self):
        system = DistributedJoinSystem(
            make_config(
                delta=True,
                history_limit=1,
                num_nodes=2,
                crash_spec="crash@t=2,d=1.5,node=1,downtime=1.5",
                telemetry=True,
            )
        )
        system.run()
        fallbacks = [
            event
            for event in system.telemetry.events()
            if event.name == "recovery.transfer_fallback"
        ]
        assert len(fallbacks) == 1
