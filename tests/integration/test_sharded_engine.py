"""Sharded execution must equal serial byte for byte.

The sharded engine is an optimization, not an approximation: for any
configuration it must reproduce the serial engine's RunResult *and*
telemetry export exactly -- same stats line, same registry series, same
event ring, same RNG consumption per node.  These tests pin that at a
fixed seed for every algorithm at ``shards=2``, for uneven and maximal
splits, and for a chaos cell exercising faults, the reliable channel,
and checkpoint/restart recovery together.
"""

import json
from pathlib import Path

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem
from repro.net.faults import FaultEvent, FaultKind, FaultPlan
from repro.net.reliable import ReliabilitySettings
from repro.recovery.settings import RecoverySettings
from repro.telemetry.settings import TelemetrySettings


def base_config(algorithm):
    return SystemConfig(
        num_nodes=4,
        window_size=64,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=400, domain=256, arrival_rate=150.0),
        seed=11,
        telemetry=TelemetrySettings(enabled=True),
    )


def chaos_config():
    return SystemConfig(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=4.0),
        workload=WorkloadConfig(total_tuples=600, domain=512, arrival_rate=120.0),
        seed=31,
        telemetry=TelemetrySettings(enabled=True),
        reliability=ReliabilitySettings(enabled=True),
        recovery=RecoverySettings(enabled=True),
        faults=FaultPlan(
            events=(
                FaultEvent(
                    kind=FaultKind.NODE_CRASH,
                    start_s=2.0,
                    duration_s=3.0,
                    nodes=(2,),
                    downtime_s=3.0,
                ),
                FaultEvent(
                    kind=FaultKind.LOSS_BURST,
                    start_s=3.0,
                    duration_s=4.0,
                    loss_probability=0.6,
                ),
            )
        ),
    )


def result_blob(result):
    """The full RunResult, dict order included (no sort_keys)."""
    return json.dumps(result.__dict__, default=str)


def telemetry_blob(system, directory: Path) -> str:
    from repro.telemetry import export_all

    paths = export_all(system.telemetry, directory)
    return "\n===\n".join(
        paths[kind].read_text() for kind in sorted(paths)
    )


def run(config, shards, tmp_path, tag):
    system = DistributedJoinSystem(config, shards=shards)
    result = system.run()
    return result_blob(result), telemetry_blob(system, tmp_path / tag)


@pytest.mark.parametrize("algorithm", list(Algorithm), ids=lambda a: a.name)
def test_every_algorithm_is_byte_identical_at_two_shards(algorithm, tmp_path):
    config = base_config(algorithm)
    serial_result, serial_telemetry = run(config, None, tmp_path, "serial")
    sharded_result, sharded_telemetry = run(config, 2, tmp_path, "sharded")
    assert sharded_result == serial_result
    assert sharded_telemetry == serial_telemetry


def test_maximal_split_one_node_per_shard(tmp_path):
    config = base_config(Algorithm.DFTT)
    serial_result, serial_telemetry = run(config, None, tmp_path, "serial")
    sharded_result, sharded_telemetry = run(config, 4, tmp_path, "sharded")
    assert sharded_result == serial_result
    assert sharded_telemetry == serial_telemetry


def test_chaos_cell_with_uneven_split(tmp_path):
    """Faults + reliability + recovery, 4 nodes over 3 shards."""
    config = chaos_config()
    serial_result, serial_telemetry = run(config, None, tmp_path, "serial")
    sharded_result, sharded_telemetry = run(config, 3, tmp_path, "sharded")
    assert sharded_result == serial_result
    assert sharded_telemetry == serial_telemetry
