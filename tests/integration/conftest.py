"""Shared integration fixtures: small-but-real system configurations."""

import math

import pytest

from repro.config import PolicyConfig, SystemConfig, WorkloadConfig
from repro.net.link import LinkSpec


@pytest.fixture
def lossy_config():
    """Factory for the 4-node lossy-WAN configuration the fault and chaos
    suites share.

    ``loss`` sets the links' independent drop probability; ``faults`` and
    ``reliability`` wire in a fault plan / the reliable transport; any
    other :class:`SystemConfig` field can be overridden by keyword.
    """

    def make(algorithm, loss=0.0, faults=None, reliability=None, **overrides):
        extra = dict(overrides)
        if faults is not None:
            extra["faults"] = faults
        if reliability is not None:
            extra["reliability"] = reliability
        base = SystemConfig(
            num_nodes=4,
            window_size=96,
            policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
            workload=WorkloadConfig(total_tuples=1500, domain=512, arrival_rate=120.0),
            link=LinkSpec(
                bandwidth_bps=math.inf,
                latency_min_s=0.02,
                latency_max_s=0.1,
                loss_probability=loss,
            ),
            seed=31,
        )
        return base.with_overrides(**extra) if extra else base

    return make
