"""Integration tests: full simulated runs of the distributed join."""

import math

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.flow import FlowSettings
from repro.core.system import DistributedJoinSystem, run_experiment


def small_config(algorithm, **overrides):
    defaults = dict(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=1500, domain=512, arrival_rate=120.0),
        seed=11,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestBaseExactness:
    def test_base_is_exact_at_light_load(self):
        result = run_experiment(small_config(Algorithm.BASE))
        assert result.truth_pairs > 0
        assert result.epsilon < 0.01

    def test_base_message_complexity_is_n_minus_1(self):
        result = run_experiment(small_config(Algorithm.BASE))
        tuple_messages = result.messages_by_kind.get("tuple", 0)
        assert tuple_messages == result.tuples_arrived * 3


class TestFilteredAlgorithms:
    @pytest.mark.parametrize(
        "algorithm",
        [Algorithm.ROUND_ROBIN, Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM, Algorithm.SKCH],
    )
    def test_runs_to_completion_with_sane_metrics(self, algorithm):
        result = run_experiment(small_config(algorithm))
        assert result.truth_pairs > 0
        assert 0.0 <= result.epsilon <= 1.0
        assert result.reported_pairs <= result.truth_pairs
        assert result.tuples_arrived == 1500
        assert result.duration_seconds > 0

    @pytest.mark.parametrize(
        "algorithm", [Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM, Algorithm.SKCH]
    )
    def test_filtered_send_fewer_messages_than_base(self, algorithm):
        base = run_experiment(small_config(Algorithm.BASE))
        filtered = run_experiment(small_config(algorithm))
        assert filtered.data_messages < base.data_messages

    def test_budget_zero_point_five_vs_three_error_ordering(self):
        small_budget = run_experiment(
            small_config(
                Algorithm.DFT,
                policy=PolicyConfig(
                    algorithm=Algorithm.DFT,
                    kappa=4.0,
                    flow=FlowSettings(budget_override=0.5),
                ),
            )
        )
        big_budget = run_experiment(
            small_config(
                Algorithm.DFT,
                policy=PolicyConfig(
                    algorithm=Algorithm.DFT,
                    kappa=4.0,
                    flow=FlowSettings(budget_override=3.0),
                ),
            )
        )
        assert big_budget.epsilon < small_budget.epsilon
        assert big_budget.data_messages > small_budget.data_messages


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_experiment(small_config(Algorithm.DFTT))
        b = run_experiment(small_config(Algorithm.DFTT))
        assert a.truth_pairs == b.truth_pairs
        assert a.reported_pairs == b.reported_pairs
        assert a.data_messages == b.data_messages
        assert a.duration_seconds == pytest.approx(b.duration_seconds)

    def test_different_seed_different_stream(self):
        a = run_experiment(small_config(Algorithm.DFTT))
        b = run_experiment(small_config(Algorithm.DFTT, seed=12))
        assert (a.truth_pairs, a.reported_pairs) != (b.truth_pairs, b.reported_pairs)


class TestWorkloads:
    @pytest.mark.parametrize(
        "kind", [k for k in WorkloadKind if k is not WorkloadKind.REPLAY]
    )
    def test_all_workloads_run(self, kind):
        # REPLAY needs a trace file; covered by tests/unit/test_replay.py.
        config = small_config(
            Algorithm.DFTT,
            workload=WorkloadConfig(
                kind=kind, total_tuples=800, domain=512, arrival_rate=120.0
            ),
        )
        result = run_experiment(config)
        assert result.tuples_arrived == 800


class TestSummaryTraffic:
    def test_dft_summaries_account_bytes(self):
        result = run_experiment(small_config(Algorithm.DFT))
        assert result.traffic["summary_bytes"] > 0
        assert 0.0 < result.summary_overhead_fraction < 1.0

    def test_base_has_no_summary_traffic(self):
        result = run_experiment(small_config(Algorithm.BASE))
        assert result.traffic["summary_bytes"] == 0


class TestSystemAssembly:
    def test_node_count_and_registration(self):
        system = DistributedJoinSystem(small_config(Algorithm.DFTT))
        assert len(system.nodes) == 4
        assert system.network.node_ids == (0, 1, 2, 3)

    def test_schedule_then_run_explicitly(self):
        system = DistributedJoinSystem(small_config(Algorithm.BASE))
        system.schedule_workload()
        assert system.scheduler.pending >= 1500
        result = system.run()
        assert result.tuples_arrived == 1500

    def test_overloaded_base_queues_grow_and_drain(self):
        config = small_config(
            Algorithm.BASE,
            num_nodes=5,
            workload=WorkloadConfig(total_tuples=1200, domain=512, arrival_rate=2000.0),
        )
        result = run_experiment(config)
        max_depth = max(d["max_queue_depth"] for d in result.node_diagnostics.values())
        assert max_depth > 10  # saturation built real backlogs
        assert result.duration_seconds > result.arrival_span_seconds * 2
