"""Parallel == serial == cached, end to end.

The contract the whole runner hangs on: a sweep's output is a pure
function of its configs, so running it over N pool workers -- or serving
it from a warm cache -- must produce *byte-identical* artifacts.  These
tests pin that with ``pickle.dumps`` equality (the strictest practical
comparison: every field of every row) and with the report CLI's stdout.

Pool tests use ``jobs=2``/``jobs=3`` on purpose even though CI may have
one core: correctness of the merge order and worker-side state resets is
what is asserted, not speedup.
"""

import contextlib
import dataclasses
import io
import pickle

import pytest

from repro.config import Algorithm
from repro.experiments import chaos, fig8, report
from repro.experiments.harness import get_scale, system_config
from repro.parallel import (
    RunCache,
    cached_run,
    execute_cell,
    reset_simulation_counter,
    run_configs,
    simulations_run,
)
from repro.streams.tuples import StreamId, StreamTuple

SMALL_GRID = chaos.parse_grid("clean; squall@loss=0.25")


class TestSerialParallelIdentity:
    def test_fig8_rows_identical_at_any_jobs(self):
        serial = fig8.run("smoke")
        parallel = fig8.run("smoke", jobs=2)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_chaos_grid_identical_at_any_jobs(self):
        serial = chaos.run(
            "smoke", algorithms=(Algorithm.DFTT,), grid=SMALL_GRID
        )
        parallel = chaos.run(
            "smoke", algorithms=(Algorithm.DFTT,), grid=SMALL_GRID, jobs=3
        )
        assert chaos.rows_to_json(serial) == chaos.rows_to_json(parallel)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_report_stdout_identical_at_any_jobs(self):
        def capture(jobs):
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                report.run_report("smoke", ["fig8"], jobs=jobs)
            text = out.getvalue()
            # Everything above the timing line is the deterministic
            # artifact; the wall clock below it legitimately varies.
            return text[: text.index("report complete")]

        assert capture(1) == capture(4)


class TestRunCacheEndToEnd:
    def test_warm_sweep_runs_zero_simulations(self, tmp_path):
        cache = RunCache(str(tmp_path))
        cold = chaos.run(
            "smoke",
            algorithms=(Algorithm.DFTT,),
            grid=SMALL_GRID,
            cache=cache,
        )
        assert cache.stats()["stores"] == len(cold)

        warm_cache = RunCache(str(tmp_path))
        reset_simulation_counter()
        warm = chaos.run(
            "smoke",
            algorithms=(Algorithm.DFTT,),
            grid=SMALL_GRID,
            cache=warm_cache,
        )
        assert simulations_run() == 0
        assert warm_cache.stats() == {"hits": len(cold), "misses": 0, "stores": 0}
        assert pickle.dumps(cold) == pickle.dumps(warm)

    def test_cached_result_matches_fresh_field_for_field(self, tmp_path):
        config = system_config(get_scale("smoke"), Algorithm.DFTT, 3)
        fresh, _extras = execute_cell(config)
        cache = RunCache(str(tmp_path))
        first = cached_run(config, cache)
        second = cached_run(config, cache)
        assert pickle.dumps(fresh) == pickle.dumps(first)
        # The cache-served copy is a pickle round trip: equal in every
        # field (byte-for-byte per field -- whole-object dumps can differ
        # only in the interpreter's string-interning memo layout, never
        # in content).
        assert second == fresh
        for field in dataclasses.fields(fresh):
            assert pickle.dumps(getattr(second, field.name)) == pickle.dumps(
                getattr(fresh, field.name)
            ), field.name
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_cache_respects_jobs_boundary(self, tmp_path):
        preset = get_scale("smoke")
        configs = [
            system_config(preset, Algorithm.DFTT, n, seed_offset=i)
            for i, n in enumerate(preset.node_grid)
        ]
        cache = RunCache(str(tmp_path))
        cold = run_configs(configs, jobs=2, cache=cache)
        warm = run_configs(configs, jobs=2, cache=cache)
        assert cache.hits == len(configs)
        assert cold == warm


class TestWorkerStateReset:
    def test_dirty_tuple_counter_does_not_leak_into_a_cell(self):
        config = system_config(get_scale("smoke"), Algorithm.DFTT, 3)
        clean, _ = execute_cell(config)
        # Simulate a polluted process: mint ids so the global sequence
        # is far from zero, then run again.  execute_cell must reset.
        for _ in range(100):
            StreamTuple(stream=StreamId.R, key=1, origin_node=0, arrival_index=0)
        dirty, _ = execute_cell(config)
        assert pickle.dumps(clean) == pickle.dumps(dirty)

    def test_simulation_counter_tracks_executions(self):
        config = system_config(get_scale("smoke"), Algorithm.DFTT, 3)
        reset_simulation_counter()
        execute_cell(config)
        execute_cell(config)
        assert simulations_run() == 2
