"""Integration tests: several concurrent join queries on one system."""

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import DistributedJoinSystem, run_experiment
from repro.errors import ConfigurationError


def multi_config(num_queries, algorithm=Algorithm.DFTT, **overrides):
    defaults = dict(
        num_nodes=4,
        window_size=96,
        num_queries=num_queries,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=2400, domain=512, arrival_rate=240.0),
        seed=37,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def test_validation():
    with pytest.raises(ConfigurationError):
        multi_config(0).validate()
    with pytest.raises(ConfigurationError):
        multi_config(
            5, workload=WorkloadConfig(total_tuples=3, domain=512)
        ).validate()


def test_single_query_unchanged_by_default():
    config = multi_config(1)
    result = run_experiment(config)
    assert result.per_query[0]["truth_pairs"] == result.truth_pairs
    assert len(result.per_query) == 1


def test_queries_split_the_workload():
    result = run_experiment(multi_config(3))
    assert len(result.per_query) == 3
    assert result.tuples_arrived == 2400
    per_query_truth = [entry["truth_pairs"] for entry in result.per_query]
    assert all(truth > 0 for truth in per_query_truth)
    assert sum(entry["reported_pairs"] for entry in result.per_query) == (
        result.reported_pairs
    )


def test_queries_are_isolated():
    """No cross-query joins: each node's query runtimes are disjoint."""
    system = DistributedJoinSystem(multi_config(2))
    result = system.run()
    for node in system.nodes:
        assert node.query_ids == (0, 1)
        assert node.query(0).join is not node.query(1).join
        assert node.query(0).policy is not node.query(1).policy
    # The oracles never saw each other's tuples.
    assert (
        system.oracles[0].tuples_observed + system.oracles[1].tuples_observed
        == result.tuples_arrived
    )


@pytest.mark.parametrize("algorithm", [Algorithm.BASE, Algorithm.BLOOM, Algorithm.SKCH])
def test_all_policies_support_multi_query(algorithm):
    result = run_experiment(multi_config(2, algorithm=algorithm))
    assert result.truth_pairs > 0
    assert 0.0 <= result.epsilon <= 1.0


def test_base_remains_exact_per_query_at_light_load():
    result = run_experiment(
        multi_config(
            2,
            algorithm=Algorithm.BASE,
            workload=WorkloadConfig(total_tuples=1600, domain=512, arrival_rate=120.0),
        )
    )
    for entry in result.per_query:
        assert entry["epsilon"] < 0.02


def test_queries_share_node_capacity():
    """Same total offered load, more queries => comparable total service
    demand (windows are per-query, so selectivity differs, but the system
    must neither deadlock nor starve any query)."""
    result = run_experiment(multi_config(4))
    busiest = max(d["max_queue_depth"] for d in result.node_diagnostics.values())
    assert busiest < 500  # bounded backlog
    for entry in result.per_query:
        assert entry["reported_pairs"] > 0
