"""Golden-pinned chaos sweep: determinism under injected faults.

Mirrors ``test_fastpath_determinism.py`` at the experiment layer: the
smoke-scale sweep at the preset seed (2007) must produce *byte-identical*
canonical ChaosRow JSON across two in-process runs -- fault injection,
reliable transport, telemetry read-out and all.  On top of the pin, the
rows must tell the chaos story: faulted cells lose messages, the failure
detector fires and recovers, and the persisted form round-trips exactly.
"""

import pytest

from repro.config import Algorithm
from repro.experiments import chaos
from repro.experiments.persistence import load_chaos_rows, save_chaos_rows
from repro.experiments.regression import compare_chaos

GRID = chaos.parse_grid("clean; squall@loss=0.25; storm@loss=0.5,part=2s,crash=1")
ALGORITHMS = (Algorithm.BASE, Algorithm.DFTT, Algorithm.SKCH)


@pytest.fixture(scope="module")
def sweep():
    return chaos.run("smoke", algorithms=ALGORITHMS, grid=GRID)


def test_smoke_scale_uses_the_pinned_seed(sweep):
    assert {row.seed for row in sweep} == {2007}


def test_sweep_covers_the_full_grid(sweep):
    assert len(sweep) == len(ALGORITHMS) * len(GRID)
    assert {row.algorithm for row in sweep} == {a.value for a in ALGORITHMS}
    assert chaos.level_order(sweep) == ["clean", "squall", "storm"]


def test_rerun_is_byte_identical(sweep):
    again = chaos.run("smoke", algorithms=ALGORITHMS, grid=GRID)
    assert chaos.rows_to_json(again) == chaos.rows_to_json(sweep)


def test_chaos_cells_actually_saw_chaos(sweep):
    for row in sweep:
        if row.level == "clean":
            assert row.fault_events == 0
            assert row.messages_blocked == 0
            assert row.bytes_lost == 0
        else:
            assert row.fault_events > 0
            assert row.messages_blocked > 0
            assert row.bytes_lost > 0
        assert 0.0 <= row.epsilon <= 1.0
        assert row.total_bytes > 0


def test_storm_cells_detect_and_recover(sweep):
    storms = [row for row in sweep if row.level == "storm"]
    assert storms
    for row in storms:
        # The crash + partition outlast the suspect timeout: every
        # algorithm's mesh must notice, recover, and resync.
        assert row.failures_detected > 0
        assert row.recoveries > 0
        assert row.recovery_latency_mean_s > 0
        assert row.recovery_latency_max_s >= row.recovery_latency_mean_s
        assert row.resyncs > 0
        assert row.local_arrivals_dropped > 0  # the crashed node's arrivals


def test_persisted_rows_round_trip_exactly(sweep, tmp_path):
    path = tmp_path / "chaos.json"
    save_chaos_rows(sweep, path)
    assert load_chaos_rows(path) == list(sweep)
    # The file itself is the canonical bytes the CI golden job diffs.
    assert path.read_text() == chaos.rows_to_json(sweep)


def test_sweep_gates_cleanly_against_itself(sweep):
    report = compare_chaos(sweep, chaos.run("smoke", algorithms=ALGORITHMS, grid=GRID))
    assert report.passed
    assert all(drift.relative_change == 0.0 for drift in report.drifts)
