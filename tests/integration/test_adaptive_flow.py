"""Tests for resource-aware (adaptive) flow budgets."""

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.flow import FlowController, FlowSettings
from repro.core.system import run_experiment
from repro.errors import ConfigurationError


class TestCongestionScale:
    def test_disabled_by_default(self):
        settings = FlowSettings()
        assert settings.congestion_scale(10_000) == 1.0

    def test_piecewise_linear_mapping(self):
        settings = FlowSettings(adaptive=True, congestion_low=4, congestion_high=32)
        assert settings.congestion_scale(0) == 1.0
        assert settings.congestion_scale(4) == 1.0
        assert settings.congestion_scale(18) == pytest.approx(0.5)
        assert settings.congestion_scale(32) == 0.0
        assert settings.congestion_scale(100) == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            FlowSettings(congestion_low=10, congestion_high=5)
        with pytest.raises(ConfigurationError):
            FlowSettings(congestion_low=-1)

    def test_budget_never_drops_below_o1_floor(self):
        settings = FlowSettings(budget_fraction=1.0, adaptive=True)
        assert settings.budget(16, congestion_scale=0.0) == 1.0
        assert settings.budget(16, congestion_scale=1.0) == pytest.approx(4.0)
        assert settings.budget(16, congestion_scale=0.5) == pytest.approx(2.5)

    def test_controller_applies_observed_depth(self):
        settings = FlowSettings(
            budget_fraction=1.0, adaptive=True, congestion_low=4, congestion_high=32
        )
        controller = FlowController(16, settings)
        assert controller.budget == pytest.approx(4.0)
        controller.observe_queue_depth(32)
        assert controller.budget == 1.0
        controller.observe_queue_depth(0)
        assert controller.budget == pytest.approx(4.0)


class TestAdaptiveSystem:
    def _config(self, adaptive, rate):
        return SystemConfig(
            num_nodes=6,
            window_size=128,
            policy=PolicyConfig(
                algorithm=Algorithm.DFTT,
                kappa=8.0,
                flow=FlowSettings(
                    adaptive=adaptive, congestion_low=2, congestion_high=16
                ),
            ),
            workload=WorkloadConfig(total_tuples=3000, domain=1024, arrival_rate=rate),
            seed=61,
        )

    def test_adaptive_sheds_messages_under_overload(self):
        static = run_experiment(self._config(adaptive=False, rate=2500.0))
        adaptive = run_experiment(self._config(adaptive=True, rate=2500.0))
        assert adaptive.messages_per_arrival < static.messages_per_arrival

    def test_adaptive_drains_faster_under_overload(self):
        static = run_experiment(self._config(adaptive=False, rate=2500.0))
        adaptive = run_experiment(self._config(adaptive=True, rate=2500.0))
        assert adaptive.duration_seconds < static.duration_seconds

    def test_adaptive_is_neutral_at_light_load(self):
        static = run_experiment(self._config(adaptive=False, rate=150.0))
        adaptive = run_experiment(self._config(adaptive=True, rate=150.0))
        assert adaptive.epsilon == pytest.approx(static.epsilon, abs=0.06)
        assert adaptive.messages_per_arrival == pytest.approx(
            static.messages_per_arrival, rel=0.2
        )
