"""Integration tests: both SKCH sketch variants through the runtime."""

import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import run_experiment
from repro.errors import ConfigurationError


def skch_config(variant):
    return SystemConfig(
        num_nodes=4,
        window_size=128,
        policy=PolicyConfig(algorithm=Algorithm.SKCH, kappa=8.0, sketch_variant=variant),
        workload=WorkloadConfig(total_tuples=1500, domain=1024, arrival_rate=250.0),
        seed=23,
    )


@pytest.mark.parametrize("variant", ["plain", "fast"])
def test_variant_runs_with_sane_metrics(variant):
    result = run_experiment(skch_config(variant))
    assert result.truth_pairs > 0
    assert 0.0 <= result.epsilon <= 1.0
    assert result.reported_pairs <= result.truth_pairs
    assert result.traffic["summary_bytes"] > 0


def test_variants_produce_comparable_accuracy():
    plain = run_experiment(skch_config("plain"))
    fast = run_experiment(skch_config("fast"))
    # Same estimation target at the same wire size: errors in the same band.
    assert abs(plain.epsilon - fast.epsilon) < 0.2


def test_invalid_variant_rejected():
    with pytest.raises(ConfigurationError):
        skch_config("turbo").validate()
