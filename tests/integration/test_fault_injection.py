"""Fault-injection tests: the system degrades gracefully under message loss."""

import math

import numpy as np
import pytest

from repro.config import Algorithm, PolicyConfig, SystemConfig, WorkloadConfig
from repro.core.system import run_experiment
from repro.errors import ConfigurationError
from repro.net.link import Link, LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler


def lossy_config(algorithm, loss):
    return SystemConfig(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=1500, domain=512, arrival_rate=120.0),
        link=LinkSpec(
            bandwidth_bps=math.inf,
            latency_min_s=0.02,
            latency_max_s=0.1,
            loss_probability=loss,
        ),
        seed=31,
    )


class TestLinkLoss:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(loss_probability=1.0).validate()
        with pytest.raises(ConfigurationError):
            LinkSpec(loss_probability=-0.1).validate()

    def test_lossless_by_default(self):
        delivered = []
        scheduler = EventScheduler()
        link = Link(scheduler, LinkSpec(), delivered.append, rng=np.random.default_rng(0))
        for _ in range(50):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        scheduler.run()
        assert len(delivered) == 50
        assert link.messages_lost == 0

    def test_loss_rate_is_respected(self):
        delivered = []
        scheduler = EventScheduler()
        link = Link(
            scheduler,
            LinkSpec(loss_probability=0.3),
            delivered.append,
            rng=np.random.default_rng(1),
        )
        for _ in range(1000):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        scheduler.run()
        assert link.messages_lost + len(delivered) == 1000
        assert 0.25 < link.messages_lost / 1000 < 0.35

    def test_lost_messages_still_cost_bandwidth(self):
        scheduler = EventScheduler()
        link = Link(
            scheduler,
            LinkSpec(loss_probability=0.5, latency_min_s=0.0, latency_max_s=0.0),
            lambda m: None,
            rng=np.random.default_rng(2),
        )
        for _ in range(20):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        assert link.busy_seconds > 0
        assert link.bytes_sent == 20 * 72


class TestSystemUnderLoss:
    def test_base_loses_exactly_the_dropped_matches(self):
        clean = run_experiment(lossy_config(Algorithm.BASE, 0.0))
        lossy = run_experiment(lossy_config(Algorithm.BASE, 0.2))
        assert clean.epsilon < 0.02
        assert lossy.epsilon > clean.epsilon
        assert lossy.epsilon < 0.5  # local + surviving-copy results remain

    @pytest.mark.parametrize("algorithm", [Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM])
    def test_filtered_algorithms_survive_loss(self, algorithm):
        result = run_experiment(lossy_config(algorithm, 0.2))
        assert result.truth_pairs > 0
        assert result.reported_pairs > 0
        assert 0.0 <= result.epsilon <= 1.0

    def test_error_monotone_in_loss_rate(self):
        errors = [
            run_experiment(lossy_config(Algorithm.BASE, loss)).epsilon
            for loss in (0.0, 0.3, 0.6)
        ]
        assert errors[0] <= errors[1] <= errors[2]
