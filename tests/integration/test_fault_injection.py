"""Fault-injection tests: the system degrades gracefully under message loss."""

import numpy as np
import pytest

from repro.analysis import loss_matrix, lost_byte_matrix
from repro.config import Algorithm
from repro.core.system import DistributedJoinSystem, run_experiment
from repro.errors import ConfigurationError
from repro.net.faults import FaultPlan
from repro.net.link import Link, LinkSpec
from repro.net.message import Message, MessageKind
from repro.net.simulator import EventScheduler


class TestLinkLoss:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(loss_probability=1.0).validate()
        with pytest.raises(ConfigurationError):
            LinkSpec(loss_probability=-0.1).validate()

    def test_lossless_by_default(self):
        delivered = []
        scheduler = EventScheduler()
        link = Link(scheduler, LinkSpec(), delivered.append, rng=np.random.default_rng(0))
        for _ in range(50):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        scheduler.run()
        assert len(delivered) == 50
        assert link.messages_lost == 0
        assert link.bytes_lost == 0

    def test_loss_rate_is_respected(self):
        delivered = []
        scheduler = EventScheduler()
        link = Link(
            scheduler,
            LinkSpec(loss_probability=0.3),
            delivered.append,
            rng=np.random.default_rng(1),
        )
        for _ in range(1000):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        scheduler.run()
        assert link.messages_lost + len(delivered) == 1000
        assert 0.25 < link.messages_lost / 1000 < 0.35
        assert link.bytes_lost == link.messages_lost * 72

    def test_lost_messages_still_cost_bandwidth(self):
        scheduler = EventScheduler()
        link = Link(
            scheduler,
            LinkSpec(loss_probability=0.5, latency_min_s=0.0, latency_max_s=0.0),
            lambda m: None,
            rng=np.random.default_rng(2),
        )
        for _ in range(20):
            link.send(Message(kind=MessageKind.TUPLE, source=0, destination=1))
        assert link.busy_seconds > 0
        assert link.bytes_sent == 20 * 72


class TestSystemUnderLoss:
    def test_base_loses_exactly_the_dropped_matches(self, lossy_config):
        clean = run_experiment(lossy_config(Algorithm.BASE, 0.0))
        lossy = run_experiment(lossy_config(Algorithm.BASE, 0.2))
        assert clean.epsilon < 0.02
        assert lossy.epsilon > clean.epsilon
        assert lossy.epsilon < 0.5  # local + surviving-copy results remain

    @pytest.mark.parametrize("algorithm", [Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM])
    def test_filtered_algorithms_survive_loss(self, lossy_config, algorithm):
        result = run_experiment(lossy_config(algorithm, 0.2))
        assert result.truth_pairs > 0
        assert result.reported_pairs > 0
        assert 0.0 <= result.epsilon <= 1.0

    def test_error_monotone_in_loss_rate(self, lossy_config):
        errors = [
            run_experiment(lossy_config(Algorithm.BASE, loss)).epsilon
            for loss in (0.0, 0.3, 0.6)
        ]
        assert errors[0] <= errors[1] <= errors[2]


class TestLossAccounting:
    """Satellite fix: in-transit drops surface in stats and run results."""

    def test_run_result_reports_losses(self, lossy_config):
        result = run_experiment(lossy_config(Algorithm.BASE, 0.3))
        assert result.messages_lost > 0
        assert result.traffic["messages_lost"] == result.messages_lost
        assert result.traffic["bytes_lost"] > 0
        # Lost messages were sent (serialized) before dying in transit.
        assert result.messages_lost < result.traffic["total_messages"]

    def test_clean_run_reports_zero_losses(self, lossy_config):
        result = run_experiment(lossy_config(Algorithm.BASE, 0.0))
        assert result.messages_lost == 0
        assert result.traffic["bytes_lost"] == 0

    def test_loss_matrices(self, lossy_config):
        system = DistributedJoinSystem(lossy_config(Algorithm.BASE, 0.3))
        system.run()
        losses = loss_matrix(system.network)
        lost_bytes = lost_byte_matrix(system.network)
        assert losses.sum() == system.network.stats.messages_lost
        assert lost_bytes.sum() == system.network.stats.bytes_lost
        assert np.all(np.diag(losses) == 0)
        # Per-sender stats partition the same totals.
        assert (
            sum(s.messages_lost for s in system.network.per_sender_stats.values())
            == system.network.stats.messages_lost
        )

    def test_fault_blocked_messages_are_accounted_as_lost(self, lossy_config):
        plan = FaultPlan.parse("outage@t=1,d=2,link=0-1,link=0-2,link=0-3", num_nodes=4)
        result = run_experiment(lossy_config(Algorithm.BASE, 0.0, faults=plan))
        assert result.faults["messages_blocked"] > 0
        assert result.messages_lost >= result.faults["messages_blocked"]
        assert result.traffic["bytes_lost"] > 0
