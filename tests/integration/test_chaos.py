"""Chaos suite: every fault class, end to end, with the reliable transport on.

Each case runs the full 4-node system under a seeded fault plan and checks
the tentpole guarantees: the run completes with every queue drained, the
join error stays within a bounded distance of the fault-free baseline, the
recovery machinery actually fired (class-specific counters are nonzero),
and the whole thing is byte-deterministic for a fixed seed + plan.
"""

import pytest

from repro.config import Algorithm
from repro.core.system import DistributedJoinSystem
from repro.net.faults import FaultPlan
from repro.net.message import MessageKind
from repro.net.reliable import ReliabilitySettings

# Allowed epsilon degradation over the fault-free run of the same
# algorithm.  The plans below knock out a quarter to a half of the mesh
# for a few seconds of a ~12.5 s workload; empirically they cost < 0.1.
EPSILON_BOUND = 0.35

RELIABLE = ReliabilitySettings(enabled=True)

# kind -> (plan spec, counters that must be nonzero for that fault class)
FAULT_CASES = {
    "loss_burst": (
        "loss@t=3,d=5,p=0.6",
        # Random drops leave summaries stale -> forced broadcasts; the
        # drops themselves surface as blocked messages.
        ["faults:messages_blocked", "reliability:forced_broadcast_sends"],
    ),
    "link_outage": (
        # Sever every link touching node 1, both directions, past the
        # suspect timeout: peers must detect, degrade, and resync.
        "outage@t=3,d=3,link=1-0,link=1-2,link=1-3,link=0-1,link=2-1,link=3-1",
        [
            "faults:messages_blocked",
            "reliability:retransmits",
            "reliability:failures_detected",
            "reliability:recoveries",
            "reliability:resyncs",
        ],
    ),
    "partition": (
        "partition@t=3,d=3,nodes=0+1",
        [
            "faults:messages_blocked",
            "reliability:retransmits",
            "reliability:failures_detected",
            "reliability:recoveries",
            "reliability:resyncs",
        ],
    ),
    "latency_spike": (
        # Slower links delay but never destroy messages, so the control
        # plane keeps up without retransmitting; only the bound applies.
        "latency@t=3,d=4,extra=0.6",
        [],
    ),
    "node_crash": (
        "crash@t=3,d=3,node=2",
        [
            "faults:messages_blocked",
            "faults:local_arrivals_dropped",
            "reliability:failures_detected",
            "reliability:recoveries",
            "reliability:resyncs",
        ],
    ),
}

ALGORITHMS = [Algorithm.DFT, Algorithm.DFTT]

_baseline_cache = {}


def fault_free_epsilon(lossy_config, algorithm):
    if algorithm not in _baseline_cache:
        result = DistributedJoinSystem(
            lossy_config(algorithm, reliability=RELIABLE)
        ).run()
        _baseline_cache[algorithm] = result.epsilon
    return _baseline_cache[algorithm]


def run_chaos(lossy_config, algorithm, spec):
    config = lossy_config(
        algorithm,
        faults=FaultPlan.parse(spec, num_nodes=4),
        reliability=RELIABLE,
    )
    system = DistributedJoinSystem(config)
    result = system.run()
    return system, result


def counter(result, path):
    section, key = path.split(":")
    return getattr(result, section).get(key, 0.0)


class TestChaos:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.value)
    @pytest.mark.parametrize("fault", sorted(FAULT_CASES))
    def test_run_survives_fault(self, lossy_config, fault, algorithm):
        spec, must_fire = FAULT_CASES[fault]
        system, result = run_chaos(lossy_config, algorithm, spec)

        # Completion: the scheduler drained, nothing is stuck in a queue.
        assert all(node.queue_depth == 0 for node in system.nodes)
        assert result.truth_pairs > 0
        assert result.reported_pairs > 0

        # Bounded degradation over the fault-free run.
        baseline = fault_free_epsilon(lossy_config, algorithm)
        assert result.epsilon <= baseline + EPSILON_BOUND

        # The recovery machinery for this fault class actually engaged.
        for path in must_fire:
            assert counter(result, path) > 0, "%s stayed zero under %s" % (path, fault)

    def test_identical_seed_and_plan_reproduce_exactly(self, lossy_config):
        spec = FAULT_CASES["partition"][0]
        _, first = run_chaos(lossy_config, Algorithm.DFTT, spec)
        _, second = run_chaos(lossy_config, Algorithm.DFTT, spec)
        assert first.epsilon == second.epsilon
        assert first.truth_pairs == second.truth_pairs
        assert first.reported_pairs == second.reported_pairs
        assert first.traffic == second.traffic
        assert first.reliability == second.reliability
        assert first.faults == second.faults
        assert first.duration_seconds == second.duration_seconds

    def test_recovery_beats_no_recovery_under_partition(self, lossy_config):
        """The ARQ + resync machinery must earn its keep: under a partition
        the reliable run recovers state the best-effort run never gets back.
        """
        spec = FAULT_CASES["partition"][0]
        _, with_recovery = run_chaos(lossy_config, Algorithm.DFTT, spec)
        best_effort = DistributedJoinSystem(
            lossy_config(Algorithm.DFTT, faults=FaultPlan.parse(spec, num_nodes=4))
        ).run()
        assert with_recovery.reliability["resyncs"] > 0
        assert best_effort.reliability == {}
        # Not strictly ordered run-by-run, but recovery must never be
        # dramatically worse than doing nothing at all.
        assert with_recovery.epsilon <= best_effort.epsilon + 0.05

    def test_happy_path_is_untouched_without_opt_in(self, lossy_config):
        """Empty plan + reliability disabled: zero wire-protocol drift."""
        system = DistributedJoinSystem(lossy_config(Algorithm.DFTT))
        result = system.run()
        by_kind = system.network.stats.messages_by_kind
        assert by_kind[MessageKind.ACK.value] == 0
        assert by_kind[MessageKind.HEARTBEAT.value] == 0
        assert result.messages_lost == 0
        assert result.reliability == {}
        assert result.faults == {}
        assert result.retransmits == 0.0
        assert result.failures_detected == 0.0
