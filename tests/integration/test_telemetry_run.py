"""End-to-end telemetry: zero drift, determinism, full-run exports.

The telemetry contract has two halves this module pins down at the
system level:

* **Zero drift** -- enabling telemetry changes nothing observable about
  the simulation itself.  Sampling callbacks are pure reads on the
  scheduler's pre-scheduled ticks, so an instrumented run reproduces a
  dark run result-for-result.
* **Determinism** -- everything telemetry records is a function of the
  seed and the simulated clock, so the same configuration exports
  byte-identical JSONL/Chrome-trace/CSV files every time.
"""

import dataclasses
import io
import json

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    TelemetrySettings,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem
from repro.telemetry import export_all, validate_chrome_trace
from repro.net.trace import OUTCOME_DELIVERED


def telemetry_config(enabled=True, dashboard=False):
    return SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=4.0),
        workload=WorkloadConfig(
            kind=WorkloadKind.ZIPF,
            total_tuples=900,
            domain=512,
            arrival_rate=150.0,
        ),
        telemetry=TelemetrySettings(enabled=enabled, dashboard=dashboard),
        seed=19,
    )


def run_system(config):
    system = DistributedJoinSystem(config)
    return system, system.run()


class TestZeroDrift:
    def test_enabled_run_matches_dark_run(self):
        _, dark = run_system(telemetry_config(enabled=False))
        _, lit = run_system(telemetry_config(enabled=True))
        assert lit.summary() == dark.summary()
        assert lit.traffic == dark.traffic
        assert lit.messages_by_kind == dark.messages_by_kind
        assert lit.node_diagnostics == dark.node_diagnostics
        assert lit.throughput_series == dark.throughput_series

    def test_dark_run_has_no_hub_but_still_a_manifest(self):
        system, result = run_system(telemetry_config(enabled=False))
        assert system.telemetry is None
        assert result.telemetry == {}
        assert result.manifest["seed"] == 19
        assert result.manifest["telemetry"]["enabled"] is False


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def run(self):
        return run_system(telemetry_config())

    def test_summary_attached_to_result(self, run):
        _, result = run
        assert result.telemetry["events_emitted"] > 0
        assert result.telemetry["samples_taken"] > 0
        assert result.telemetry["instruments"] > 0
        assert result.manifest["telemetry"]["enabled"] is True

    def test_expected_instruments_exist(self, run):
        system, _ = run
        registry = system.telemetry.registry
        assert registry.get("repro_net_messages_total", kind="tuple").value > 0
        assert registry.get("repro_node_tuples_processed", node=0).value > 0
        assert registry.get("repro_sched_events_processed").value > 0
        fanout = registry.get("repro_node_fanout", node=0)
        assert fanout is not None and fanout.count > 0
        # Counters snapshotted from TrafficStats agree with the stats view.
        stats = system.network.stats
        assert (
            registry.get("repro_traffic_messages_total", kind="tuple").value
            == stats.messages_by_kind.get("tuple", 0)
        )

    def test_events_cover_every_layer(self, run):
        system, _ = run
        categories = system.telemetry.counts_by_category()
        assert categories.get("net", 0) > 0
        assert categories.get("node", 0) > 0
        assert categories.get("summary", 0) > 0

    def test_time_series_sampled_on_simulated_clock(self, run):
        system, result = run
        series = system.telemetry.registry.get(
            "repro_sched_events_processed"
        ).series
        times = [time for time, _ in series]
        assert times == sorted(times)
        assert len(times) == len(set(times))
        settings = system.config.telemetry
        assert times[0] == settings.sample_interval_s
        # The sampling horizon deliberately outlives the drain so the
        # run's tail stays visible; observation ticks never stretch the
        # reported duration.
        assert times[-1] >= result.duration_seconds
        assert system.scheduler.material_now == result.duration_seconds

    def test_message_trace_marks_outcomes(self, run):
        system, _ = run
        trace = system.telemetry.message_trace
        assert system.network.trace is trace
        counts = trace.counts_by_outcome()
        # Lossless run: every retained record reached its destination.
        assert set(counts) == {OUTCOME_DELIVERED}

    def test_events_carry_no_raw_message_ids(self, run):
        system, _ = run
        assert all(
            "message_id" not in event.attrs
            for event in system.telemetry.events()
        )


class TestDeterministicExports:
    def test_exports_are_byte_identical_across_runs(self, tmp_path):
        directories = []
        for name in ("a", "b"):
            system, result = run_system(telemetry_config())
            directory = tmp_path / name
            export_all(system.telemetry, directory, manifest=result.manifest)
            directories.append(directory)
        first, second = directories
        compared = 0
        for path in sorted(first.iterdir()):
            assert path.read_bytes() == (second / path.name).read_bytes(), path.name
            compared += 1
        assert compared == 5

    def test_exported_trace_passes_the_ci_gate(self, tmp_path):
        system, result = run_system(telemetry_config())
        paths = export_all(system.telemetry, tmp_path, manifest=result.manifest)
        document = json.loads(paths["chrome_trace"].read_text())
        counts = validate_chrome_trace(document)
        assert counts.get("X", 0) > 0
        assert counts.get("i", 0) > 0
        assert document["otherData"]["seed"] == 19
        manifest_line = json.loads(
            paths["jsonl"].read_text().splitlines()[0]
        )
        assert manifest_line["type"] == "manifest"
        assert manifest_line["manifest"] == result.manifest


class TestDashboard:
    def test_dashboard_renders_frames_without_perturbing_the_run(self):
        system = DistributedJoinSystem(telemetry_config(dashboard=True))
        buffer = io.StringIO()
        system.dashboard.stream = buffer
        result = system.run()
        output = buffer.getvalue()
        assert system.dashboard.frames_rendered > 1
        assert "repro dashboard" in output
        assert "traffic:" in output
        assert "sparklines" in output
        assert "sched_pending_events" in output
        _, dark = run_system(telemetry_config(enabled=False))
        assert result.summary() == dark.summary()


class TestHarnessWiring:
    def test_system_config_threads_telemetry_through(self):
        from repro.experiments.harness import SCALES, system_config

        config = system_config(
            SCALES["smoke"],
            Algorithm.DFTT,
            num_nodes=3,
            telemetry=True,
            telemetry_sample_interval_s=0.5,
        )
        assert config.telemetry.enabled
        assert config.telemetry.sample_interval_s == 0.5
