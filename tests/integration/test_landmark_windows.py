"""Integration tests: landmark windows through the full runtime."""

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WindowKind,
    WorkloadConfig,
)
from repro.core.system import run_experiment
from repro.errors import ConfigurationError


def landmark_config(algorithm=Algorithm.BASE, landmark_key=1, **overrides):
    defaults = dict(
        num_nodes=3,
        window_size=128,
        window_kind=WindowKind.LANDMARK,
        landmark_key=landmark_key,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(
            total_tuples=1500, domain=64, arrival_rate=150.0, alpha=0.8
        ),
        seed=47,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def test_config_validation():
    landmark_config().validate()
    with pytest.raises(ConfigurationError):
        landmark_config(landmark_key=0).validate()
    with pytest.raises(ConfigurationError):
        landmark_config(landmark_key=9999).validate()
    with pytest.raises(ConfigurationError):
        SystemConfig(landmark_key=5).validate()  # landmark key without LANDMARK


def test_base_is_near_exact_with_landmark_windows():
    """Landmark windows reset *abruptly*, and a reset that happens while
    copies are in flight races the discovery of pairs completed just
    before it -- an inherent cost of landmark semantics in a distributed
    setting, not a protocol defect.  With a hot landmark (key 1 at
    alpha = 0.8 resets every few arrivals) BASE still reports the vast
    majority of the exact result."""
    result = run_experiment(landmark_config())
    assert result.truth_pairs > 0
    assert result.epsilon < 0.12


@pytest.mark.parametrize("algorithm", [Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM])
def test_filtered_algorithms_run(algorithm):
    result = run_experiment(landmark_config(algorithm))
    assert result.truth_pairs > 0
    assert 0.0 <= result.epsilon <= 1.0


def test_landmark_resets_shrink_the_result_set():
    """A frequently-hit landmark keeps windows short, so the exact result
    is much smaller than with count windows of the same cap."""
    with_landmark = run_experiment(landmark_config(landmark_key=1))
    count_config = landmark_config().with_overrides(
        window_kind=WindowKind.COUNT, landmark_key=0
    )
    without = run_experiment(count_config)
    assert with_landmark.truth_pairs < without.truth_pairs * 0.8


def test_rare_landmark_approaches_count_behavior():
    """A landmark that (almost) never fires leaves the cap in charge."""
    rare = run_experiment(landmark_config(landmark_key=64))  # coldest key
    count_config = landmark_config().with_overrides(
        window_kind=WindowKind.COUNT, landmark_key=0
    )
    count = run_experiment(count_config)
    assert rare.truth_pairs == pytest.approx(count.truth_pairs, rel=0.35)
