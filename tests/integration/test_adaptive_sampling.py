"""Adaptive telemetry sample cadence.

Long runs used to overflow the per-instrument ring buffers: at a fixed
1 s tick a multi-hour simulated span takes far more samples than
``series_capacity`` holds, so exports silently kept only the tail.  With
``adaptive_sampling`` the interval stretches by the smallest integer
factor that makes the rings cover the whole span; short runs keep their
exact tick set, byte for byte.
"""

import dataclasses

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    TelemetrySettings,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import DistributedJoinSystem


def config(capacity, adaptive, arrival_rate, total_tuples=600):
    return SystemConfig(
        num_nodes=3,
        window_size=64,
        policy=PolicyConfig(algorithm=Algorithm.DFTT, kappa=4.0),
        workload=WorkloadConfig(
            kind=WorkloadKind.ZIPF,
            total_tuples=total_tuples,
            domain=256,
            arrival_rate=arrival_rate,
        ),
        telemetry=TelemetrySettings(
            enabled=True,
            series_capacity=capacity,
            adaptive_sampling=adaptive,
        ),
        seed=23,
    )


def run(cfg):
    system = DistributedJoinSystem(cfg)
    result = system.run()
    return system, result


class TestLongRuns:
    def test_rings_cover_the_whole_span(self):
        # 600 tuples at 10/s -> ~60 s span + 5 s margin, but only 16
        # slots per series: the fixed cadence would drop the first ~50
        # samples of every ring.
        system, result = run(config(capacity=16, adaptive=True, arrival_rate=10.0))
        registry = system.telemetry.registry
        assert 0 < registry.samples_taken <= 16
        first_ticks = []
        for instrument in registry.instruments():
            if instrument.series is None:
                continue
            assert instrument.series.dropped == 0
            first_ticks.append(next(iter(instrument.series))[0])
        # Coverage starts at the first stretched tick, not at the tail
        # of an overflowed ring.  (Lazily created instruments join the
        # sampling later; the always-on ones must be there from the
        # first tick.)
        assert min(first_ticks) <= result.duration_seconds / 4

    def test_fixed_cadence_overflows_without_it(self):
        system, _ = run(config(capacity=16, adaptive=False, arrival_rate=10.0))
        registry = system.telemetry.registry
        assert registry.samples_taken > 16
        dropped = [
            instrument.series.dropped
            for instrument in registry.instruments()
            if instrument.series is not None
        ]
        assert any(value > 0 for value in dropped)


class TestShortRuns:
    def test_short_runs_are_untouched(self):
        # 600 tuples at 200/s -> ~3 s span: well inside the rings, so
        # the adaptive path must schedule the exact same ticks.
        adaptive_on = run(config(capacity=4096, adaptive=True, arrival_rate=200.0))
        adaptive_off = run(config(capacity=4096, adaptive=False, arrival_rate=200.0))
        on_registry = adaptive_on[0].telemetry.registry
        off_registry = adaptive_off[0].telemetry.registry
        assert on_registry.samples_taken == off_registry.samples_taken
        assert list(on_registry.series_rows()) == list(off_registry.series_rows())

    def test_adaptive_run_result_matches_dark_run(self):
        lit = run(config(capacity=16, adaptive=True, arrival_rate=10.0))[1]
        dark_config = dataclasses.replace(
            config(capacity=16, adaptive=True, arrival_rate=10.0),
            telemetry=TelemetrySettings(enabled=False),
        )
        dark = run(dark_config)[1]
        assert lit.summary() == dark.summary()
