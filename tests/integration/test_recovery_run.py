"""Integration tests: checkpoint/restart recovery end to end.

A seed-pinned three-node run crashes node 2 mid-stream with a restart
scheduled (``downtime=``).  With recovery enabled the node must climb
back to LIVE through the full DOWN -> RESTORING -> CATCHING_UP ladder,
replay its locally logged arrivals, and win back join accuracy relative
to the same seed with recovery disabled -- and both runs must be
byte-identical across reruns, because the whole subsystem is built on
the no-new-randomness rule.
"""

import dataclasses
import json

import pytest

from repro.config import Algorithm
from repro.core.system import run_experiment
from repro.experiments.harness import get_scale, system_config
from repro.experiments.persistence import result_to_dict
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliabilitySettings
from repro.recovery import RecoveryPhase, RecoverySettings
from repro.telemetry import (
    JsonlStreamWriter,
    build_manifest,
    export_jsonl,
)

NUM_NODES = 3
CRASH_SPEC = "crash@t=2,d=1.5,node=2,downtime=1.5"

RECOVERY = RecoverySettings(enabled=True)


def make_config(recovery=None, faults_spec=CRASH_SPEC, telemetry=False):
    plan = (
        FaultPlan.parse(faults_spec, num_nodes=NUM_NODES)
        if faults_spec is not None
        else None
    )
    config = system_config(
        get_scale("smoke"),
        Algorithm.DFTT,
        num_nodes=NUM_NODES,
        kappa=16.0,
        total_tuples=1_500,
        telemetry=telemetry,
        faults=plan,
        reliability=ReliabilitySettings(enabled=True),
        recovery=recovery,
    )
    return dataclasses.replace(config, seed=7)


@pytest.fixture(scope="module")
def recovered_result():
    return run_experiment(make_config(recovery=RECOVERY))


@pytest.fixture(scope="module")
def legacy_result():
    return run_experiment(make_config(recovery=None))


class TestRejoin:
    def test_crashed_node_returns_to_live(self, recovered_result):
        recovery = recovered_result.recovery
        assert recovery["restarts"] == 1.0
        assert recovery["rejoins_clean"] + recovery["rejoins_degraded"] == 1.0

    def test_checkpoints_were_taken_and_are_durable(self, recovered_result):
        recovery = recovered_result.recovery
        assert recovery["checkpoints_taken"] > 0
        assert recovery["checkpoint_bytes"] > 0

    def test_logged_arrivals_are_replayed(self, recovered_result):
        recovery = recovered_result.recovery
        assert recovery["tuples_logged"] > 0
        assert recovery["tuples_replayed"] == recovery["tuples_logged"]
        assert recovery["replay_dropped"] == 0.0

    def test_rejoin_latency_is_bounded(self, recovered_result):
        # A rejoin can never take longer than restore + the catch-up
        # deadline; a clean rejoin typically beats the deadline by far.
        recovery = recovered_result.recovery
        bound = RECOVERY.restore_delay_s + RECOVERY.catchup_timeout_s + 1e-9
        assert 0.0 < recovery["rejoin_latency_max_s"] <= bound

    def test_legacy_crash_has_no_recovery_machinery(self, legacy_result):
        assert legacy_result.recovery == {}
        assert legacy_result.faults["local_arrivals_dropped"] > 0


class TestAccuracyReclaimed:
    def test_recovery_reports_strictly_more_pairs(
        self, recovered_result, legacy_result
    ):
        assert recovered_result.reported_pairs > legacy_result.reported_pairs

    def test_recovery_restores_ground_truth_coverage(
        self, recovered_result, legacy_result
    ):
        # Replay puts the crashed node's arrivals back in front of the
        # oracle, so the recovered truth must dominate the legacy one.
        assert recovered_result.truth_pairs > legacy_result.truth_pairs

    def test_epsilon_lower_on_a_common_truth(self, recovered_result, legacy_result):
        # Raw epsilons are measured against different truths (a legacy
        # crash shrinks the truth along with the report), so the honest
        # comparison scores both reports against the larger truth.
        truth = max(recovered_result.truth_pairs, legacy_result.truth_pairs)
        eps_on = abs(truth - recovered_result.reported_pairs) / truth
        eps_off = abs(truth - legacy_result.reported_pairs) / truth
        assert eps_on < eps_off


class TestRerunIdentity:
    def test_recovered_run_is_byte_identical(self, recovered_result):
        rerun = run_experiment(make_config(recovery=RECOVERY))
        first = json.dumps(result_to_dict(recovered_result), sort_keys=True)
        second = json.dumps(result_to_dict(rerun), sort_keys=True)
        assert first == second

    def test_legacy_run_is_byte_identical(self, legacy_result):
        rerun = run_experiment(make_config(recovery=None))
        first = json.dumps(result_to_dict(legacy_result), sort_keys=True)
        second = json.dumps(result_to_dict(rerun), sort_keys=True)
        assert first == second


class TestResultSerialization:
    def test_recovery_section_round_trips(self, recovered_result):
        from repro.experiments.persistence import result_from_dict

        payload = result_to_dict(recovered_result)
        assert payload["recovery"] == recovered_result.recovery
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored.recovery == recovered_result.recovery


class TestStreamedTelemetry:
    def test_stream_writer_matches_buffered_export(self, tmp_path):
        from repro.core.system import DistributedJoinSystem

        config = make_config(recovery=RECOVERY, telemetry=True)
        system = DistributedJoinSystem(config)
        manifest = build_manifest(config)
        streamed = tmp_path / "streamed.jsonl"
        with JsonlStreamWriter(streamed, manifest=manifest) as writer:
            system.telemetry.add_event_sink(writer.on_event)
            system.run()
        buffered = export_jsonl(system.telemetry, tmp_path / "buffered.jsonl", manifest)
        assert streamed.read_bytes() == buffered.read_bytes()
        assert writer.events_written == len(list(system.telemetry.events()))

    def test_recovery_phases_visible_in_machine_history(self):
        from repro.core.system import DistributedJoinSystem

        system = DistributedJoinSystem(make_config(recovery=RECOVERY))
        system.run()
        machine = system.nodes[2].recovery_machine
        assert machine is not None
        assert machine.phase is RecoveryPhase.LIVE
        phases = [phase for _, _, phase in machine.history]
        assert phases[:3] == [
            RecoveryPhase.DOWN,
            RecoveryPhase.RESTORING,
            RecoveryPhase.CATCHING_UP,
        ]
