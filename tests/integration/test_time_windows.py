"""Integration tests: time-based windows through the full runtime."""

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WindowKind,
    WorkloadConfig,
)
from repro.core.system import run_experiment
from repro.errors import ConfigurationError


def time_config(algorithm, window_seconds=2.0, **overrides):
    defaults = dict(
        num_nodes=4,
        window_size=128,  # cap for the DFT summaries
        window_kind=WindowKind.TIME,
        window_seconds=window_seconds,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(total_tuples=1500, domain=512, arrival_rate=150.0),
        seed=13,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        SystemConfig(window_kind=WindowKind.TIME).validate()  # no span
    with pytest.raises(ConfigurationError):
        SystemConfig(window_seconds=1.0).validate()  # span without TIME
    time_config(Algorithm.BASE).validate()


def test_base_is_exact_with_time_windows():
    result = run_experiment(time_config(Algorithm.BASE))
    assert result.truth_pairs > 0
    assert result.epsilon < 0.02


@pytest.mark.parametrize(
    "algorithm", [Algorithm.DFT, Algorithm.DFTT, Algorithm.BLOOM, Algorithm.SKCH]
)
def test_filtered_algorithms_run_with_time_windows(algorithm):
    result = run_experiment(time_config(algorithm))
    assert result.truth_pairs > 0
    assert 0.0 <= result.epsilon <= 1.0
    assert result.reported_pairs <= result.truth_pairs


def test_wider_span_yields_more_results():
    narrow = run_experiment(time_config(Algorithm.BASE, window_seconds=0.5))
    wide = run_experiment(time_config(Algorithm.BASE, window_seconds=4.0))
    assert wide.truth_pairs > narrow.truth_pairs


def test_time_window_population_tracks_rate_times_span():
    """At 150/s system-wide over 4 nodes with a 2 s span, each node's
    per-stream window should hover near 150/4/2 * 2 = 37.5 tuples."""
    from repro.core.system import DistributedJoinSystem

    system = DistributedJoinSystem(time_config(Algorithm.BASE))
    system.run()
    from repro.streams.tuples import StreamId

    populations = [
        len(node.join.window(stream))
        for node in system.nodes
        for stream in (StreamId.R, StreamId.S)
    ]
    mean_population = sum(populations) / len(populations)
    assert 10 < mean_population < 80
