"""Smoke tests for every table/figure harness (smoke scale)."""

import pytest

from repro.config import WorkloadKind
from repro.core.bounds import Budget
from repro.experiments import fig3, fig4, fig5, fig6, fig8, fig9, fig10, fig11, table1
from repro.experiments.harness import get_scale
from repro.errors import ConfigurationError


def test_get_scale_presets():
    assert get_scale("smoke").name == "smoke"
    assert get_scale("default").window_size >= get_scale("smoke").window_size
    with pytest.raises(ConfigurationError):
        get_scale("galactic")


class TestTable1:
    def test_shape(self):
        rows = table1.run(windows=(256, 1024), updates=30)
        assert [r.window_size for r in rows] == [256, 1024]
        for row in rows:
            # The full transform must be far costlier than incremental upkeep.
            assert row.full_dft_seconds > row.incremental_dft_seconds
            assert row.speedup_incremental > 1
        text = table1.format_result(rows)
        assert "iDFT" in text and "AGMS" in text


class TestFig3:
    def test_rows_and_rendering(self):
        rows = fig3.run(max_nodes=20)
        assert rows[0].num_nodes == 2
        assert rows[-1].num_nodes == 20
        final = rows[-1]
        assert final.error_tlog < final.error_t1
        assert final.messages_baseline > final.messages_tlog > final.messages_t1 - 1e-9
        assert "eps(T=1)" in fig3.format_result(rows)


class TestFig4:
    def test_zipf_bound_beats_uniform(self):
        rows = fig4.run(max_nodes=20)
        final = rows[-1]
        assert final.error_olog < final.uniform_error_olog
        assert "O(logN)" in fig4.format_result(rows)


class TestFig5:
    def test_lossless_at_generous_budget(self):
        series = fig5.run(window=1024, kappas=(64, 8), seed=3)
        by_kappa = {s.kappa: s for s in series}
        assert by_kappa[8].mean_squared_error <= by_kappa[64].mean_squared_error
        assert by_kappa[8].lossless_fraction >= by_kappa[64].lossless_fraction
        assert by_kappa[8].lossless_fraction > 0.8
        assert len(by_kappa[8].squared_errors) > 0
        assert "frac<0.25" in fig5.format_result(series)


class TestFig6:
    def test_chosen_kappa_meets_threshold(self):
        result = fig6.run(window=1024, kappas=(4, 16, 64, 256))
        chosen_points = [p for p in result.points if p.kappa == result.chosen_kappa]
        assert len(chosen_points) == 1
        assert "chosen kappa" in fig6.format_result(result)
        means = [p.mean_mse for p in result.points]
        assert means == sorted(means)  # error grows with compression


class TestFig8:
    def test_overhead_is_small_fraction(self):
        rows = fig8.run(scale="smoke")
        assert len(rows) == 2
        for row in rows:
            assert 0.0 < row.overhead_percent < 60.0
        assert "overhead %" in fig8.format_result(rows)


class TestFig9:
    def test_smoke_run_covers_all_algorithms(self):
        cells = fig9.run(
            scale="smoke", workloads=(WorkloadKind.ZIPF,), max_probes=3
        )
        algorithms = {c.algorithm for c in cells}
        assert algorithms == {"BASE", "DFT", "DFTT", "BLOOM", "SKCH"}
        base = [c for c in cells if c.algorithm == "BASE"]
        assert all(c.achieved_epsilon < 0.05 for c in base)
        series = fig9.by_algorithm(cells, "ZIPF")
        assert set(series) == algorithms
        assert "msgs/result" in fig9.format_result(cells)


class TestFig10:
    def test_panel_a_error_grows_with_kappa(self):
        rows = fig10.run_panel_a(scale="smoke", num_nodes=4)
        dftt = [r for r in rows if r.algorithm == "DFTT"]
        assert dftt[0].kappa < dftt[-1].kappa
        assert "entries" in fig10.format_panel_a(rows)

    def test_panel_b_runs_node_grid(self):
        rows = fig10.run_panel_b(scale="smoke")
        node_counts = sorted({r.num_nodes for r in rows})
        assert node_counts == [2, 4]
        assert "msgs/arrival" in fig10.format_panel_b(rows)


class TestFig11:
    def test_throughput_rows(self):
        rows = fig11.run(scale="smoke", max_probes=2)
        assert {r.algorithm for r in rows} == {"BASE", "DFT", "DFTT", "BLOOM", "SKCH"}
        for row in rows:
            assert row.throughput > 0
        assert "results/s" in fig11.format_result(rows)
