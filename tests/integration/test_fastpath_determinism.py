"""End-to-end determinism: the fast kernels change nothing observable.

A chaos-free reference run executed with the vectorized fast paths
(twiddle tables, batched sketch updates, sign caches, coalesced
deliveries) must produce a :class:`~repro.core.results.RunResult` that is
byte-identical to the same run forced onto the historical scalar kernels
via ``REPRO_NAIVE_KERNELS``.  This is the system-level counterpart of the
bit-level kernel equivalence suite.
"""

import dataclasses
import pickle

import pytest

from repro.config import (
    Algorithm,
    PolicyConfig,
    SystemConfig,
    WorkloadConfig,
    WorkloadKind,
)
from repro.core.system import run_experiment
from repro.dft.sliding import NAIVE_KERNELS_ENV


def reference_config(algorithm):
    return SystemConfig(
        num_nodes=4,
        window_size=96,
        policy=PolicyConfig(algorithm=algorithm, kappa=4.0),
        workload=WorkloadConfig(
            kind=WorkloadKind.ZIPF,
            total_tuples=1200,
            domain=512,
            arrival_rate=150.0,
        ),
        seed=11,
    )


def _without_manifest(result):
    return dataclasses.replace(result, manifest={})


@pytest.mark.parametrize(
    "algorithm", [Algorithm.DFTT, Algorithm.SKCH, Algorithm.BLOOM]
)
def test_fast_kernels_reproduce_naive_run_exactly(algorithm, monkeypatch):
    monkeypatch.delenv(NAIVE_KERNELS_ENV, raising=False)
    fast = run_experiment(reference_config(algorithm))
    monkeypatch.setenv(NAIVE_KERNELS_ENV, "1")
    naive = run_experiment(reference_config(algorithm))

    assert fast.summary() == naive.summary()
    assert fast.messages_by_kind == naive.messages_by_kind
    assert fast.traffic == naive.traffic
    assert fast.node_diagnostics == naive.node_diagnostics
    assert fast.throughput_series == naive.throughput_series
    # The whole result object, serialized, is byte-identical -- except
    # the run manifest, whose kernel_mode field records (correctly) that
    # one run used the naive kernels.
    assert fast.manifest["kernel_mode"] == "fast"
    assert naive.manifest["kernel_mode"] == "naive"
    assert pickle.dumps(_without_manifest(fast)) == pickle.dumps(
        _without_manifest(naive)
    )


def test_fast_kernels_reproduce_naive_run_with_reliability(monkeypatch):
    """The reliable-transport control plane stays deterministic too."""
    from repro.net.reliable import ReliabilitySettings

    def config():
        base = reference_config(Algorithm.DFTT)

        return dataclasses.replace(
            base,
            reliability=dataclasses.replace(ReliabilitySettings(), enabled=True),
        )

    monkeypatch.delenv(NAIVE_KERNELS_ENV, raising=False)
    fast = run_experiment(config())
    monkeypatch.setenv(NAIVE_KERNELS_ENV, "1")
    naive = run_experiment(config())
    assert pickle.dumps(_without_manifest(fast)) == pickle.dumps(
        _without_manifest(naive)
    )
